"""Setuptools shim for environments without PEP 660 editable-install support."""
from setuptools import find_packages, setup

setup(
    name="repro-lenzen-pattshamir",
    version="0.1.0",
    description="Reproduction of Lenzen & Patt-Shamir, 'Fast Partial Distance "
                "Estimation and Applications' (PODC 2015)",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    entry_points={
        "console_scripts": [
            "repro-serve=repro.serving.cli:main",
            "repro-experiment=repro.obs.experiment:main",
        ],
    },
)
