#!/usr/bin/env python
"""Scenario: compact routing tables for a low-diameter fabric (Section 4.3).

Data-centre-like topologies have a small hop diameter but too many nodes for
every switch to hold a full routing table.  This example builds the
approximate Thorup–Zwick hierarchy (Theorems 4.8/4.13, Corollary 4.14) on a
dense low-diameter graph and shows the table-size / stretch trade-off as the
compactness parameter ``k`` grows, including the truncated construction that
exploits the small diameter.

Run:  python examples/compact_routing_datacenter.py
"""

from repro import graphs
from repro.analysis import complexity, render_table
from repro.graphs import hop_diameter
from repro.routing import build_compact_routing
from repro.routing.stretch import evaluate_routing, sample_pairs


def main() -> None:
    # A dense low-diameter "fabric": BA graph with extra random shortcuts.
    fabric = graphs.barabasi_albert_graph(
        40, 3, graphs.uniform_weights(1, 20), seed=11)
    diameter = hop_diameter(fabric)
    print(f"fabric: {fabric.num_nodes} switches, {fabric.num_edges} links, "
          f"hop diameter {diameter}")

    rows = []
    for k in (1, 2, 3, 4):
        hierarchy = build_compact_routing(fabric, k=k, seed=k)
        pairs = sample_pairs(fabric.nodes(), 400)
        report = evaluate_routing(hierarchy, fabric, pairs=pairs)
        build = hierarchy.build_report()
        rows.append({
            "k": k,
            "mode": build.mode,
            "stretch bound": complexity.compact_stretch_bound(k),
            "measured max stretch": round(report.max_stretch, 3),
            "delivery": report.delivery_rate,
            "max table words": build.max_table_words,
            "avg bunch size": round(build.avg_bunch_size, 1),
            "label bits": build.max_label_bits,
            "rounds": build.rounds,
        })

    print()
    print(render_table(rows, title="Compact routing on the fabric (Cor. 4.14)"))
    print("\nInterpretation: growing k shrinks the per-switch state (bunch /")
    print("table size tracks ~n^(1/k)) while the worst-case stretch stays")
    print("below 4k-3; with k >= 3 the construction short-circuits the upper")
    print("hierarchy levels through a skeleton, exploiting the small diameter.")


if __name__ == "__main__":
    main()
