#!/usr/bin/env python
"""Scenario: computing routing tables for a latency-weighted WAN (Theorem 4.5).

The paper's motivating application is distributed routing-table construction
in a network whose links have heterogeneous costs (latencies).  This example
models a wide-area network as a random geometric graph (edge weight =
Euclidean latency), builds the Theorem 4.5 scheme for two values of ``k``,
and reports the trade-off the theorem describes: stretch ``6k - 1 + o(1)``
versus construction rounds ``O~(n^{1/2 + 1/(4k)} + D)``, with ``O(log n)``-bit
node labels.

Run:  python examples/routing_tables_wan.py
"""

from repro import graphs
from repro.analysis import complexity, render_table
from repro.routing import RelabelingRoutingScheme
from repro.routing.stretch import evaluate_routing, sample_pairs


def main() -> None:
    # A 45-router WAN on the unit square; link weight = scaled latency.
    wan = graphs.random_geometric_graph(45, 0.3, None, seed=7)
    print(f"WAN: {wan.num_nodes} routers, {wan.num_edges} links")

    rows = []
    for k in (1, 2, 3):
        scheme = RelabelingRoutingScheme.build(wan, k=k, epsilon=0.25, seed=k)
        pairs = sample_pairs(wan.nodes(), 400)
        report = evaluate_routing(scheme, wan, pairs=pairs)
        build = scheme.build_report()
        rows.append({
            "k": k,
            "stretch bound": complexity.relabeling_stretch_bound(k),
            "measured max stretch": round(report.max_stretch, 3),
            "measured mean stretch": round(report.mean_stretch, 3),
            "delivery": report.delivery_rate,
            "rounds": build.rounds,
            "skeleton": build.skeleton_size,
            "label bits": build.label_bits_max,
        })

    print()
    print(render_table(rows, title="Theorem 4.5 routing tables on the WAN"))
    print("\nInterpretation: all routes deliver; the worst-case stretch stays")
    print("well below the 6k-1 guarantee, and labels stay O(log n) bits for")
    print("every k (the compactness knob only affects tables and rounds).")


if __name__ == "__main__":
    main()
