#!/usr/bin/env python
"""Scenario: why exact weighted source detection is slow (Figure 1).

Reconstructs the paper's Figure 1 gadget, runs the exact weighted detection
protocol and the PDE algorithm on the faithful CONGEST simulator, and
compares the traffic over the single bottleneck edge: the exact problem
forces ``h * sigma`` distinct values across it, while PDE's per-node
broadcast count is governed by ``sigma^2`` per rounding level regardless
of ``h``.

Run:  python examples/congestion_lower_bound.py
"""

from repro.analysis import render_table, run_figure1_congestion


def main() -> None:
    rows = []
    for h, sigma in [(2, 2), (3, 2), (4, 2), (5, 2)]:
        record = run_figure1_congestion(h, sigma, epsilon=0.5)
        rows.append({
            "h": h,
            "sigma": sigma,
            "h*sigma (paper bound)": record["paper_bound_values"],
            "exact: msgs over cut": record["exact_bottleneck_messages"],
            "exact: rounds": record["exact_rounds"],
            "PDE: max broadcasts/node": record["pde_max_broadcasts"],
        })
    print(render_table(rows, title="Figure 1 — bottleneck congestion as h grows"))
    print("\nInterpretation: the exact protocol's traffic over the cut grows")
    print("linearly in h (matching the Omega(h*sigma) lower bound), whereas")
    print("the PDE algorithm's per-node broadcast budget does not depend on h")
    print("(Lemma 3.4) — the reason the paper's sub-linear algorithms exist.")


if __name__ == "__main__":
    main()
