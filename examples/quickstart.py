#!/usr/bin/env python
"""Quickstart: approximate APSP and partial distance estimation in 30 lines.

Builds a random weighted network, runs the deterministic (1+eps)-approximate
APSP algorithm of Theorem 4.1, audits its stretch against exact distances,
and then runs a small partial-distance-estimation instance on the faithful
CONGEST simulator to show the round / message accounting.

Run:  python examples/quickstart.py
"""

from repro import graphs
from repro.core import approximate_apsp, solve_pde


def main() -> None:
    # A 40-node weighted network with a mix of light and heavy links.
    graph = graphs.erdos_renyi_graph(
        40, 0.12, graphs.mixed_scale_weights(1, 5000, 0.25), seed=42)
    print(f"network: {graph.num_nodes} nodes, {graph.num_edges} edges, "
          f"max weight {graph.max_weight()}")

    # ------------------------------------------------------------------
    # Theorem 4.1: deterministic (1+eps)-approximate APSP.
    # ------------------------------------------------------------------
    epsilon = 0.25
    apsp = approximate_apsp(graph, epsilon=epsilon)
    audit = apsp.stretch_audit(graph)
    print(f"\n(1+{epsilon})-approximate APSP  (Theorem 4.1)")
    print(f"  accounted CONGEST rounds : {apsp.metrics.rounds}")
    print(f"  max stretch              : {audit['max_stretch']:.4f} "
          f"(guarantee {1 + epsilon})")
    print(f"  mean stretch             : {audit['mean_stretch']:.4f}")
    print(f"  missing / infeasible     : {audit['missing']} / {audit['infeasible']}")

    # ------------------------------------------------------------------
    # Partial distance estimation on the faithful round-by-round simulator.
    # ------------------------------------------------------------------
    sources = graph.nodes()[:6]
    pde = solve_pde(graph, sources, h=8, sigma=3, epsilon=0.5, engine="simulate")
    print("\npartial distance estimation  (Corollary 3.5, simulated)")
    print(f"  sources={len(sources)}  h=8  sigma=3  eps=0.5  "
          f"levels={pde.rounding.num_levels}")
    print(f"  measured rounds          : {pde.metrics.rounds}")
    print(f"  max broadcasts per node  : {pde.metrics.max_broadcasts()} "
          f"(Lemma 3.4 cap per level = 6)")
    some_node = graph.nodes()[-1]
    print(f"  node {some_node} detected: "
          + ", ".join(f"{e.source}@{e.estimate:.0f}" for e in pde.list_of(some_node)))


if __name__ == "__main__":
    main()
