"""E1 — Figure 1: congestion over the bottleneck edge.

Regenerates the point of Figure 1: exact weighted ``(S, h+1, sigma)``-
detection must push ``Omega(h * sigma)`` distinct values over the single cut
edge, so its cost grows with the product ``h * sigma``, whereas the PDE
algorithm's per-node broadcast count is governed by ``O(sigma^2 log n / eps)``
(Lemma 3.4) independently of ``h``.
"""

import pytest

from repro.analysis import render_table, run_figure1_congestion


SWEEP = [(2, 2), (3, 2), (4, 2), (3, 3), (4, 3)]


def _run_sweep():
    return [run_figure1_congestion(h, sigma, epsilon=0.5) for h, sigma in SWEEP]


@pytest.mark.benchmark(group="fig1")
def test_figure1_congestion_sweep(benchmark):
    records = benchmark.pedantic(_run_sweep, iterations=1, rounds=1)
    print()
    print(render_table(records, columns=[
        "h", "sigma", "paper_bound_values", "exact_bottleneck_messages",
        "exact_rounds", "exact_round_bound", "pde_bottleneck_messages",
        "pde_max_broadcasts", "pde_broadcast_bound",
    ], title="E1 / Figure 1 — messages across the bottleneck edge"))
    # Reproduction criteria: the exact protocol's bottleneck traffic is at
    # least the paper's h*sigma bound, and it grows with h for fixed sigma.
    for record in records:
        assert record["exact_bottleneck_messages"] >= record["paper_bound_values"]
    fixed_sigma = [r for r in records if r["sigma"] == 2]
    traffic = [r["exact_bottleneck_messages"] for r in fixed_sigma]
    assert traffic == sorted(traffic)
