"""E8 — Exact vs approximate Thorup–Zwick hierarchy (Section 4.3).

Quantifies what the (1+eps)-approximate distances of the distributed
construction cost relative to the centralized exact hierarchy: distance
stretch and bunch (table) sizes, for several k.
"""

import pytest

from repro.analysis import render_table, run_tz_comparison


@pytest.mark.benchmark(group="tz")
def test_exact_vs_approx_hierarchy(benchmark, routing_workloads):
    g = routing_workloads["er_n32"]

    def run():
        return [run_tz_comparison(g, k=k, epsilon=0.25, pair_sample=250, seed=k)
                for k in (2, 3, 4)]

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(render_table(rows, columns=[
        "k", "stretch_bound", "exact_max_stretch", "approx_max_stretch",
        "exact_mean_stretch", "approx_mean_stretch",
        "exact_max_bunch", "approx_max_bunch",
    ], title="E8 — exact vs PDE-approximate Thorup-Zwick hierarchy"))
    for record in rows:
        assert record["exact_max_stretch"] <= record["stretch_bound"] + 1e-6
        assert record["approx_max_stretch"] <= record["stretch_bound"] + 1e-6
        # The approximation costs at most a constant factor over exact here.
        assert record["approx_mean_stretch"] <= 2.0 * record["exact_mean_stretch"] + 0.5
