"""E4 — Theorem 4.5: routing table construction with relabeling.

Regenerates the theorem's three claims: stretch at most ``6k - 1 + o(1)``,
labels of ``O(log n)`` bits, and round complexity governed by
``n^{1/2 + 1/(4k)} + D`` — swept over ``k`` and over graph families.
"""

import pytest

from repro.analysis import render_table, run_relabeling_experiment


@pytest.mark.benchmark(group="relabeling")
def test_relabeling_k_sweep(benchmark, routing_workloads):
    g = routing_workloads["er_n32"]

    def run():
        return [dict(run_relabeling_experiment(g, k=k, pair_sample=200, seed=k),
                     k=k) for k in (1, 2, 3)]

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(render_table(rows, columns=[
        "k", "stretch_bound", "max_route_stretch", "mean_route_stretch",
        "max_distance_stretch", "delivery_rate", "rounds", "round_bound",
        "label_bits", "skeleton_size", "fallback_edges",
    ], title="E4 — Theorem 4.5 routing with relabeling (vs k)"))
    for record in rows:
        assert record["delivery_rate"] == 1.0
        assert record["max_route_stretch"] <= record["stretch_bound"] + 1e-6
    # Label sizes do not grow with k (Theorem 4.5 labels are O(log n) bits).
    bits = [r["label_bits"] for r in rows]
    assert max(bits) <= 2 * min(bits)


@pytest.mark.benchmark(group="relabeling")
def test_relabeling_graph_families(benchmark, routing_workloads):
    def run():
        rows = []
        for name, g in routing_workloads.items():
            record = dict(run_relabeling_experiment(g, k=2, pair_sample=200, seed=7))
            record["graph"] = name
            rows.append(record)
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(render_table(rows, columns=[
        "graph", "n", "max_route_stretch", "stretch_bound", "delivery_rate",
        "rounds", "label_bits", "skeleton_size",
    ], title="E4 — Theorem 4.5 across graph families (k=2)"))
    for record in rows:
        assert record["delivery_rate"] == 1.0
        assert record["max_route_stretch"] <= record["stretch_bound"] + 1e-6
