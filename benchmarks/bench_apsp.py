"""E2 — Theorem 4.1: deterministic (1+eps)-APSP vs the baselines.

Regenerates the introduction's comparison table: rounds and stretch for the
PDE-based deterministic algorithm, the randomized rounding baseline [14],
distributed Bellman–Ford and link-state flooding, across graph families, plus
a scaling sweep in ``n``.
"""

import pytest

from repro import graphs
from repro.analysis import complexity, render_table, run_apsp_comparison
from repro.core import approximate_apsp


@pytest.mark.benchmark(group="apsp")
def test_apsp_comparison_across_families(benchmark, apsp_workloads):
    def run():
        rows = []
        for name, g in apsp_workloads.items():
            for record in run_apsp_comparison(g, epsilon=0.5):
                record = dict(record)
                record["graph"] = name
                rows.append(record)
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(render_table(rows, columns=[
        "graph", "algorithm", "deterministic", "rounds", "round_bound",
        "max_stretch", "mean_stretch",
    ], title="E2 — APSP comparison (Theorem 4.1 vs baselines)"))
    ours = [r for r in rows if "Thm 4.1" in r["algorithm"]]
    rand = [r for r in rows if "nanongkai" in r["algorithm"]]
    # Shape checks: our algorithm meets its stretch bound everywhere and is
    # cheaper (in accounted rounds) than the randomized baseline.
    assert all(r["max_stretch"] <= 1.5 + 1e-9 for r in ours)
    for o, r in zip(ours, rand):
        assert o["rounds"] < r["rounds"]


@pytest.mark.benchmark(group="apsp")
def test_apsp_round_scaling(benchmark, scaling_sizes):
    """Accounted rounds of Theorem 4.1 scale near-linearly in n (times log n)."""
    def run():
        rows = []
        for n in scaling_sizes:
            g = graphs.erdos_renyi_graph(n, 3.0 / n + 0.1,
                                         graphs.uniform_weights(1, 100), seed=n)
            result = approximate_apsp(g, epsilon=0.5)
            rows.append({
                "n": n,
                "rounds": result.metrics.rounds,
                "bound": complexity.apsp_round_bound(n, 0.5),
                "rounds/bound": result.metrics.rounds / complexity.apsp_round_bound(n, 0.5),
            })
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(render_table(rows, title="E2 — APSP round scaling vs O(n log n / eps^2)"))
    ratios = [r["rounds/bound"] for r in rows]
    # The measured/bound ratio must stay within a constant band (no blow-up).
    assert max(ratios) <= 10 * min(ratios)


@pytest.mark.benchmark(group="apsp")
def test_apsp_wallclock(benchmark, apsp_workloads):
    """Wall-clock of the logical engine itself (for harness users)."""
    g = apsp_workloads["er_uniform_n24"]
    benchmark(approximate_apsp, g, 0.5)
