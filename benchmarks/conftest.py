"""Shared workloads and reporting helpers for the benchmark harness.

Each ``bench_*`` module reproduces one experiment of the index in DESIGN.md
(E1–E8).  Benchmarks print the regenerated "table rows" (via
``repro.analysis.reporting``) in addition to the pytest-benchmark timings, so
running ``pytest benchmarks/ --benchmark-only -s`` shows the same quantities
EXPERIMENTS.md records.

Graph sizes are deliberately moderate: the CONGEST simulator is a pure-Python
round-by-round engine and the goal is the *shape* of the paper's claims
(who wins, how quantities scale), not absolute wall-clock numbers.
"""

import pytest

from repro import graphs


def pytest_configure(config):
    # Benchmarks print their result tables; -s is not required because we
    # route through the terminalreporter at the end of each bench, but plain
    # print keeps things simple and visible with -s.
    pass


@pytest.fixture(scope="session")
def apsp_workloads():
    """Graph families for the APSP comparison (E2)."""
    return {
        "er_uniform_n24": graphs.erdos_renyi_graph(
            24, 0.2, graphs.uniform_weights(1, 100), seed=1),
        "er_mixed_n24": graphs.erdos_renyi_graph(
            24, 0.2, graphs.mixed_scale_weights(1, 5000, 0.3), seed=2),
        "grid_4x6": graphs.grid_graph(4, 6, graphs.uniform_weights(1, 50), seed=3),
        "ba_n24": graphs.barabasi_albert_graph(
            24, 2, graphs.heavy_tailed_weights(10 ** 4), seed=4),
    }


@pytest.fixture(scope="session")
def routing_workloads():
    """Graph families for the routing experiments (E4, E5, E6, E8)."""
    return {
        "er_n32": graphs.erdos_renyi_graph(
            32, 0.15, graphs.uniform_weights(1, 80), seed=11),
        "geometric_n30": graphs.random_geometric_graph(30, 0.35, None, seed=12),
        "tree_n30": graphs.random_tree(30, graphs.uniform_weights(1, 60), seed=13),
    }


@pytest.fixture(scope="session")
def scaling_sizes():
    """Node counts for scaling sweeps."""
    return [12, 18, 24, 30]
