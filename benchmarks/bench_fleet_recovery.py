"""Fleet recovery — SIGKILL a worker mid-stream, answers stay identical.

The elastic fleet supervisor (``ShardedRoutingService(fleet=...)``) turns
worker death from a service outage into a bounded latency blip:

* **liveness** — heartbeat pings plus ``Process.is_alive()`` catch a killed
  worker within a couple of beat intervals;
* **recovery** — queries the dead worker never answered are re-scattered to
  surviving siblings, and a replacement is respawned and warmed in the
  background, all behind an epoch-versioned routing table;
* **identity** — the contract under test: the answer stream of a run where
  a worker is SIGKILLed mid-stream is list-for-list identical (paths *and*
  weights) to single-process serving of the same stream.

This benchmark replays a **bursty** workload (temporally correlated bursts
over Zipf skew — the traffic shape where a blackout would be most visible)
through a fleet front-end, SIGKILLs one worker when a third of the stream
has been served, and records the per-batch latency series.  The series
shows the recovery spike: a handful of batches pay the detection +
re-scatter cost, then latency returns to baseline while the respawned
worker warms in the background.  ``recovery_spike_batches`` counts batches
slower than ``spike_factor`` x the pre-kill median — the headline number is
that it is small and the post-kill tail median is back near baseline.

Run as a script to produce the JSON artifact consumed by CI (the flat JSON
is derived from a ``repro-experiment``-layout run directory, so every
invocation is also a ``repro-experiment compare`` citizen):

    PYTHONPATH=src python benchmarks/bench_fleet_recovery.py \\
        --n 300 --workers 4 --queries 2400 --out BENCH_fleet_recovery.json

The gate (always on): answers identical to single-process serving AND at
least one death observed AND at least one respawn completed — otherwise
exit 1.  The pytest entry point runs a 3-worker smoke configuration with
the same assertions.
"""

import argparse
import os
import signal
import tempfile
import time

import pytest

from repro import graphs
from repro.obs.experiment import record_benchmark_run
from repro.serving import (
    BuildConfig,
    CacheConfig,
    FleetConfig,
    ServingConfig,
    ShardedRoutingService,
    bursty_workload,
    open_service,
)


def make_serving_graph(n: int, seed: int = 0):
    """ER graph with average degree ~6 and small weights (few rounding levels)."""
    p = min(1.0, 6.0 / max(1, n - 1))
    return graphs.erdos_renyi_graph(n, p, graphs.uniform_weights(1, 8), seed=seed)


def _median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2] if ordered else 0.0


def _wait_for_respawn(sharded, deadline_seconds: float = 30.0) -> bool:
    """Poll until the supervisor reports a completed respawn (or give up)."""
    deadline = time.monotonic() + deadline_seconds
    while time.monotonic() < deadline:
        if sharded._fleet.respawns >= 1:
            return True
        time.sleep(0.05)
    return sharded._fleet.respawns >= 1


def run_fleet_recovery(n: int, workers: int = 4, seed: int = 0,
                       k: int = 3, epsilon: float = 0.25,
                       num_queries: int = 2400, batch_size: int = 30,
                       kill_at_fraction: float = 1.0 / 3.0,
                       kill_worker: int = 1,
                       heartbeat_interval: float = 0.1,
                       spike_factor: float = 5.0) -> dict:
    """Kill one of ``workers`` mid-stream; assert identity, time every batch.

    The reference answers come from a single-process :class:`RoutingService`
    over the *same* artifact, so the comparison pins down the whole fleet
    path: partitioning, death detection, retry re-scatter, epoch flips, and
    the respawned worker rejoining — none of it may change an answer.
    """
    graph = make_serving_graph(n, seed=seed)
    workload = bursty_workload(graph.nodes(), num_queries, seed=seed)
    chunks = [workload.pairs[lo:lo + batch_size]
              for lo in range(0, len(workload.pairs), batch_size)]
    kill_batch = max(1, int(len(chunks) * kill_at_fraction))

    with tempfile.TemporaryDirectory(prefix="repro-fleet-bench-") as tmp:
        artifact = os.path.join(tmp, "hierarchy.artifact")
        parent = open_service(ServingConfig(
            artifact_path=artifact,
            build=BuildConfig(k=k, epsilon=epsilon, seed=seed),
            cache=CacheConfig(capacity=0)), graph=graph)
        reference = [trace for chunk in chunks
                     for trace in parent.route_batch(chunk)]

        fleet = FleetConfig(heartbeat_interval=heartbeat_interval,
                            respawn_limit=3)
        latencies = []
        answers = []
        with ShardedRoutingService(
                artifact, num_workers=workers, partitioner="hash_source",
                cache_config=CacheConfig(capacity=1024),
                graph=graph, fleet=fleet) as sharded:
            start = time.perf_counter()
            for index, chunk in enumerate(chunks):
                if index == kill_batch:
                    victim = sharded._workers[kill_worker].process
                    os.kill(victim.pid, signal.SIGKILL)
                batch_start = time.perf_counter()
                answers.extend(sharded.route_batch(chunk))
                latencies.append(time.perf_counter() - batch_start)
            total_seconds = time.perf_counter() - start
            respawned = _wait_for_respawn(sharded)
            status = sharded._fleet.status()
            merged = sharded.merged_stats()

    identical = ([(t.path, t.weight) for t in answers]
                 == [(t.path, t.weight) for t in reference])

    pre_kill = latencies[:kill_batch]
    post_kill = latencies[kill_batch:]
    baseline = _median(pre_kill)
    spike_threshold = spike_factor * baseline if baseline > 0 else float("inf")
    recovery_spike_batches = sum(1 for lat in post_kill
                                 if lat > spike_threshold)
    # Steady state after the blip: the last quarter of the stream, long
    # after detection + retry have finished.
    tail = post_kill[3 * len(post_kill) // 4:]

    return {
        "n": n,
        "m": graph.num_edges,
        "workers": workers,
        "num_queries": num_queries,
        "batch_size": batch_size,
        "batches": len(chunks),
        "kill_batch": kill_batch,
        "kill_worker": kill_worker,
        "heartbeat_interval": heartbeat_interval,
        "cpu_count": os.cpu_count(),
        "qps": round(num_queries / total_seconds, 1)
               if total_seconds > 0 else float("inf"),
        "identical_answers": identical,
        "worker_deaths": status["worker_deaths"],
        "respawns": status["respawns"],
        "respawn_completed": respawned,
        "final_epoch": status["epoch"],
        "migrated_pairs": status["migrated_pairs"],
        "baseline_batch_ms": round(1000 * baseline, 3),
        "max_post_kill_batch_ms": round(1000 * max(post_kill), 3)
                                  if post_kill else 0.0,
        "tail_batch_ms": round(1000 * _median(tail), 3),
        "spike_factor": spike_factor,
        "recovery_spike_batches": recovery_spike_batches,
        "cover_queries": merged.extra.get("cover_queries", 0),
        "latency_ms_series": [round(1000 * lat, 3) for lat in latencies],
    }


# ----------------------------------------------------------------------
# pytest entry point (smoke scale)
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="fleet")
def test_fleet_recovery_smoke(benchmark):
    record = benchmark.pedantic(
        lambda: run_fleet_recovery(80, workers=3, num_queries=600,
                                   batch_size=20, heartbeat_interval=0.05),
        iterations=1, rounds=1)
    print()
    print(f"kill@batch {record['kill_batch']}/{record['batches']}: "
          f"deaths={record['worker_deaths']} respawns={record['respawns']} "
          f"epoch={record['final_epoch']} "
          f"baseline {record['baseline_batch_ms']}ms "
          f"worst post-kill {record['max_post_kill_batch_ms']}ms "
          f"tail {record['tail_batch_ms']}ms")
    # The hard invariants: a worker death never changes an answer, is
    # always observed, and the replacement always comes back.
    assert record["identical_answers"] is True
    assert record["worker_deaths"] >= 1
    assert record["respawn_completed"] is True


# ----------------------------------------------------------------------
# CLI entry point (full scale, JSON artifact)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=300)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--k", type=int, default=3)
    parser.add_argument("--queries", type=int, default=2400)
    parser.add_argument("--batch-size", type=int, default=30)
    parser.add_argument("--kill-worker", type=int, default=1)
    parser.add_argument("--heartbeat-interval", type=float, default=0.1)
    parser.add_argument("--out", default="BENCH_fleet_recovery.json")
    parser.add_argument("--run-dir", default=None,
                        help="run directory to write (repro-experiment "
                             "layout; default runs/bench_fleet_recovery/"
                             "<utc-timestamp>-<pid>)")
    args = parser.parse_args(argv)

    record = run_fleet_recovery(args.n, workers=args.workers, seed=args.seed,
                                k=args.k, num_queries=args.queries,
                                batch_size=args.batch_size,
                                kill_worker=args.kill_worker,
                                heartbeat_interval=args.heartbeat_interval)
    print(f"n={args.n} workers={args.workers} queries={args.queries} "
          f"batches={record['batches']} cpus={record['cpu_count']}")
    print(f"  kill worker {record['kill_worker']} at batch "
          f"{record['kill_batch']}: deaths={record['worker_deaths']} "
          f"respawns={record['respawns']} epoch={record['final_epoch']} "
          f"migrated={record['migrated_pairs']}")
    print(f"  identity={record['identical_answers']} "
          f"qps={record['qps']} "
          f"baseline {record['baseline_batch_ms']}ms/batch, "
          f"worst post-kill {record['max_post_kill_batch_ms']}ms, "
          f"tail {record['tail_batch_ms']}ms, "
          f"spike batches (> {record['spike_factor']}x baseline): "
          f"{record['recovery_spike_batches']}")

    payload = {
        "benchmark": "fleet_recovery",
        "description": "SIGKILL one of N fleet workers mid-stream under "
                       "bursty load: the supervisor detects the death via "
                       "heartbeats, re-scatters the dead worker's pending "
                       "queries to survivors behind an epoch-versioned "
                       "routing table, and respawns a replacement in the "
                       "background; the answer stream is asserted "
                       "list-for-list identical (paths and weights) to "
                       "single-process serving, and the per-batch latency "
                       "series bounds the recovery blip",
        "workload": "ER avg-degree-6, weights 1..8, k=3 hierarchy; bursty "
                    "(Zipf skew + temporal bursts + diurnal drift) stream",
        "records": [record],
    }
    record_benchmark_run(
        "bench_fleet_recovery", payload,
        {"n": args.n, "workers": args.workers, "seed": args.seed,
         "k": args.k, "queries": args.queries,
         "batch_size": args.batch_size, "kill_worker": args.kill_worker,
         "heartbeat_interval": args.heartbeat_interval},
        out_path=args.out, run_dir=args.run_dir)

    failed = False
    if not record["identical_answers"]:
        print("FAIL: fleet answers diverged from single-process serving")
        failed = True
    if record["worker_deaths"] < 1:
        print("FAIL: the killed worker's death was never observed")
        failed = True
    if not record["respawn_completed"]:
        print(f"FAIL: no respawn completed "
              f"(respawns={record['respawns']})")
        failed = True
    if failed:
        return 1
    print("gate ok: identical answers, death observed, respawn completed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
