"""Engine scaling — the batched multi-source detection engine vs per-source.

The per-source ``"logical"`` engine runs ``|S|`` pruned Dijkstras per
rounding level (``O(|S| * (m + n log n))``); the ``"batched"`` engine runs a
single sigma-truncated multi-source Dijkstra (``O(sigma * (m + n log n))``),
so its advantage grows with ``|S| / sigma``.  This benchmark measures one
full `solve_pde` call per engine at ``|S| = ceil(sqrt(n) * ln n)`` sources —
the regime of the paper's routing hierarchies — and verifies the outputs are
identical.

Run as a script to produce the JSON artifact consumed by CI:

    PYTHONPATH=src python benchmarks/bench_engine_scaling.py \
        --sizes 300 1000 3000 --out BENCH_engine_scaling.json

By default the per-source engine is skipped above ``--logical-cutoff`` nodes
(it takes minutes at n=3000); pass a larger cutoff to measure it everywhere.
The pytest entry point (``pytest benchmarks/bench_engine_scaling.py``) runs a
small smoke configuration and asserts the speedup.
"""

import argparse
import math
import time

import pytest

from repro import graphs
from repro.core import solve_pde
from repro.obs.experiment import record_benchmark_run


def make_workload(n: int, seed: int = 0):
    """ER graph with average degree ~6 and moderate weights, plus |S|, h, sigma."""
    p = min(1.0, 6.0 / max(1, n - 1))
    graph = graphs.erdos_renyi_graph(n, p, graphs.uniform_weights(1, 32), seed=seed)
    log_n = math.log(max(2, n))
    num_sources = min(n, int(math.ceil(math.sqrt(n) * log_n)))
    sources = graph.nodes()[:num_sources]
    h = 4
    sigma = max(1, int(math.ceil(2 * log_n)))
    return graph, sources, h, sigma


def _lists_identical(a, b, nodes):
    for v in nodes:
        pa = [(e.estimate, e.source) for e in a.lists[v]]
        pb = [(e.estimate, e.source) for e in b.lists[v]]
        if pa != pb:
            return False
    return True


def run_engine_comparison(n: int, seed: int = 0, epsilon: float = 0.5,
                          include_logical: bool = True) -> dict:
    """Time solve_pde per engine on one workload; verify output identity."""
    graph, sources, h, sigma = make_workload(n, seed=seed)
    record = {
        "n": n,
        "m": graph.num_edges,
        "sources": len(sources),
        "h": h,
        "sigma": sigma,
        "epsilon": epsilon,
        "levels": None,
        "batched_seconds": None,
        "logical_seconds": None,
        "speedup": None,
        "lists_identical": None,
    }

    start = time.perf_counter()
    batched = solve_pde(graph, sources, h=h, sigma=sigma, epsilon=epsilon,
                        engine="batched", store_levels=False)
    record["batched_seconds"] = round(time.perf_counter() - start, 4)
    record["levels"] = batched.rounding.num_levels

    if include_logical:
        start = time.perf_counter()
        logical = solve_pde(graph, sources, h=h, sigma=sigma, epsilon=epsilon,
                            engine="logical", store_levels=False)
        record["logical_seconds"] = round(time.perf_counter() - start, 4)
        record["speedup"] = round(
            record["logical_seconds"] / max(record["batched_seconds"], 1e-9), 2)
        record["lists_identical"] = _lists_identical(logical, batched,
                                                     graph.nodes())
    return record


# ----------------------------------------------------------------------
# pytest entry point (smoke scale)
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="engine")
def test_engine_scaling_smoke(benchmark):
    record = benchmark.pedantic(lambda: run_engine_comparison(300),
                                iterations=1, rounds=1)
    print()
    print(f"n={record['n']} |S|={record['sources']} sigma={record['sigma']} "
          f"levels={record['levels']}: logical {record['logical_seconds']}s, "
          f"batched {record['batched_seconds']}s "
          f"({record['speedup']}x, identical={record['lists_identical']})")
    assert record["lists_identical"]
    # |S|/sigma ~ 8 at n=300; demand a conservative fraction of that margin
    # so the assertion stays robust on loaded CI machines.
    assert record["speedup"] >= 1.5


# ----------------------------------------------------------------------
# CLI entry point (full scale, JSON artifact)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+",
                        default=[300, 1000, 3000])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--epsilon", type=float, default=0.5)
    parser.add_argument("--logical-cutoff", type=int, default=1000,
                        help="skip the per-source engine above this n")
    parser.add_argument("--out", default="BENCH_engine_scaling.json")
    parser.add_argument("--run-dir", default=None,
                        help="run directory to write (repro-experiment "
                             "layout; default runs/bench_engine_scaling/"
                             "<utc-timestamp>-<pid>)")
    args = parser.parse_args(argv)

    records = []
    for n in args.sizes:
        include_logical = n <= args.logical_cutoff
        record = run_engine_comparison(n, seed=args.seed, epsilon=args.epsilon,
                                       include_logical=include_logical)
        records.append(record)
        speedup = (f"{record['speedup']}x speedup"
                   if record["speedup"] is not None else "logical skipped")
        print(f"n={n:>5} |S|={record['sources']:>4} sigma={record['sigma']:>3} "
              f"levels={record['levels']:>2}  "
              f"batched={record['batched_seconds']:>8}s  "
              f"logical={record['logical_seconds'] or '-':>8}  {speedup}")

    payload = {
        "benchmark": "engine_scaling",
        "description": "solve_pde batched vs per-source logical engine",
        "workload": "ER avg-degree-6, weights 1..32, |S|=ceil(sqrt(n) ln n)",
        "records": records,
    }
    record_benchmark_run(
        "bench_engine_scaling", payload,
        {"sizes": args.sizes, "seed": args.seed, "epsilon": args.epsilon,
         "logical_cutoff": args.logical_cutoff},
        out_path=args.out, run_dir=args.run_dir)

    mismatches = [r for r in records if r["lists_identical"] is False]
    return 1 if mismatches else 0


if __name__ == "__main__":
    raise SystemExit(main())
