"""Build scaling — hierarchy construction wall clock vs build-worker count.

Hierarchy construction is dominated by the per-level ``solve_pde`` source
detections, and those are embarrassingly parallel: each rounding level's
sigma-truncated detection depends only on the graph, the level's sources
and its integer edge lengths — never on another level's output.
``build_workers > 1`` fans them across a spawn-based process pool
(:mod:`repro.routing.parallel_build`) and merges deterministically, so the
parallel build must be **checksum-identical** to the sequential one: the
saved artifact's ``payload_sha256`` is compared across every worker count
and any mismatch fails the benchmark unconditionally.

The wall-clock speedup, by contrast, is physics: a process pool cannot beat
one core on a one-core host (spawn/pickle overhead makes it *slower*
there).  The speedup gate is therefore enforced only when ``os.cpu_count()``
covers the largest worker count; the measured ratio and the host's
``cpu_count`` are always recorded so runs from different hosts compare
honestly (same convention as ``BENCH_shard_scaling.json``).

Run as a script to produce the JSON artifact consumed by CI (the flat JSON
is derived from a ``repro-experiment``-layout run directory):

    PYTHONPATH=src python benchmarks/bench_build_scaling.py \\
        --n 1500 --workers 1 4 --out BENCH_build_scaling.json

The pytest entry point runs a 2-worker smoke configuration and asserts
checksum identity only.
"""

import argparse
import os
import tempfile
import time

import pytest

from repro import graphs
from repro.obs.experiment import record_benchmark_run
from repro.routing.compact import build_compact_routing
from repro.serving.artifacts import artifact_info, save_hierarchy


def make_build_graph(n: int, seed: int = 0):
    """ER graph, average degree ~6, weights 1..64.

    The wide weight range matters: ``imax = ceil(log_{1+eps}(wmax))`` sets
    the rounding-level count, i.e. the number of independent detection
    tasks the pool can spread.  Weights 1..64 at ``epsilon=0.25`` give ~19
    levels per PDE instance — enough slack to keep 4 workers busy.
    """
    p = min(1.0, 6.0 / max(1, n - 1))
    return graphs.erdos_renyi_graph(n, p, graphs.uniform_weights(1, 64),
                                    seed=seed)


def run_build_scaling(n: int, worker_counts=(1, 4), seed: int = 0,
                      k: int = 3, epsilon: float = 0.25, mode: str = "auto",
                      engine: str = "batched") -> dict:
    """Build the same hierarchy once per worker count; record wall clock
    and the saved artifact's payload checksum.

    The ``workers == 1`` entry is the plain sequential path (no pool, no
    spawn cost) — exactly what every build ran before parallel builds
    existed — so the speedups are end-to-end, pool overhead included.
    """
    graph = make_build_graph(n, seed=seed)
    record = {
        "n": n,
        "m": graph.num_edges,
        "k": k,
        "epsilon": epsilon,
        "mode": mode,
        "engine": engine,
        "cpu_count": os.cpu_count(),
        "scaling": [],
    }
    with tempfile.TemporaryDirectory(prefix="repro-build-bench-") as tmp:
        for workers in worker_counts:
            start = time.perf_counter()
            hierarchy = build_compact_routing(
                graph, k, epsilon=epsilon, seed=seed, mode=mode,
                engine=engine, build_workers=workers)
            build_seconds = time.perf_counter() - start
            path = os.path.join(tmp, f"hierarchy-{workers}.artifact")
            save_hierarchy(hierarchy, path)
            record["scaling"].append({
                "build_workers": workers,
                "build_seconds": round(build_seconds, 4),
                "payload_sha256": artifact_info(path).payload_sha256,
            })
    base = record["scaling"][0]["build_seconds"]
    for entry in record["scaling"]:
        entry["speedup"] = round(base / entry["build_seconds"], 2) \
            if entry["build_seconds"] > 0 else float("inf")
    checksums = {entry["payload_sha256"] for entry in record["scaling"]}
    record["checksum_identical"] = len(checksums) == 1
    return record


# ----------------------------------------------------------------------
# pytest entry point (smoke scale)
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="build")
def test_build_scaling_smoke(benchmark):
    record = benchmark.pedantic(
        lambda: run_build_scaling(120, worker_counts=(1, 2)),
        iterations=1, rounds=1)
    print()
    for entry in record["scaling"]:
        print(f"build_workers={entry['build_workers']}: "
              f"{entry['build_seconds']}s  (speedup {entry['speedup']}x)  "
              f"sha256 {entry['payload_sha256'][:12]}")
    # The hard invariant at any scale: the parallel build writes the same
    # bytes (header aside) as the sequential one.
    assert record["checksum_identical"] is True
    # No wall-clock floor at smoke scale: tiny builds are spawn-dominated
    # and CI runners may have one core; the full run gates --min-speedup.


# ----------------------------------------------------------------------
# CLI entry point (full scale, JSON artifact)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=1500)
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 4])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--k", type=int, default=3)
    parser.add_argument("--epsilon", type=float, default=0.25)
    parser.add_argument("--mode", default="auto")
    parser.add_argument("--engine", default="batched")
    parser.add_argument("--min-speedup", type=float, default=1.8,
                        help="exit non-zero unless the largest worker count "
                             "reaches this wall-clock speedup over 1 worker "
                             "— enforced only when cpu_count covers the "
                             "largest worker count (a pool cannot beat one "
                             "core on a one-core host); the measured ratio "
                             "is recorded either way")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration for CI: n=120, workers 1 2, "
                             "identity gate only (no speedup floor)")
    parser.add_argument("--out", default="BENCH_build_scaling.json")
    parser.add_argument("--run-dir", default=None,
                        help="run directory to write (repro-experiment "
                             "layout; default runs/bench_build_scaling/"
                             "<utc-timestamp>-<pid>)")
    args = parser.parse_args(argv)

    if args.smoke:
        args.n = min(args.n, 120)
        args.workers = [1, 2]
        args.min_speedup = None

    record = run_build_scaling(args.n, worker_counts=tuple(args.workers),
                               seed=args.seed, k=args.k,
                               epsilon=args.epsilon, mode=args.mode,
                               engine=args.engine)
    print(f"n={args.n} m={record['m']} k={args.k} mode={args.mode} "
          f"engine={args.engine} cpus={record['cpu_count']}")
    for entry in record["scaling"]:
        print(f"  build_workers={entry['build_workers']}: "
              f"{entry['build_seconds']:>8}s  "
              f"(speedup {entry['speedup']}x)  "
              f"sha256 {entry['payload_sha256'][:12]}")
    print(f"checksum_identical={record['checksum_identical']}")

    largest = max(args.workers)
    gate_enforced = (args.min_speedup is not None
                     and (record["cpu_count"] or 1) >= largest)
    record["speedup_gate_enforced"] = gate_enforced

    payload = {
        "benchmark": "build_scaling",
        "description": "hierarchy construction wall clock vs build_workers: "
                       "the independent per-level PDE detections fan across "
                       "a spawn-based process pool with a deterministic "
                       "merge; the parallel artifact must be "
                       "payload-checksum-identical to the sequential one "
                       "(gated unconditionally), while the speedup gate "
                       "applies only when cpu_count covers the largest "
                       "worker count",
        "workload": "ER avg-degree-6, weights 1..64 (~19 rounding levels "
                    "at epsilon=0.25)",
        "records": [record],
    }
    record_benchmark_run(
        "bench_build_scaling", payload,
        {"n": args.n, "workers": args.workers, "seed": args.seed,
         "k": args.k, "epsilon": args.epsilon, "mode": args.mode,
         "engine": args.engine, "min_speedup": args.min_speedup,
         "smoke": args.smoke},
        out_path=args.out, run_dir=args.run_dir)

    failed = False
    if not record["checksum_identical"]:
        print("FAIL: parallel build artifact differs from sequential")
        failed = True
    if gate_enforced:
        achieved = record["scaling"][-1]["speedup"]
        if achieved < args.min_speedup:
            print(f"FAIL: build speedup {achieved}x < "
                  f"required {args.min_speedup}x at "
                  f"{largest} workers ({record['cpu_count']} cpus)")
            failed = True
    elif args.min_speedup is not None:
        print(f"speedup gate skipped: {record['cpu_count']} cpu(s) < "
              f"{largest} workers (ratio recorded, not enforced)")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
