"""Serving throughput — cold vs warm cache, single vs batched, per workload.

The serving subsystem's claim is operational rather than asymptotic: once a
compact-routing hierarchy is built (Corollary 4.14's expensive phase), a
:class:`RoutingService` should sustain far higher query throughput on
realistic (skewed) traffic than naive one-at-a-time querying, because

* batched queries amortize per-target label lookups, and
* the LRU result cache absorbs the repeats that Zipf/locality streams are
  full of.

For each workload shape (uniform / zipf / locality) this benchmark measures
route-query throughput in three configurations over the same query stream:

* ``cold_single``  — result cache disabled, one query at a time, runtime
  caches cleared first (the naive baseline);
* ``cold_batch``   — result cache disabled, batched API (isolates the
  batching win);
* ``warm_batch``   — result cache enabled and pre-warmed with one pass
  (the steady state of a long-running service).

All three configurations are opened through the serving API v2 — a
``ServingConfig`` per configuration, ``open_service`` per backend — over one
shared artifact, so the benchmark exercises exactly the surface production
callers use.

A second measurement compares the batch *query kernels* head to head: the
same cold (cache-disabled) distance stream answered once with
``kernel="dict"`` (per-pair probes through the mapping adapters) and once
with ``kernel="columnar"`` (the array-native kernel reading the v2 record
slices directly), on uniform and zipf streams.  Answers are asserted
identical; the recorded numbers are the measured columnar speedup.

Run as a script to produce a run directory in the ``repro-experiment``
layout (``config.json`` / ``metrics.json`` / ``environment.json``, so
``repro-experiment compare`` can gate one benchmark run against another)
plus the flat ``BENCH_serving_throughput.json`` CI artifact derived from
the run directory's ``metrics.json``:

    PYTHONPATH=src python benchmarks/bench_serving_throughput.py \\
        --sizes 120 500 --out BENCH_serving_throughput.json

The pytest entry point runs a small smoke configuration and asserts the
headline claim (warm batched >= 2x cold single on the Zipf workload).
"""

import argparse
import dataclasses
import json
import os
import tempfile
import time

import pytest

from repro import graphs
from repro.obs.experiment import load_run, write_run_directory
from repro.serving import (
    BuildConfig,
    CacheConfig,
    ServingConfig,
    make_workload,
    open_service,
)

WORKLOAD_SHAPES = ("uniform", "zipf", "locality", "bursty")


def make_serving_graph(n: int, seed: int = 0):
    """ER graph with average degree ~6 and small weights (few rounding levels)."""
    p = min(1.0, 6.0 / max(1, n - 1))
    return graphs.erdos_renyi_graph(n, p, graphs.uniform_weights(1, 8), seed=seed)


def _timed_single(service, pairs) -> float:
    start = time.perf_counter()
    for s, t in pairs:
        service.route(s, t)
    return time.perf_counter() - start


def _timed_batched(service, pairs, batch_size: int) -> float:
    start = time.perf_counter()
    for lo in range(0, len(pairs), batch_size):
        service.route_batch(pairs[lo:lo + batch_size])
    return time.perf_counter() - start


def run_serving_benchmark(n: int, seed: int = 0, k: int = 3,
                          epsilon: float = 0.25, num_queries: int = 2000,
                          batch_size: int = 64, cache_size: int = 65536) -> dict:
    """Build one artifact, measure all shapes/configurations against it.

    Each configuration opens its own backend from the shared artifact, so
    every run starts with cold runtime caches by construction (a fresh load
    holds no query-time state).
    """
    graph = make_serving_graph(n, seed=seed)
    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmp:
        artifact = os.path.join(tmp, "hierarchy.artifact")
        base = ServingConfig(
            artifact_path=artifact,
            build=BuildConfig(k=k, epsilon=epsilon, seed=seed),
            cache=CacheConfig(capacity=0),
            batch_size=batch_size)
        builder = open_service(base, graph=graph)
        build_seconds = builder.query_stats().build_seconds

        record = {
            "n": n,
            "m": graph.num_edges,
            "k": k,
            "epsilon": epsilon,
            "mode": builder.hierarchy.mode,
            "num_queries": num_queries,
            "batch_size": batch_size,
            "build_seconds": round(build_seconds, 4),
            "workloads": {},
        }
        builder.close()

        for shape in WORKLOAD_SHAPES:
            workload = make_workload(shape, graph, num_queries, seed=seed)
            pairs = workload.pairs

            # Cold single-query baseline: no result cache, fresh backend.
            with open_service(base) as cold:
                cold_single_seconds = _timed_single(cold, pairs)

            # Cold batched: still no result cache; batching/dedup only.
            with open_service(base) as cold_batched:
                cold_batch_seconds = _timed_batched(cold_batched, pairs,
                                                    batch_size)

            # Warm batched: result cache enabled, pre-warmed with one pass.
            warm_config = dataclasses.replace(
                base, cache=CacheConfig(capacity=cache_size))
            with open_service(warm_config) as warm:
                _timed_batched(warm, pairs, batch_size)  # warming (unmeasured)
                warm_batch_seconds = _timed_batched(warm, pairs, batch_size)

            qps = lambda seconds: (num_queries / seconds if seconds > 0
                                   else float("inf"))
            shape_record = {
                **workload.skew_summary(),
                "cold_single_qps": round(qps(cold_single_seconds), 1),
                "cold_batch_qps": round(qps(cold_batch_seconds), 1),
                "warm_batch_qps": round(qps(warm_batch_seconds), 1),
                "batch_speedup": round(cold_single_seconds /
                                       max(cold_batch_seconds, 1e-9), 2),
                "warm_speedup": round(cold_single_seconds /
                                      max(warm_batch_seconds, 1e-9), 2),
                "cache_hit_rate": round(warm.query_stats().cache_hit_rate, 4),
            }
            record["workloads"][shape] = shape_record
    return record


def run_kernel_benchmark(n: int, seed: int = 0, k: int = 3,
                         epsilon: float = 0.25, num_queries: int = 2000,
                         batch_size: int = 64) -> dict:
    """Cold-cache kernel-vs-dict comparison over one mmap'd v2 artifact.

    Result caches are disabled and each kernel gets a freshly-opened
    backend (cold runtime caches by construction), so the measured gap is
    purely the probing strategy: per-pair dict probes vs the columnar
    record-slice kernel.  Distances are asserted list-for-list identical
    before any timing is reported.
    """
    graph = make_serving_graph(n, seed=seed)
    with tempfile.TemporaryDirectory(prefix="repro-kernel-bench-") as tmp:
        artifact = os.path.join(tmp, "hierarchy.artifact")
        base = ServingConfig(
            artifact_path=artifact,
            build=BuildConfig(k=k, epsilon=epsilon, seed=seed),
            cache=CacheConfig(capacity=0),
            batch_size=batch_size, kind="distance")
        open_service(base, graph=graph).close()   # build + save once

        record = {"n": n, "m": graph.num_edges, "k": k,
                  "num_queries": num_queries, "batch_size": batch_size,
                  "workloads": {}}
        for shape in ("uniform", "zipf"):
            workload = make_workload(shape, graph, num_queries, seed=seed)
            pairs = workload.pairs
            timings = {}
            answers = {}
            for kernel in ("dict", "columnar"):
                config = dataclasses.replace(base, kernel=kernel)
                with open_service(config) as service:
                    assert service.query_stats().extra["kernel_active"] \
                        == kernel, "artifact must be v2 for the columnar leg"
                    start = time.perf_counter()
                    results = []
                    for lo in range(0, len(pairs), batch_size):
                        results.extend(
                            service.distance_batch(pairs[lo:lo + batch_size]))
                    timings[kernel] = time.perf_counter() - start
                    answers[kernel] = results
            assert answers["dict"] == answers["columnar"], \
                "kernels must answer list-for-list identically"
            record["workloads"][shape] = {
                **workload.skew_summary(),
                "dict_qps": round(num_queries / max(timings["dict"], 1e-9), 1),
                "columnar_qps": round(
                    num_queries / max(timings["columnar"], 1e-9), 1),
                "columnar_speedup": round(
                    timings["dict"] / max(timings["columnar"], 1e-9), 2),
            }
    return record


# ----------------------------------------------------------------------
# pytest entry point (smoke scale)
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="serving")
def test_serving_throughput_smoke(benchmark):
    record = benchmark.pedantic(
        lambda: run_serving_benchmark(150, num_queries=800),
        iterations=1, rounds=1)
    print()
    for shape, stats in record["workloads"].items():
        print(f"{shape:>9}: cold-single {stats['cold_single_qps']:>9} q/s  "
              f"cold-batch {stats['cold_batch_qps']:>9} q/s  "
              f"warm-batch {stats['warm_batch_qps']:>9} q/s  "
              f"(warm speedup {stats['warm_speedup']}x, "
              f"hit rate {stats['cache_hit_rate']:.0%})")
    zipf = record["workloads"]["zipf"]
    # The headline serving claim, at a conservative smoke-scale margin.
    assert zipf["warm_speedup"] >= 2.0
    # Batching alone must never be slower than single queries by more than
    # measurement noise (it dedups within the batch).
    assert zipf["batch_speedup"] >= 0.8


@pytest.mark.benchmark(group="serving")
def test_kernel_throughput_smoke(benchmark):
    record = benchmark.pedantic(
        lambda: run_kernel_benchmark(150, num_queries=800),
        iterations=1, rounds=1)
    print()
    for shape, stats in record["workloads"].items():
        print(f"{shape:>9}: dict {stats['dict_qps']:>9} q/s  "
              f"columnar {stats['columnar_qps']:>9} q/s  "
              f"(speedup {stats['columnar_speedup']}x)")
    # Identity is asserted inside run_kernel_benchmark; at smoke scale only
    # require the columnar kernel not to be a regression beyond noise.
    for stats in record["workloads"].values():
        assert stats["columnar_speedup"] >= 0.7


# ----------------------------------------------------------------------
# CLI entry point (full scale, JSON artifact)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+", default=[120, 500])
    parser.add_argument("--kernel-sizes", type=int, nargs="+",
                        default=[500],
                        help="graph sizes for the cold-cache kernel-vs-dict "
                             "comparison (uniform + zipf)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--k", type=int, default=3)
    parser.add_argument("--queries", type=int, default=2000)
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--out", default="BENCH_serving_throughput.json")
    parser.add_argument("--run-dir", default=None,
                        help="run directory to write (repro-experiment "
                             "layout; default runs/bench_serving_throughput/"
                             "<utc-timestamp>-<pid>)")
    args = parser.parse_args(argv)

    records = []
    for n in args.sizes:
        record = run_serving_benchmark(n, seed=args.seed, k=args.k,
                                       num_queries=args.queries,
                                       batch_size=args.batch_size)
        records.append(record)
        print(f"n={n:>5} build={record['build_seconds']}s")
        for shape, stats in record["workloads"].items():
            print(f"  {shape:>9}: cold-single {stats['cold_single_qps']:>10} q/s  "
                  f"cold-batch {stats['cold_batch_qps']:>10} q/s  "
                  f"warm-batch {stats['warm_batch_qps']:>10} q/s  "
                  f"warm-speedup {stats['warm_speedup']}x")

    kernel_records = []
    for n in args.kernel_sizes:
        record = run_kernel_benchmark(n, seed=args.seed, k=args.k,
                                      num_queries=args.queries,
                                      batch_size=args.batch_size)
        kernel_records.append(record)
        print(f"n={n:>5} kernel comparison (cold cache, distance)")
        for shape, stats in record["workloads"].items():
            print(f"  {shape:>9}: dict {stats['dict_qps']:>10} q/s  "
                  f"columnar {stats['columnar_qps']:>10} q/s  "
                  f"columnar-speedup {stats['columnar_speedup']}x")

    payload = {
        "benchmark": "serving_throughput",
        "description": "RoutingService route-query throughput: cold vs warm "
                       "cache, single vs batched, per workload shape",
        "workload": "ER avg-degree-6, weights 1..8, k=3 hierarchy; "
                    "uniform/zipf/locality query streams",
        "records": records,
        "kernel_comparison": {
            "description": "cold-cache distance throughput, dict vs "
                           "columnar batch kernel over one mmap'd v2 "
                           "artifact (answers asserted identical)",
            "records": kernel_records,
        },
    }
    run_dir = args.run_dir
    if run_dir is None:
        run_id = time.strftime("%Y%m%dT%H%M%S", time.gmtime()) \
            + f"-{os.getpid()}"
        run_dir = os.path.join("runs", "bench_serving_throughput", run_id)
    write_run_directory(run_dir, payload, {
        "name": "bench_serving_throughput",
        "sizes": args.sizes,
        "kernel_sizes": args.kernel_sizes,
        "seed": args.seed,
        "k": args.k,
        "queries": args.queries,
        "batch_size": args.batch_size,
    })
    print(f"wrote run directory {run_dir}")

    # The flat CI artifact is *derived* from the run directory — one
    # source of truth, two consumers.
    with open(args.out, "w") as fh:
        json.dump(load_run(run_dir)["metrics"], fh, indent=2)
    print(f"wrote {args.out}")

    # Exit non-zero if the headline claims fail at the largest size.
    largest = max(records, key=lambda r: r["n"])
    ok = largest["workloads"]["zipf"]["warm_speedup"] >= 2.0
    if kernel_records:
        largest_kernel = max(kernel_records, key=lambda r: r["n"])
        # The columnar kernel must beat the dict path on cold uniform
        # traffic at scale — the measured win the refactor exists for.
        ok = ok and all(stats["columnar_speedup"] > 1.0 for stats
                        in largest_kernel["workloads"].values())
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
