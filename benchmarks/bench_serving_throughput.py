"""Serving throughput — cold vs warm cache, single vs batched, per workload.

The serving subsystem's claim is operational rather than asymptotic: once a
compact-routing hierarchy is built (Corollary 4.14's expensive phase), a
:class:`RoutingService` should sustain far higher query throughput on
realistic (skewed) traffic than naive one-at-a-time querying, because

* batched queries amortize per-target label lookups, and
* the LRU result cache absorbs the repeats that Zipf/locality streams are
  full of.

For each workload shape (uniform / zipf / locality) this benchmark measures
route-query throughput in three configurations over the same query stream:

* ``cold_single``  — result cache disabled, one query at a time, runtime
  caches cleared first (the naive baseline);
* ``cold_batch``   — result cache disabled, batched API (isolates the
  batching win);
* ``warm_batch``   — result cache enabled and pre-warmed with one pass
  (the steady state of a long-running service).

All three configurations are opened through the serving API v2 — a
``ServingConfig`` per configuration, ``open_service`` per backend — over one
shared artifact, so the benchmark exercises exactly the surface production
callers use.

Run as a script to produce the JSON artifact consumed by CI:

    PYTHONPATH=src python benchmarks/bench_serving_throughput.py \\
        --sizes 120 500 --out BENCH_serving_throughput.json

The pytest entry point runs a small smoke configuration and asserts the
headline claim (warm batched >= 2x cold single on the Zipf workload).
"""

import argparse
import dataclasses
import json
import os
import tempfile
import time

import pytest

from repro import graphs
from repro.serving import (
    BuildConfig,
    CacheConfig,
    ServingConfig,
    make_workload,
    open_service,
)

WORKLOAD_SHAPES = ("uniform", "zipf", "locality", "bursty")


def make_serving_graph(n: int, seed: int = 0):
    """ER graph with average degree ~6 and small weights (few rounding levels)."""
    p = min(1.0, 6.0 / max(1, n - 1))
    return graphs.erdos_renyi_graph(n, p, graphs.uniform_weights(1, 8), seed=seed)


def _timed_single(service, pairs) -> float:
    start = time.perf_counter()
    for s, t in pairs:
        service.route(s, t)
    return time.perf_counter() - start


def _timed_batched(service, pairs, batch_size: int) -> float:
    start = time.perf_counter()
    for lo in range(0, len(pairs), batch_size):
        service.route_batch(pairs[lo:lo + batch_size])
    return time.perf_counter() - start


def run_serving_benchmark(n: int, seed: int = 0, k: int = 3,
                          epsilon: float = 0.25, num_queries: int = 2000,
                          batch_size: int = 64, cache_size: int = 65536) -> dict:
    """Build one artifact, measure all shapes/configurations against it.

    Each configuration opens its own backend from the shared artifact, so
    every run starts with cold runtime caches by construction (a fresh load
    holds no query-time state).
    """
    graph = make_serving_graph(n, seed=seed)
    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmp:
        artifact = os.path.join(tmp, "hierarchy.artifact")
        base = ServingConfig(
            artifact_path=artifact,
            build=BuildConfig(k=k, epsilon=epsilon, seed=seed),
            cache=CacheConfig(capacity=0),
            batch_size=batch_size)
        builder = open_service(base, graph=graph)
        build_seconds = builder.query_stats().build_seconds

        record = {
            "n": n,
            "m": graph.num_edges,
            "k": k,
            "epsilon": epsilon,
            "mode": builder.hierarchy.mode,
            "num_queries": num_queries,
            "batch_size": batch_size,
            "build_seconds": round(build_seconds, 4),
            "workloads": {},
        }
        builder.close()

        for shape in WORKLOAD_SHAPES:
            workload = make_workload(shape, graph, num_queries, seed=seed)
            pairs = workload.pairs

            # Cold single-query baseline: no result cache, fresh backend.
            with open_service(base) as cold:
                cold_single_seconds = _timed_single(cold, pairs)

            # Cold batched: still no result cache; batching/dedup only.
            with open_service(base) as cold_batched:
                cold_batch_seconds = _timed_batched(cold_batched, pairs,
                                                    batch_size)

            # Warm batched: result cache enabled, pre-warmed with one pass.
            warm_config = dataclasses.replace(
                base, cache=CacheConfig(capacity=cache_size))
            with open_service(warm_config) as warm:
                _timed_batched(warm, pairs, batch_size)  # warming (unmeasured)
                warm_batch_seconds = _timed_batched(warm, pairs, batch_size)

            qps = lambda seconds: (num_queries / seconds if seconds > 0
                                   else float("inf"))
            shape_record = {
                **workload.skew_summary(),
                "cold_single_qps": round(qps(cold_single_seconds), 1),
                "cold_batch_qps": round(qps(cold_batch_seconds), 1),
                "warm_batch_qps": round(qps(warm_batch_seconds), 1),
                "batch_speedup": round(cold_single_seconds /
                                       max(cold_batch_seconds, 1e-9), 2),
                "warm_speedup": round(cold_single_seconds /
                                      max(warm_batch_seconds, 1e-9), 2),
                "cache_hit_rate": round(warm.query_stats().cache_hit_rate, 4),
            }
            record["workloads"][shape] = shape_record
    return record


# ----------------------------------------------------------------------
# pytest entry point (smoke scale)
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="serving")
def test_serving_throughput_smoke(benchmark):
    record = benchmark.pedantic(
        lambda: run_serving_benchmark(150, num_queries=800),
        iterations=1, rounds=1)
    print()
    for shape, stats in record["workloads"].items():
        print(f"{shape:>9}: cold-single {stats['cold_single_qps']:>9} q/s  "
              f"cold-batch {stats['cold_batch_qps']:>9} q/s  "
              f"warm-batch {stats['warm_batch_qps']:>9} q/s  "
              f"(warm speedup {stats['warm_speedup']}x, "
              f"hit rate {stats['cache_hit_rate']:.0%})")
    zipf = record["workloads"]["zipf"]
    # The headline serving claim, at a conservative smoke-scale margin.
    assert zipf["warm_speedup"] >= 2.0
    # Batching alone must never be slower than single queries by more than
    # measurement noise (it dedups within the batch).
    assert zipf["batch_speedup"] >= 0.8


# ----------------------------------------------------------------------
# CLI entry point (full scale, JSON artifact)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+", default=[120, 500])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--k", type=int, default=3)
    parser.add_argument("--queries", type=int, default=2000)
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--out", default="BENCH_serving_throughput.json")
    args = parser.parse_args(argv)

    records = []
    for n in args.sizes:
        record = run_serving_benchmark(n, seed=args.seed, k=args.k,
                                       num_queries=args.queries,
                                       batch_size=args.batch_size)
        records.append(record)
        print(f"n={n:>5} build={record['build_seconds']}s")
        for shape, stats in record["workloads"].items():
            print(f"  {shape:>9}: cold-single {stats['cold_single_qps']:>10} q/s  "
                  f"cold-batch {stats['cold_batch_qps']:>10} q/s  "
                  f"warm-batch {stats['warm_batch_qps']:>10} q/s  "
                  f"warm-speedup {stats['warm_speedup']}x")

    payload = {
        "benchmark": "serving_throughput",
        "description": "RoutingService route-query throughput: cold vs warm "
                       "cache, single vs batched, per workload shape",
        "workload": "ER avg-degree-6, weights 1..8, k=3 hierarchy; "
                    "uniform/zipf/locality query streams",
        "records": records,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {args.out}")

    # Exit non-zero if the headline claim fails at the largest size.
    largest = max(records, key=lambda r: r["n"])
    return 0 if largest["workloads"]["zipf"]["warm_speedup"] >= 2.0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
