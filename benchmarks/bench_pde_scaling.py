"""E3 — Corollary 3.5 / Lemma 3.4: PDE rounds and per-node broadcasts.

Measures the faithful simulator: rounds against the ``(h+sigma)/eps^2 log n``
bound and per-node broadcasts against the ``sigma^2/eps log n`` bound, as
``h`` and ``sigma`` vary.
"""

import pytest

from repro import graphs
from repro.analysis import render_table, run_pde_scaling


@pytest.fixture(scope="module")
def pde_graph():
    return graphs.erdos_renyi_graph(20, 0.2, graphs.uniform_weights(1, 60), seed=21)


@pytest.mark.benchmark(group="pde")
def test_pde_sigma_sweep(benchmark, pde_graph):
    def run():
        return [run_pde_scaling(pde_graph, num_sources=8, h=5, sigma=sigma,
                                epsilon=0.5, engine="simulate")
                for sigma in (1, 2, 3, 4)]

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(render_table(rows, columns=[
        "sigma", "h", "levels", "rounds", "round_bound",
        "max_broadcasts", "broadcast_bound", "per_level_cap",
    ], title="E3 — PDE cost vs sigma (Corollary 3.5 / Lemma 3.4)"))
    # Lemma 3.4: per level a node broadcasts at most sigma(sigma+1)/2 times,
    # and there are O(log n / eps) levels.
    for record in rows:
        assert record["max_broadcasts"] <= record["per_level_cap"] * record["levels"]
    broadcasts = [r["max_broadcasts"] for r in rows]
    assert broadcasts == sorted(broadcasts)  # grows with sigma


@pytest.mark.benchmark(group="pde")
def test_pde_h_sweep(benchmark, pde_graph):
    def run():
        return [run_pde_scaling(pde_graph, num_sources=8, h=h, sigma=3,
                                epsilon=0.5, engine="simulate")
                for h in (2, 4, 6, 8)]

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(render_table(rows, columns=[
        "h", "sigma", "rounds", "round_bound", "max_broadcasts", "broadcast_bound",
    ], title="E3 — PDE cost vs h"))
    # Broadcast counts are governed by sigma, not by h (Lemma 3.4): the
    # largest-h run must not broadcast more than ~the bound.
    for record in rows:
        assert record["max_broadcasts"] <= record["broadcast_bound"]


@pytest.mark.benchmark(group="pde")
def test_pde_epsilon_cost(benchmark, pde_graph):
    def run():
        return [run_pde_scaling(pde_graph, num_sources=6, h=4, sigma=3,
                                epsilon=eps, engine="simulate")
                for eps in (1.0, 0.5, 0.25)]

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(render_table(rows, columns=[
        "epsilon", "levels", "rounds", "round_bound", "max_broadcasts",
    ], title="E3 — PDE cost vs epsilon (more levels for smaller eps)"))
    levels = [r["levels"] for r in rows]
    assert levels == sorted(levels)
