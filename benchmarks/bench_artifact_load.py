"""Artifact cold-load latency and time-to-first-answer: v1 vs v2 vs sub-artifacts.

Format v1 pickles one monolithic state blob, so a serving process pays the
full deserialisation of every table before it can answer anything — and each
of N co-located shard workers holds a private copy.  Format v2 stores the
query-hot tables as mmap-able fixed-width record sections: loading parses
the header, maps the file, and unpickles only the small eager sections
(graph, level sets, metrics); the pivot and bunch records page in as
queries touch them, shared across processes through the OS page cache.
Sub-artifacts go further for sharded serving: each worker maps a per-shard
slice holding only its own sources' bunch rows and reachable trees.

Per configuration this benchmark forks a fresh probe process per variant
(cold Python-level caches, honest RSS deltas) and records:

* ``load_seconds``  — artifact open/deserialise time;
* ``ttfa_seconds``  — time to first answer: load plus one cold query batch;
* ``rss_delta_kb``  — resident-set growth of load + first batch
  (``/proc/self/status`` VmRSS delta);
* ``artifact_bytes`` — table bytes the probe's artifact holds (for
  sub-artifacts, the per-worker slice).

Run as a script to produce the JSON artifact consumed by CI:

    PYTHONPATH=src python benchmarks/bench_artifact_load.py \\
        --n 500 --queries 512 --workers 4 --out BENCH_artifact_load.json

The pytest entry point runs a smoke configuration and asserts the v2
answers are identical to v1 and the acceptance directions (v2 faster to
first answer; sub-artifacts smaller per worker) hold.
"""

import argparse
import multiprocessing
import os
import tempfile
import time

import pytest

from repro import graphs
from repro.obs.experiment import record_benchmark_run
from repro.routing import build_compact_routing
from repro.routing.tables import NodeInternTable
from repro.serving import (
    RoutingService,
    answer_batch,
    artifact_info,
    save_hierarchy,
    stable_node_hash,
    write_shard_artifacts,
    zipf_workload,
)


def make_serving_graph(n: int, seed: int = 0):
    """ER graph with average degree ~6 and small weights (few rounding levels)."""
    p = min(1.0, 6.0 / max(1, n - 1))
    return graphs.erdos_renyi_graph(n, p, graphs.uniform_weights(1, 8), seed=seed)


def _read_rss_kb():
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return None


def _probe_worker(path, pairs, kind, queue) -> None:
    """Load ``path`` and answer one cold batch, reporting timings and RSS.

    Runs in a freshly forked process so Python-level caches are cold and the
    RSS delta is attributable to this load (the OS page cache stays warm
    across probes for *both* formats, which is the deployment-realistic
    comparison: v1 pays deserialisation either way, v2 pays page-ins it
    shares).
    """
    rss_before = _read_rss_kb()
    start = time.perf_counter()
    service = RoutingService.load(path, cache_size=0)
    load_seconds = time.perf_counter() - start
    answers = answer_batch(service, kind, pairs)
    ttfa_seconds = time.perf_counter() - start
    rss_after = _read_rss_kb()
    if kind == "route":
        answers = [(trace.path, trace.weight) for trace in answers]
    queue.put({
        "load_seconds": load_seconds,
        "ttfa_seconds": ttfa_seconds,
        "rss_delta_kb": (rss_after - rss_before
                         if rss_before is not None and rss_after is not None
                         else None),
        "artifact_bytes": service.stats.artifact_bytes,
        "artifact_format": service.stats.extra.get("artifact_format"),
        "answers": answers,
    })


def _probe(path, pairs, kind="distance", timeout=300.0):
    ctx = multiprocessing.get_context("fork")
    queue = ctx.Queue()
    process = ctx.Process(target=_probe_worker,
                          args=(path, list(pairs), kind, queue))
    process.start()
    try:
        # Bounded wait: a probe child that dies before reporting (load
        # error, OOM kill) must fail the benchmark, not hang it — CI runs
        # this job.
        result = queue.get(timeout=timeout)
    except Exception:
        process.join(timeout=5.0)
        raise RuntimeError(
            f"probe of {path!r} produced no result within {timeout}s "
            f"(exitcode {process.exitcode}); see the child's traceback "
            f"above") from None
    process.join()
    return result


def run_artifact_load(n: int, seed: int = 0, k: int = 3, queries: int = 512,
                      workers: int = 4, kind: str = "distance") -> dict:
    """Build once; probe cold load + first answers for every load path."""
    graph = make_serving_graph(n, seed=seed)
    workload = zipf_workload(graph.nodes(), queries, seed=seed)
    pairs = workload.pairs

    build_start = time.perf_counter()
    hierarchy = build_compact_routing(graph, k=k, seed=seed)
    build_seconds = time.perf_counter() - build_start

    with tempfile.TemporaryDirectory(prefix="repro-artifact-bench-") as tmp:
        v1_path = os.path.join(tmp, "hierarchy.v1.artifact")
        v2_path = os.path.join(tmp, "hierarchy.v2.artifact")
        save_hierarchy(hierarchy, v1_path, format=1)
        save_hierarchy(hierarchy, v2_path, format=2)

        v2c_path = os.path.join(tmp, "hierarchy.v2c.artifact")
        save_hierarchy(hierarchy, v2c_path, format=2,
                       compress_node_table=True)

        v1 = _probe(v1_path, pairs, kind)
        v2 = _probe(v2_path, pairs, kind)
        v2c = _probe(v2c_path, pairs, kind)
        v2_answers = v2.pop("answers")
        identical = v1.pop("answers") == v2_answers
        identical_compressed = v2c.pop("answers") == v2_answers

        sub_paths = write_shard_artifacts(v2_path, workers)
        per_worker = []
        sub_identical = True
        for shard, sub_path in enumerate(sub_paths):
            owned = [pair for pair in pairs
                     if stable_node_hash(pair[0]) % workers == shard]
            probe = _probe(sub_path, owned, kind)
            answers = probe.pop("answers")
            if kind == "distance":
                expected = [hierarchy.distance(s, t) for s, t in owned]
            else:
                expected = [(hierarchy.route(s, t).path,
                             hierarchy.route(s, t).weight)
                            for s, t in owned]
            sub_identical = sub_identical and answers == expected
            probe["shard"] = shard
            probe["owned_queries"] = len(owned)
            per_worker.append(probe)

        full_bytes = artifact_info(v2_path).payload_bytes
        mean_sub_bytes = (sum(p["artifact_bytes"] for p in per_worker)
                          / max(1, len(per_worker)))

        # Node-table compression (front coding): the size delta on this
        # graph's actual labels, plus the same table with production-style
        # string labels ("node-000042", ...) where shared prefixes are the
        # norm — that is the case the encoding exists for.
        intern = NodeInternTable(graph.nodes())
        str_intern = NodeInternTable(
            [f"node-{i:06d}" for i in range(graph.num_nodes)])
        tagged, fc = len(intern.encode()), len(intern.encode(compress=True))
        str_tagged = len(str_intern.encode())
        str_fc = len(str_intern.encode(compress=True))
        node_table = {
            "tagged_bytes": tagged,
            "front_coded_bytes": fc,
            "front_coded_ratio": round(fc / tagged, 3) if tagged else 1.0,
            "string_labels_tagged_bytes": str_tagged,
            "string_labels_front_coded_bytes": str_fc,
            "string_labels_front_coded_ratio": round(str_fc / str_tagged, 3)
                                               if str_tagged else 1.0,
            "v2_compressed_payload_bytes": artifact_info(
                v2c_path).payload_bytes,
            "identical_answers_compressed": identical_compressed,
        }

    record = {
        "n": n,
        "m": graph.num_edges,
        "k": k,
        "queries": queries,
        "kind": kind,
        "workers": workers,
        "build_seconds": round(build_seconds, 4),
        "v1": {key: (round(value, 5) if isinstance(value, float) else value)
               for key, value in v1.items()},
        "v2": {key: (round(value, 5) if isinstance(value, float) else value)
               for key, value in v2.items()},
        "identical_answers_v1_v2": identical,
        "ttfa_speedup_v2_vs_v1": round(
            v1["ttfa_seconds"] / v2["ttfa_seconds"], 2)
            if v2["ttfa_seconds"] > 0 else float("inf"),
        "load_speedup_v2_vs_v1": round(
            v1["load_seconds"] / v2["load_seconds"], 2)
            if v2["load_seconds"] > 0 else float("inf"),
        "sub_artifacts": {
            "per_worker": [
                {key: (round(value, 5) if isinstance(value, float) else value)
                 for key, value in probe.items()}
                for probe in per_worker],
            "full_artifact_bytes": full_bytes,
            "mean_worker_bytes": round(mean_sub_bytes, 1),
            "bytes_reduction_vs_full": round(full_bytes / mean_sub_bytes, 2)
                if mean_sub_bytes else float("inf"),
            "identical_answers": sub_identical,
        },
        "node_table": node_table,
    }
    return record


# ----------------------------------------------------------------------
# pytest entry point (smoke scale)
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="artifacts")
def test_artifact_load_smoke(benchmark):
    record = benchmark.pedantic(
        lambda: run_artifact_load(100, queries=240, workers=2),
        iterations=1, rounds=1)
    print()
    print(f"v1 ttfa {record['v1']['ttfa_seconds']}s  "
          f"v2 ttfa {record['v2']['ttfa_seconds']}s  "
          f"speedup {record['ttfa_speedup_v2_vs_v1']}x")
    print(f"sub-artifact bytes reduction "
          f"{record['sub_artifacts']['bytes_reduction_vs_full']}x")
    print(f"node table: tagged {record['node_table']['tagged_bytes']}B  "
          f"front-coded {record['node_table']['front_coded_bytes']}B; "
          f"string labels "
          f"{record['node_table']['string_labels_front_coded_ratio']:.0%} "
          f"of tagged")
    # The hard invariant: the load path never changes an answer.
    assert record["identical_answers_v1_v2"] is True
    assert record["sub_artifacts"]["identical_answers"] is True
    assert record["node_table"]["identical_answers_compressed"] is True
    # Front coding must pay for itself on prefix-heavy string labels.
    assert record["node_table"]["string_labels_front_coded_ratio"] < 0.8
    # Directional acceptance at smoke scale (the full-scale thresholds —
    # >= 5x TTFA, >= 2x bytes — are asserted by the CI run's JSON).
    assert record["ttfa_speedup_v2_vs_v1"] > 1.0
    assert record["sub_artifacts"]["bytes_reduction_vs_full"] > 1.5


# ----------------------------------------------------------------------
# CLI entry point (full scale, JSON artifact)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, nargs="+", default=[500])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--k", type=int, default=3)
    parser.add_argument("--queries", type=int, default=512)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--kind", default="distance",
                        choices=["distance", "route"])
    parser.add_argument("--min-ttfa-speedup", type=float, default=None,
                        help="exit non-zero unless v2's time-to-first-answer "
                             "speedup over v1 reaches this at the largest n")
    parser.add_argument("--min-bytes-reduction", type=float, default=None,
                        help="exit non-zero unless sub-artifacts shrink mean "
                             "per-worker table bytes by this factor")
    parser.add_argument("--out", default="BENCH_artifact_load.json")
    parser.add_argument("--run-dir", default=None,
                        help="run directory to write (repro-experiment "
                             "layout; default runs/bench_artifact_load/"
                             "<utc-timestamp>-<pid>)")
    args = parser.parse_args(argv)

    records = []
    for n in args.n:
        record = run_artifact_load(n, seed=args.seed, k=args.k,
                                   queries=args.queries,
                                   workers=args.workers, kind=args.kind)
        records.append(record)
        print(f"n={n} build={record['build_seconds']}s "
              f"v1 bytes={record['v1']['artifact_bytes']} "
              f"v2 bytes={record['v2']['artifact_bytes']}")
        print(f"  cold load : v1 {record['v1']['load_seconds']}s  "
              f"v2 {record['v2']['load_seconds']}s  "
              f"({record['load_speedup_v2_vs_v1']}x)")
        print(f"  ttfa      : v1 {record['v1']['ttfa_seconds']}s  "
              f"v2 {record['v2']['ttfa_seconds']}s  "
              f"({record['ttfa_speedup_v2_vs_v1']}x)  "
              f"identical={record['identical_answers_v1_v2']}")
        sub = record["sub_artifacts"]
        print(f"  sub-artifacts ({record['workers']} workers): mean "
              f"{sub['mean_worker_bytes']} bytes/worker vs "
              f"{sub['full_artifact_bytes']} full "
              f"({sub['bytes_reduction_vs_full']}x smaller), "
              f"identical={sub['identical_answers']}")
        nt = record["node_table"]
        print(f"  node table: tagged {nt['tagged_bytes']}B vs front-coded "
              f"{nt['front_coded_bytes']}B "
              f"({nt['front_coded_ratio']:.0%}); string labels "
              f"{nt['string_labels_tagged_bytes']}B vs "
              f"{nt['string_labels_front_coded_bytes']}B "
              f"({nt['string_labels_front_coded_ratio']:.0%}), "
              f"identical={nt['identical_answers_compressed']}")

    payload = {
        "benchmark": "artifact_load",
        "description": "Cold artifact load and time-to-first-answer for "
                       "format 1 (eager unpickle) vs format 2 (mmap + lazy "
                       "sections) vs format 2 per-shard sub-artifacts; each "
                       "probe runs in a fresh forked process and records "
                       "load/TTFA wall clock, VmRSS delta and the table "
                       "bytes its artifact holds",
        "workload": "ER avg-degree-6, weights 1..8, k=3 hierarchy; one cold "
                    "Zipf batch answered per probe",
        "records": records,
    }
    record_benchmark_run(
        "bench_artifact_load", payload,
        {"n": args.n, "seed": args.seed, "k": args.k,
         "queries": args.queries, "workers": args.workers,
         "kind": args.kind},
        out_path=args.out, run_dir=args.run_dir)

    final = records[-1]
    if args.min_ttfa_speedup is not None \
            and final["ttfa_speedup_v2_vs_v1"] < args.min_ttfa_speedup:
        print(f"FAIL: ttfa speedup {final['ttfa_speedup_v2_vs_v1']}x < "
              f"required {args.min_ttfa_speedup}x")
        return 1
    if args.min_bytes_reduction is not None \
            and final["sub_artifacts"]["bytes_reduction_vs_full"] \
            < args.min_bytes_reduction:
        print(f"FAIL: bytes reduction "
              f"{final['sub_artifacts']['bytes_reduction_vs_full']}x < "
              f"required {args.min_bytes_reduction}x")
        return 1
    if not (final["identical_answers_v1_v2"]
            and final["sub_artifacts"]["identical_answers"]
            and final["node_table"]["identical_answers_compressed"]):
        print("FAIL: load paths disagreed on answers")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
