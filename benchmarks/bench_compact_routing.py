"""E5 — Theorems 4.8/4.13 and Corollary 4.14: compact routing.

Regenerates the compact-routing trade-off: stretch at most ``4k - 3 + o(1)``,
table sizes tracking ``O~(n^{1/k})``, labels of ``O(k log n)`` bits, and the
truncated (skeleton) construction of Theorem 4.13.
"""

import pytest

from repro.analysis import render_table, run_compact_experiment


@pytest.mark.benchmark(group="compact")
def test_compact_k_sweep(benchmark, routing_workloads):
    g = routing_workloads["er_n32"]

    def run():
        return [run_compact_experiment(g, k=k, mode="budget", pair_sample=200, seed=k)
                for k in (1, 2, 3, 4)]

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(render_table(rows, columns=[
        "k", "stretch_bound", "max_route_stretch", "mean_route_stretch",
        "delivery_rate", "max_table_words", "table_bound_words",
        "max_label_bits", "max_bunch_size", "rounds",
    ], title="E5 — compact routing: stretch / table-size trade-off vs k"))
    for record in rows:
        assert record["delivery_rate"] == 1.0
        assert record["max_route_stretch"] <= record["stretch_bound"] + 1e-6
    # Larger k buys smaller bunches (tables) at the price of larger stretch
    # bounds — the defining trade-off.
    bunches = [r["max_bunch_size"] for r in rows]
    assert bunches[-1] <= bunches[0]


@pytest.mark.benchmark(group="compact")
def test_compact_modes(benchmark, routing_workloads):
    g = routing_workloads["geometric_n30"]

    def run():
        rows = []
        for mode, l0 in (("budget", None), ("spd", None), ("truncated", 2), ("auto", None)):
            record = run_compact_experiment(g, k=3, mode=mode, l0=l0,
                                            pair_sample=200, seed=5)
            rows.append(record)
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(render_table(rows, columns=[
        "mode", "l0", "max_route_stretch", "stretch_bound", "delivery_rate",
        "rounds", "round_bound", "max_table_words", "max_label_bits",
    ], title="E5 — compact routing construction variants (Thm 4.8 / 4.13 / Cor 4.14)"))
    for record in rows:
        assert record["delivery_rate"] == 1.0
        assert record["max_route_stretch"] <= record["stretch_bound"] + 1e-6
