"""E6 — Ablation: the paper's long-range design vs the prior work [15].

The paper's improvement over STOC'13 comes from knowing ``(1+eps)``-accurate
skeleton distances (via PDE) before sparsifying once with a ``(2k-1)``-
spanner, instead of approximating skeleton distances *by* a spanner and then
sparsifying again (stretch ``(2k-1)^2``).  This benchmark regenerates the
O(k) vs O(k^2) separation on the long-range distance estimates.
"""

import pytest

from repro.analysis import render_table, run_prior_work_ablation


@pytest.mark.benchmark(group="ablation")
def test_prior_work_ablation_k_sweep(benchmark, routing_workloads):
    g = routing_workloads["er_n32"]

    def run():
        return [run_prior_work_ablation(g, k=k, skeleton_probability=0.5, seed=k,
                                        method="greedy")
                for k in (2, 3, 4)]

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(render_table(rows, columns=[
        "k", "skeleton_size", "new_max_stretch", "new_stretch_bound",
        "prior_max_stretch", "prior_stretch_bound",
        "new_spanner_edges", "prior_spanner_edges",
    ], title="E6 — long-range design ablation: single spanner (new) vs spanner-of-spanner (prior)"))
    for record in rows:
        assert record["new_max_stretch"] <= record["new_stretch_bound"] + 1e-6
        assert record["prior_max_stretch"] <= record["prior_stretch_bound"] + 1e-6
        # With the deterministic greedy spanner the prior design's extra
        # sparsification can only lose distance information, so the new
        # design never has worse worst-case stretch.
        assert record["new_max_stretch"] <= record["prior_max_stretch"] + 1e-9
