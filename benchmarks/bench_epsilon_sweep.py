"""E7 — Theorem 3.3: accuracy / cost trade-off in epsilon.

Sweeps epsilon for full (V, n, n)-estimation: the measured maximum stretch
must stay below ``1 + eps``, the number of rounding levels grows as
``log_{1+eps}(wmax)`` and the round bound as ``1/eps^2``.
"""

import pytest

from repro import graphs
from repro.analysis import render_table, run_epsilon_sweep


@pytest.fixture(scope="module")
def eps_graph():
    return graphs.erdos_renyi_graph(
        22, 0.2, graphs.mixed_scale_weights(1, 10 ** 4, 0.3), seed=37)


@pytest.mark.benchmark(group="epsilon")
def test_epsilon_accuracy_tradeoff(benchmark, eps_graph):
    def run():
        return run_epsilon_sweep(eps_graph, [2.0, 1.0, 0.5, 0.25, 0.1])

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(render_table(rows, columns=[
        "epsilon", "guarantee", "max_stretch", "mean_stretch", "levels",
        "rounds_bound", "within_guarantee",
    ], title="E7 — PDE accuracy vs epsilon (Theorem 3.3)"))
    for record in rows:
        assert record["within_guarantee"]
    stretches = [r["max_stretch"] for r in rows]
    # Smaller epsilon gives (weakly) better worst-case accuracy.
    assert stretches == sorted(stretches, reverse=True) or max(stretches) - min(stretches) < 1.0
    levels = [r["levels"] for r in rows]
    assert levels == sorted(levels)
