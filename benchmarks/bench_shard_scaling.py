"""Shard scaling — aggregate route-query throughput vs worker-process count.

``ShardedRoutingService`` scales serving along two independent axes:

* **CPU parallelism** — N worker processes route on N cores (no GIL);
* **aggregate cache capacity** — each worker owns an LRU of capacity C that
  only ever sees its partition of the key space, so N workers hold N*C
  results.  A stream whose distinct-pair set thrashes one bounded cache fits
  entirely in the sharded caches.

This benchmark pins down the second axis deliberately, because it holds on
*any* host (including single-core CI runners, where pure CPU scaling is
physically impossible): a cache-hostile **uniform** workload (~no repeats
within a pass, so skew contributes nothing) is replayed against a fixed
per-worker cache capacity chosen *below* the stream's distinct-pair count.
One worker evicts every entry before its reuse comes around (classic LRU
cycle thrash, ~0% steady-state hit rate); at four workers the partitioned
key space fits in the aggregate capacity and the steady state is ~100% hits.
The recorded speedup is real end-to-end wall clock through the multiprocess
scatter/gather path — IPC costs included — and on multi-core hosts the cold
(first-pass) numbers additionally scale with cores.  ``cpu_count`` is
recorded so the two effects can be told apart when comparing records.

Since the PR-8 transport refactor the front-end's scatter/gather is
**pipelined** (``submit_batch`` / ``wait_batch`` with per-worker in-flight
windows), and this benchmark records that axis too: the same warm stream
driven strictly sequentially (submit, wait, submit, ...) vs pipelined
(up to ``window`` batches in flight).  Small batches make the sequential
path round-trip-latency-bound — the submitter sleeps through every IPC
hop while the workers idle — which is precisely what the pipeline hides;
the effect needs no spare cores, so it also holds on 1-CPU runners.

Run as a script to produce the JSON artifact consumed by CI (the flat
JSON is derived from a ``repro-experiment``-layout run directory, so
every invocation is also a ``repro-experiment compare`` citizen):

    PYTHONPATH=src python benchmarks/bench_shard_scaling.py \\
        --n 500 --workers 1 2 4 --out BENCH_shard_scaling.json

The pytest entry point runs a 2-worker smoke configuration and asserts the
sharded answers are list-for-list identical to single-process serving.
"""

import argparse
import dataclasses
import os
import tempfile
import time
from collections import deque

import pytest

from repro import graphs
from repro.obs.experiment import record_benchmark_run
from repro.serving import (
    BuildConfig,
    CacheConfig,
    ServingConfig,
    ServingStats,
    ShardedRoutingService,
    open_service,
    uniform_workload,
)


def make_serving_graph(n: int, seed: int = 0):
    """ER graph with average degree ~6 and small weights (few rounding levels)."""
    p = min(1.0, 6.0 / max(1, n - 1))
    return graphs.erdos_renyi_graph(n, p, graphs.uniform_weights(1, 8), seed=seed)


def _timed_pass(service, chunks) -> float:
    start = time.perf_counter()
    for chunk in chunks:
        service.route_batch(chunk)
    return time.perf_counter() - start


def _timed_pipelined_pass(service, chunks, window: int) -> float:
    """Replay the stream keeping up to ``window`` batches in flight."""
    start = time.perf_counter()
    tickets = deque()
    for chunk in chunks:
        while len(tickets) >= window:
            service.wait_batch(tickets.popleft())
        tickets.append(service.submit_batch("route", chunk))
    while tickets:
        service.wait_batch(tickets.popleft())
    return time.perf_counter() - start


def run_pipeline_comparison(n: int, workers: int = 4, seed: int = 0,
                            k: int = 3, epsilon: float = 0.25,
                            num_queries: int = 6000, batch_size: int = 20,
                            window: int = 12, passes: int = 3) -> dict:
    """Pipelined vs sequential scatter/gather on one warm sharded front-end.

    Small batches + a warm cache put the sequential path in the regime
    where per-batch IPC round-trip latency dominates; the pipelined driver
    replays the *same* stream with up to ``window`` tickets in flight.
    Each driver runs ``passes`` times and keeps its best pass (steady
    state, minimal scheduler noise).  Answers are asserted identical
    between the two drivers — pipelining reorders work, never answers.
    """
    graph = make_serving_graph(n, seed=seed)
    workload = uniform_workload(graph.nodes(), num_queries, seed=seed)
    chunks = [workload.pairs[lo:lo + batch_size]
              for lo in range(0, len(workload.pairs), batch_size)]

    with tempfile.TemporaryDirectory(prefix="repro-pipe-bench-") as tmp:
        artifact = os.path.join(tmp, "hierarchy.artifact")
        open_service(ServingConfig(
            artifact_path=artifact,
            build=BuildConfig(k=k, epsilon=epsilon, seed=seed),
            cache=CacheConfig(capacity=0)), graph=graph)
        with ShardedRoutingService(
                artifact, num_workers=workers,
                cache_config=CacheConfig(capacity=2 * num_queries),
                pipeline_depth=2 * window, max_inflight=window,
                graph=graph) as sharded:
            # One unmeasured pass warms every worker cache: both drivers
            # then replay an all-hit stream, so the comparison isolates
            # scatter/gather overhead rather than routing compute.
            _timed_pass(sharded, chunks)
            sequential = [trace for chunk in chunks
                          for trace in sharded.route_batch(chunk)]
            tickets = [sharded.submit_batch("route", chunk)
                       for chunk in chunks[:window]]
            pipelined = []
            for chunk in chunks[window:]:
                pipelined.extend(sharded.wait_batch(tickets.pop(0)))
                tickets.append(sharded.submit_batch("route", chunk))
            for ticket in tickets:
                pipelined.extend(sharded.wait_batch(ticket))
            identical = ([t.path for t in pipelined]
                         == [t.path for t in sequential])
            seq_seconds = min(_timed_pass(sharded, chunks)
                              for _ in range(passes))
            pipe_seconds = min(_timed_pipelined_pass(sharded, chunks, window)
                               for _ in range(passes))
    return {
        "n": n,
        "workers": workers,
        "num_queries": num_queries,
        "batch_size": batch_size,
        "batches": len(chunks),
        "window": window,
        "passes": passes,
        "cpu_count": os.cpu_count(),
        "sequential_qps": round(num_queries / seq_seconds, 1)
                          if seq_seconds > 0 else float("inf"),
        "pipelined_qps": round(num_queries / pipe_seconds, 1)
                         if pipe_seconds > 0 else float("inf"),
        "pipelined_speedup": round(seq_seconds / pipe_seconds, 2)
                             if pipe_seconds > 0 else float("inf"),
        "identical_answers": identical,
    }


def run_shard_scaling(n: int, worker_counts=(1, 2, 4), seed: int = 0,
                      k: int = 3, epsilon: float = 0.25,
                      num_queries: int = 2000, batch_size: int = 500,
                      per_worker_cache: int = 768,
                      check_identity: bool = True) -> dict:
    """Build one artifact, replay the same uniform stream per worker count.

    Each configuration gets one unmeasured warming pass (steady state of a
    long-running service) and one measured pass.  ``per_worker_cache`` stays
    fixed while workers vary — that is the point: capacity below the
    distinct-pair count makes a single worker thrash where the sharded
    aggregate fits.
    """
    graph = make_serving_graph(n, seed=seed)
    workload = uniform_workload(graph.nodes(), num_queries, seed=seed)
    chunks = [workload.pairs[lo:lo + batch_size]
              for lo in range(0, len(workload.pairs), batch_size)]

    with tempfile.TemporaryDirectory(prefix="repro-shard-bench-") as tmp:
        artifact = os.path.join(tmp, "hierarchy.artifact")
        base = ServingConfig(
            artifact_path=artifact,
            build=BuildConfig(k=k, epsilon=epsilon, seed=seed),
            cache=CacheConfig(capacity=per_worker_cache),
            batch_size=batch_size)
        start = time.perf_counter()
        parent = open_service(
            dataclasses.replace(base, cache=CacheConfig(capacity=0)),
            graph=graph)
        build_seconds = time.perf_counter() - start
        reference = None
        if check_identity:
            reference = [trace for chunk in chunks
                         for trace in parent.route_batch(chunk)]

        record = {
            "n": n,
            "m": graph.num_edges,
            "k": k,
            "epsilon": epsilon,
            "num_queries": num_queries,
            "distinct_pairs": workload.distinct_pairs(),
            "batch_size": batch_size,
            "per_worker_cache": per_worker_cache,
            "cpu_count": os.cpu_count(),
            "build_seconds": round(build_seconds, 4),
            "scaling": [],
        }
        for workers in worker_counts:
            # workers == 1 must stay on the sharded path (the IPC overhead
            # belongs in the scaling curve), so the loop opens the sharded
            # front-end directly rather than letting open_service pick the
            # local backend for a single worker.
            with ShardedRoutingService(artifact, num_workers=workers,
                                       cache_config=base.cache,
                                       graph=graph) as sharded:
                cold_seconds = _timed_pass(sharded, chunks)   # warming pass
                warm_mark = ServingStats.merge(sharded.worker_stats())
                steady_seconds = _timed_pass(sharded, chunks)
                steady_mark = ServingStats.merge(sharded.worker_stats())
                # Identity replay runs *after* the stats snapshots so it
                # cannot inflate the steady hit rate of this entry.
                if check_identity and workers == max(worker_counts):
                    answers = [trace for chunk in chunks
                               for trace in sharded.route_batch(chunk)]
                    identical = ([t.path for t in answers]
                                 == [t.path for t in reference])
                else:
                    identical = None
            # Hit rate of the measured pass alone, not the cumulative
            # lifetime rate (which would fold in the all-miss warming pass).
            hits = steady_mark.cache_hits - warm_mark.cache_hits
            misses = steady_mark.cache_misses - warm_mark.cache_misses
            entry = {
                "workers": workers,
                "cold_qps": round(num_queries / cold_seconds, 1)
                            if cold_seconds > 0 else float("inf"),
                "steady_qps": round(num_queries / steady_seconds, 1)
                              if steady_seconds > 0 else float("inf"),
                "steady_cache_hit_rate": round(hits / (hits + misses), 4)
                                         if hits + misses else 0.0,
                "aggregate_cache_capacity": workers * per_worker_cache,
            }
            if identical is not None:
                entry["identical_to_single_process"] = identical
            record["scaling"].append(entry)

        base = record["scaling"][0]["steady_qps"]
        for entry in record["scaling"]:
            entry["steady_speedup"] = round(entry["steady_qps"] / base, 2) \
                if base > 0 else float("inf")
    return record


# ----------------------------------------------------------------------
# pytest entry point (smoke scale)
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="sharding")
def test_shard_scaling_smoke(benchmark):
    # ~390 distinct pairs: one worker thrashes a 256-entry LRU, two workers'
    # partitions (~195 each) fit, so the aggregate-capacity effect shows.
    record = benchmark.pedantic(
        lambda: run_shard_scaling(80, worker_counts=(1, 2), num_queries=400,
                                  batch_size=100, per_worker_cache=256),
        iterations=1, rounds=1)
    print()
    for entry in record["scaling"]:
        print(f"workers={entry['workers']}: "
              f"cold {entry['cold_qps']:>10} q/s  "
              f"steady {entry['steady_qps']:>10} q/s  "
              f"(hit rate {entry['steady_cache_hit_rate']:.0%}, "
              f"speedup {entry['steady_speedup']}x)")
    # The hard invariant: sharding never changes an answer.
    assert record["scaling"][-1]["identical_to_single_process"] is True
    # Aggregate capacity grows with workers, so steady hit rate must too.
    hit_rates = [e["steady_cache_hit_rate"] for e in record["scaling"]]
    assert hit_rates[-1] > hit_rates[0]


@pytest.mark.benchmark(group="sharding")
def test_pipelined_scatter_gather_smoke(benchmark):
    record = benchmark.pedantic(
        lambda: run_pipeline_comparison(80, workers=2, num_queries=800,
                                        batch_size=20, window=8, passes=2),
        iterations=1, rounds=1)
    print()
    print(f"sequential {record['sequential_qps']:>10} q/s  "
          f"pipelined {record['pipelined_qps']:>10} q/s  "
          f"({record['pipelined_speedup']}x, window {record['window']})")
    # Pipelining reorders work, never answers.
    assert record["identical_answers"] is True
    # No throughput floor at smoke scale (CI runners are noisy); the full
    # run gates on --min-pipeline-speedup instead.
    assert record["pipelined_qps"] > 0


# ----------------------------------------------------------------------
# CLI entry point (full scale, JSON artifact)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=500)
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--k", type=int, default=3)
    parser.add_argument("--queries", type=int, default=2000)
    parser.add_argument("--batch-size", type=int, default=500)
    parser.add_argument("--cache", type=int, default=768,
                        help="per-worker LRU capacity (kept fixed across "
                             "worker counts)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit non-zero unless the largest worker count "
                             "reaches this steady-state speedup over 1 worker")
    parser.add_argument("--pipeline-workers", type=int, default=4,
                        help="worker count for the pipelined-vs-sequential "
                             "comparison (0 skips it)")
    parser.add_argument("--pipeline-queries", type=int, default=6000)
    parser.add_argument("--pipeline-batch-size", type=int, default=20,
                        help="small on purpose: the sequential driver must "
                             "be round-trip-latency-bound for the pipeline "
                             "to have anything to hide")
    parser.add_argument("--pipeline-window", type=int, default=12)
    parser.add_argument("--min-pipeline-speedup", type=float, default=None,
                        help="exit non-zero unless pipelined scatter/gather "
                             "beats sequential by this factor")
    parser.add_argument("--out", default="BENCH_shard_scaling.json")
    parser.add_argument("--run-dir", default=None,
                        help="run directory to write (repro-experiment "
                             "layout; default runs/bench_shard_scaling/"
                             "<utc-timestamp>-<pid>)")
    args = parser.parse_args(argv)

    record = run_shard_scaling(args.n, worker_counts=tuple(args.workers),
                               seed=args.seed, k=args.k,
                               num_queries=args.queries,
                               batch_size=args.batch_size,
                               per_worker_cache=args.cache)
    print(f"n={args.n} build={record['build_seconds']}s "
          f"distinct={record['distinct_pairs']} "
          f"per-worker-cache={record['per_worker_cache']} "
          f"cpus={record['cpu_count']}")
    for entry in record["scaling"]:
        print(f"  workers={entry['workers']}: "
              f"cold {entry['cold_qps']:>10} q/s  "
              f"steady {entry['steady_qps']:>10} q/s  "
              f"(hit rate {entry['steady_cache_hit_rate']:.0%}, "
              f"speedup {entry['steady_speedup']}x)")

    pipeline_record = None
    if args.pipeline_workers > 0:
        pipeline_record = run_pipeline_comparison(
            args.n, workers=args.pipeline_workers, seed=args.seed, k=args.k,
            num_queries=args.pipeline_queries,
            batch_size=args.pipeline_batch_size,
            window=args.pipeline_window)
        print(f"pipeline ({pipeline_record['workers']} workers, "
              f"batch {pipeline_record['batch_size']}, "
              f"window {pipeline_record['window']}): "
              f"sequential {pipeline_record['sequential_qps']:>10} q/s  "
              f"pipelined {pipeline_record['pipelined_qps']:>10} q/s  "
              f"speedup {pipeline_record['pipelined_speedup']}x  "
              f"identical={pipeline_record['identical_answers']}")

    payload = {
        "benchmark": "shard_scaling",
        "description": "ShardedRoutingService aggregate route-query "
                       "throughput vs worker-process count on a "
                       "cache-hostile uniform workload with fixed "
                       "per-worker LRU capacity; the steady-state speedup "
                       "comes from aggregate cache capacity (N workers hold "
                       "N*C results), plus CPU parallelism on multi-core "
                       "hosts (see cpu_count)",
        "workload": "ER avg-degree-6, weights 1..8, k=3 hierarchy; uniform "
                    "query stream replayed after one warming pass",
        "records": [record],
    }
    if pipeline_record is not None:
        payload["pipeline"] = {
            "description": "pipelined vs sequential scatter/gather on one "
                           "warm sharded front-end: the same small-batch "
                           "stream driven submit/wait strictly in turn vs "
                           "with a bounded in-flight window; the speedup "
                           "is hidden IPC round-trip latency, so it holds "
                           "on single-core hosts (answers asserted "
                           "identical between drivers)",
            "records": [pipeline_record],
        }
    record_benchmark_run(
        "bench_shard_scaling", payload,
        {"n": args.n, "workers": args.workers, "seed": args.seed,
         "k": args.k, "queries": args.queries,
         "batch_size": args.batch_size, "cache": args.cache,
         "pipeline_workers": args.pipeline_workers,
         "pipeline_queries": args.pipeline_queries,
         "pipeline_batch_size": args.pipeline_batch_size,
         "pipeline_window": args.pipeline_window},
        out_path=args.out, run_dir=args.run_dir)

    failed = False
    if args.min_speedup is not None:
        achieved = record["scaling"][-1]["steady_speedup"]
        if achieved < args.min_speedup:
            print(f"FAIL: steady speedup {achieved}x < "
                  f"required {args.min_speedup}x")
            failed = True
    if args.min_pipeline_speedup is not None and pipeline_record is not None:
        achieved = pipeline_record["pipelined_speedup"]
        if not pipeline_record["identical_answers"]:
            print("FAIL: pipelined answers differ from sequential")
            failed = True
        if achieved < args.min_pipeline_speedup:
            print(f"FAIL: pipelined speedup {achieved}x < "
                  f"required {args.min_pipeline_speedup}x")
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
