"""Round, message and congestion accounting for CONGEST executions.

The quantities the paper bounds — number of rounds, number of broadcasts per
node (Lemma 3.4), and congestion across cuts (Figure 1) — are all collected
here.  The metrics object is produced by the simulator for faithful runs and
synthesised from the paper's formulas by the logical engines (clearly marked
via :attr:`CongestMetrics.measured`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Tuple

__all__ = ["CongestMetrics", "merge_metrics"]


def _edge_key(u: Hashable, v: Hashable) -> Tuple[Hashable, Hashable]:
    return (u, v) if repr(u) <= repr(v) else (v, u)


@dataclass
class CongestMetrics:
    """Accounting for a single distributed execution.

    Attributes
    ----------
    rounds:
        Number of synchronous rounds executed (or bounded).
    total_messages:
        Total number of point-to-point messages delivered.
    broadcasts_per_node:
        Number of rounds in which each node broadcast a message.
    messages_per_edge:
        Number of messages that traversed each undirected edge (both
        directions combined).
    measured:
        ``True`` if the numbers come from an actual round-by-round
        simulation; ``False`` if they are analytic bounds reported by a
        logical engine.
    """

    rounds: int = 0
    total_messages: int = 0
    broadcasts_per_node: Dict[Hashable, int] = field(default_factory=dict)
    messages_per_edge: Dict[Tuple[Hashable, Hashable], int] = field(default_factory=dict)
    measured: bool = True

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_broadcast(self, node: Hashable, count: int = 1) -> None:
        self.broadcasts_per_node[node] = self.broadcasts_per_node.get(node, 0) + count

    def record_edge_message(self, u: Hashable, v: Hashable, count: int = 1) -> None:
        key = _edge_key(u, v)
        self.messages_per_edge[key] = self.messages_per_edge.get(key, 0) + count
        self.total_messages += count

    # ------------------------------------------------------------------
    # summaries
    # ------------------------------------------------------------------
    def max_broadcasts(self) -> int:
        """Maximum number of broadcasts any single node performed."""
        return max(self.broadcasts_per_node.values(), default=0)

    def edge_traffic(self, u: Hashable, v: Hashable) -> int:
        """Messages that traversed edge ``{u, v}`` (0 if never used)."""
        return self.messages_per_edge.get(_edge_key(u, v), 0)

    def max_edge_traffic(self) -> int:
        return max(self.messages_per_edge.values(), default=0)

    # ------------------------------------------------------------------
    # state export (serving artifacts)
    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, object]:
        """Plain-builtin snapshot of the accounting for persistence."""
        return {
            "rounds": self.rounds,
            "total_messages": self.total_messages,
            "broadcasts_per_node": dict(self.broadcasts_per_node),
            "messages_per_edge": dict(self.messages_per_edge),
            "measured": self.measured,
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "CongestMetrics":
        return cls(
            rounds=state["rounds"],
            total_messages=state["total_messages"],
            broadcasts_per_node=dict(state["broadcasts_per_node"]),
            messages_per_edge={tuple(k): v
                               for k, v in state["messages_per_edge"].items()},
            measured=state["measured"],
        )

    def summary(self) -> Dict[str, float]:
        return {
            "rounds": self.rounds,
            "total_messages": self.total_messages,
            "max_broadcasts_per_node": self.max_broadcasts(),
            "max_edge_traffic": self.max_edge_traffic(),
            "measured": self.measured,
        }


def merge_metrics(*metrics: CongestMetrics, sequential: bool = True) -> CongestMetrics:
    """Combine metrics from sub-phases of an algorithm.

    With ``sequential=True`` (the default) the rounds add up; with
    ``sequential=False`` the phases run in parallel and the round count is
    the maximum.  Message counts always add up.  The result is marked
    measured only if every constituent is.
    """
    merged = CongestMetrics(rounds=0, measured=all(m.measured for m in metrics))
    for m in metrics:
        if sequential:
            merged.rounds += m.rounds
        else:
            merged.rounds = max(merged.rounds, m.rounds)
        merged.total_messages += m.total_messages
        for node, count in m.broadcasts_per_node.items():
            merged.broadcasts_per_node[node] = merged.broadcasts_per_node.get(node, 0) + count
        for edge, count in m.messages_per_edge.items():
            merged.messages_per_edge[edge] = merged.messages_per_edge.get(edge, 0) + count
    return merged
