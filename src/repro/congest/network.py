"""Synchronous CONGEST network simulator.

The simulator drives a :class:`~repro.congest.node.CongestAlgorithm` over a
:class:`~repro.graphs.weighted_graph.WeightedGraph`, enforcing the CONGEST
bandwidth constraint: per round, each (directed) edge carries at most one
message of at most ``max_message_words`` words, where a word stands for an
``O(log n)``-bit quantity.

The simulator produces a :class:`~repro.congest.metrics.CongestMetrics`
object recording rounds, per-node broadcast counts (the quantity bounded in
Lemma 3.4) and per-edge traffic (the quantity that makes Figure 1 a lower
bound).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Tuple

from ..graphs.weighted_graph import WeightedGraph
from .message import BROADCAST, Message
from .metrics import CongestMetrics
from .node import CongestAlgorithm, NodeView, normalize_outgoing

__all__ = ["CongestNetwork", "BandwidthViolation"]


class BandwidthViolation(RuntimeError):
    """Raised when an algorithm exceeds the per-edge, per-round bandwidth."""


class CongestNetwork:
    """Round-driven execution of a CONGEST algorithm on a weighted graph."""

    def __init__(self, graph: WeightedGraph, algorithm: CongestAlgorithm,
                 max_message_words: int = 4,
                 enforce_bandwidth: bool = True) -> None:
        if graph.num_nodes == 0:
            raise ValueError("cannot simulate an empty graph")
        self.graph = graph
        self.algorithm = algorithm
        self.max_message_words = max_message_words
        self.enforce_bandwidth = enforce_bandwidth
        self.metrics = CongestMetrics(measured=True)
        self._views: Dict[Hashable, NodeView] = {}
        self._states: Dict[Hashable, Any] = {}
        self._finished: Dict[Hashable, bool] = {}
        self._initialize()

    # ------------------------------------------------------------------
    def _initialize(self) -> None:
        n = self.graph.num_nodes
        for node in self.graph.nodes():
            view = NodeView(node, self.graph.neighbor_weights(node), n)
            self._views[node] = view
            self._states[node] = self.algorithm.init_state(view)
            self._finished[node] = False

    # ------------------------------------------------------------------
    def run(self, max_rounds: int) -> CongestMetrics:
        """Execute up to ``max_rounds`` rounds (stopping early if all nodes finish)."""
        for round_index in range(1, max_rounds + 1):
            if all(self._finished.values()):
                break
            self._run_round(round_index)
            self.metrics.rounds = round_index
            # Re-evaluate termination for every node each round: a node that
            # declared itself done may be reactivated by a late-arriving
            # message (e.g. a distance-vector update), so "finished" is a
            # per-round predicate rather than a sticky flag.
            for node, view in self._views.items():
                self._finished[node] = self.algorithm.finished(
                    view, self._states[node], round_index)
        return self.metrics

    def _run_round(self, round_index: int) -> None:
        # Step 1+2: local computation and sending.
        inboxes: Dict[Hashable, List[Tuple[Hashable, Message]]] = {
            node: [] for node in self._views
        }
        for node, view in self._views.items():
            if self._finished[node]:
                continue
            outgoing = normalize_outgoing(
                self.algorithm.generate(view, self._states[node], round_index))
            per_edge_words: Dict[Hashable, int] = {}
            broadcasted = False
            for dest, msg in outgoing:
                if self.enforce_bandwidth and msg.words > self.max_message_words:
                    raise BandwidthViolation(
                        f"node {node!r} sent a {msg.words}-word message "
                        f"(limit {self.max_message_words}) in round {round_index}")
                if dest is BROADCAST:
                    targets = list(view.neighbors())
                    broadcasted = True
                else:
                    if dest not in view.neighbor_weights:
                        raise ValueError(
                            f"node {node!r} tried to send to non-neighbour {dest!r}")
                    targets = [dest]
                for target in targets:
                    used = per_edge_words.get(target, 0) + msg.words
                    if self.enforce_bandwidth and used > self.max_message_words:
                        raise BandwidthViolation(
                            f"edge ({node!r}, {target!r}) over budget in round "
                            f"{round_index}: {used} words")
                    per_edge_words[target] = used
                    inboxes[target].append((node, msg))
                    self.metrics.record_edge_message(node, target)
            if broadcasted:
                self.metrics.record_broadcast(node)

        # Step 3: receiving (deterministic order for reproducibility).
        for node, view in self._views.items():
            inbox = sorted(inboxes[node], key=lambda item: repr(item[0]))
            self.algorithm.receive(view, self._states[node], round_index, inbox)

    # ------------------------------------------------------------------
    def outputs(self) -> Dict[Hashable, Any]:
        """Collect the output register of every node."""
        return {
            node: self.algorithm.output(view, self._states[node])
            for node, view in self._views.items()
        }

    def state_of(self, node: Hashable) -> Any:
        """Access the raw state of a node (for tests and debugging)."""
        return self._states[node]
