"""BFS trees, pipelined broadcast and global aggregation primitives.

Several of the paper's constructions rely on a breadth-first-search spanning
tree of the network:

* determining global values such as ``wmax`` (hence ``imax``) in ``O(D)``
  rounds (Section 3),
* broadcasting all messages of a simulated skeleton-graph algorithm via a
  BFS tree, pipelined, in ``O(M + D)`` rounds for ``M`` messages
  (Lemma 4.12),
* announcing globally-known structures such as the skeleton spanner
  (Theorem 4.5).

This module provides a logical BFS-tree construction plus the standard
round-complexity accounting for pipelined broadcast/convergecast over such a
tree, and a faithful distributed BFS algorithm for the simulator (used in
tests to validate the round bound ``D``).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Tuple

from ..graphs.weighted_graph import WeightedGraph
from ..graphs.distances import bfs_hop_distances
from .message import BROADCAST, Message
from .metrics import CongestMetrics
from .node import CongestAlgorithm, NodeView

__all__ = [
    "BFSTree",
    "build_bfs_tree",
    "pipelined_broadcast_rounds",
    "convergecast_rounds",
    "global_broadcast_metrics",
    "DistributedBFS",
]


class BFSTree:
    """A rooted BFS tree: parents, depths and children lists."""

    def __init__(self, root: Hashable, parent: Dict[Hashable, Optional[Hashable]],
                 depth: Dict[Hashable, int]) -> None:
        self.root = root
        self.parent = parent
        self.depth = depth
        self.children: Dict[Hashable, List[Hashable]] = {v: [] for v in parent}
        for v, p in parent.items():
            if p is not None:
                self.children[p].append(v)

    @property
    def height(self) -> int:
        """The depth of the deepest node (equals the eccentricity of the root)."""
        return max(self.depth.values(), default=0)

    def nodes(self) -> List[Hashable]:
        return list(self.parent.keys())

    def path_to_root(self, node: Hashable) -> List[Hashable]:
        path = [node]
        while self.parent[path[-1]] is not None:
            path.append(self.parent[path[-1]])
        return path


def build_bfs_tree(graph: WeightedGraph, root: Hashable) -> BFSTree:
    """Construct a BFS tree rooted at ``root`` (ties broken by node order)."""
    parent: Dict[Hashable, Optional[Hashable]] = {root: None}
    depth: Dict[Hashable, int] = {root: 0}
    frontier = [root]
    level = 0
    while frontier:
        level += 1
        next_frontier = []
        for u in frontier:
            for v in sorted(graph.neighbors(u), key=repr):
                if v not in parent:
                    parent[v] = u
                    depth[v] = level
                    next_frontier.append(v)
        frontier = next_frontier
    return BFSTree(root, parent, depth)


def pipelined_broadcast_rounds(num_messages: int, tree_height: int) -> int:
    """Rounds needed to broadcast ``num_messages`` distinct messages over a tree.

    Standard pipelining over a BFS tree of height ``h`` delivers ``M``
    messages to every node in ``M + h`` rounds (each round the root injects
    one message; messages flow down level by level without collisions since
    every tree edge forwards one message per round).
    """
    if num_messages < 0 or tree_height < 0:
        raise ValueError("arguments must be non-negative")
    if num_messages == 0:
        return 0
    return num_messages + tree_height


def convergecast_rounds(num_messages: int, tree_height: int) -> int:
    """Rounds to collect ``num_messages`` distinct messages at the root (pipelined)."""
    return pipelined_broadcast_rounds(num_messages, tree_height)


def global_broadcast_metrics(graph: WeightedGraph, num_messages: int,
                             root: Optional[Hashable] = None) -> CongestMetrics:
    """Analytic metrics for broadcasting ``num_messages`` messages network-wide.

    Used by logical engines to account for phases of the form "make X known
    to all nodes via a BFS tree" (e.g. the skeleton spanner in Theorem 4.5 or
    the simulated skeleton rounds in Lemma 4.12).
    """
    root = root if root is not None else graph.nodes()[0]
    tree = build_bfs_tree(graph, root)
    rounds = pipelined_broadcast_rounds(num_messages, tree.height)
    metrics = CongestMetrics(rounds=rounds, measured=False)
    metrics.total_messages = num_messages * max(0, graph.num_nodes - 1)
    return metrics


class DistributedBFS(CongestAlgorithm):
    """A faithful distributed BFS from a designated root.

    Each node outputs ``(parent, depth)``.  Terminates within ``D + 1``
    rounds; used in tests to validate that the simulator respects the hop
    diameter and as the building block for leader-triggered phases.
    """

    def __init__(self, root: Hashable) -> None:
        self.root = root

    def init_state(self, view: NodeView) -> Dict[str, Any]:
        is_root = view.node_id == self.root
        return {
            "parent": view.node_id if is_root else None,
            "depth": 0 if is_root else None,
            "announced": False,
        }

    def generate(self, view: NodeView, state: Dict[str, Any], round_index: int):
        if state["depth"] is not None and not state["announced"]:
            state["announced"] = True
            return [(BROADCAST, Message(("bfs", state["depth"])))]
        return []

    def receive(self, view: NodeView, state: Dict[str, Any], round_index: int, inbox):
        if state["depth"] is not None:
            return
        for sender, msg in inbox:
            tag, depth = msg.payload
            if tag == "bfs":
                state["depth"] = depth + 1
                state["parent"] = sender
                return

    def finished(self, view: NodeView, state: Dict[str, Any], round_index: int) -> bool:
        return state["announced"]

    def output(self, view: NodeView, state: Dict[str, Any]):
        return {"parent": state["parent"], "depth": state["depth"]}


def verify_bfs_outputs(graph: WeightedGraph, root: Hashable,
                       outputs: Dict[Hashable, Dict[str, Any]]) -> bool:
    """Check that distributed BFS outputs match the true hop distances."""
    truth = bfs_hop_distances(graph, root)
    for node, out in outputs.items():
        if truth.get(node) != out["depth"]:
            return False
    return True
