"""Node-algorithm interface for the CONGEST simulator.

A distributed algorithm is written once, from the perspective of a single
node, by subclassing :class:`CongestAlgorithm`.  The simulator
(:class:`~repro.congest.network.CongestNetwork`) instantiates one state
object per node and drives the three steps of a CONGEST round (Section 2.1
of the paper): local computation, sending, receiving.

The interface is deliberately minimal:

* :meth:`CongestAlgorithm.init_state` builds the node's local state from its
  local knowledge only (its identifier and incident edge weights) — matching
  the paper's initial-knowledge assumption.
* :meth:`CongestAlgorithm.generate` returns the messages the node sends this
  round (at most one per incident edge; a broadcast counts as one message on
  every incident edge but as a single "broadcast" for Lemma 3.4 accounting).
* :meth:`CongestAlgorithm.receive` consumes the messages delivered at the end
  of the round.
* :meth:`CongestAlgorithm.finished` lets the simulator terminate early once
  all nodes report completion.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Hashable, Iterable, List, Tuple, Union

from .message import BROADCAST, Message

__all__ = ["CongestAlgorithm", "Outgoing", "NodeView"]

#: A message addressed either to one neighbour or broadcast to all of them.
Outgoing = Tuple[Union[Hashable, object], Message]


class NodeView:
    """The local knowledge a node starts with: its id and incident edges."""

    __slots__ = ("node_id", "neighbor_weights", "num_nodes")

    def __init__(self, node_id: Hashable, neighbor_weights: Dict[Hashable, int],
                 num_nodes: int) -> None:
        self.node_id = node_id
        self.neighbor_weights = dict(neighbor_weights)
        self.num_nodes = num_nodes

    @property
    def degree(self) -> int:
        return len(self.neighbor_weights)

    def neighbors(self) -> Iterable[Hashable]:
        return self.neighbor_weights.keys()


class CongestAlgorithm(ABC):
    """Per-node behaviour of a synchronous CONGEST algorithm."""

    @abstractmethod
    def init_state(self, view: NodeView) -> Any:
        """Create and return the initial local state for a node."""

    @abstractmethod
    def generate(self, view: NodeView, state: Any, round_index: int) -> List[Outgoing]:
        """Return the messages this node sends in ``round_index``.

        Each entry is ``(destination, message)``; use
        :data:`~repro.congest.message.BROADCAST` as destination to send the
        same message over every incident edge.
        """

    @abstractmethod
    def receive(self, view: NodeView, state: Any, round_index: int,
                inbox: List[Tuple[Hashable, Message]]) -> None:
        """Consume messages delivered at the end of ``round_index``.

        ``inbox`` holds ``(sender, message)`` pairs; order is arbitrary but
        deterministic (sorted by sender representation).
        """

    def finished(self, view: NodeView, state: Any, round_index: int) -> bool:
        """Whether this node has terminated (default: never, run to max_rounds)."""
        return False

    def output(self, view: NodeView, state: Any) -> Any:
        """The value placed in the node's output register at the end."""
        return state


def normalize_outgoing(outgoing: List[Outgoing]) -> List[Outgoing]:
    """Validate a ``generate`` result, wrapping bare payloads in Message objects."""
    normalized: List[Outgoing] = []
    for item in outgoing:
        if not isinstance(item, tuple) or len(item) != 2:
            raise TypeError(f"generate() must return (dest, Message) pairs, got {item!r}")
        dest, msg = item
        if not isinstance(msg, Message):
            msg = Message(payload=msg)
        normalized.append((dest, msg))
    return normalized
