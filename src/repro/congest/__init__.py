"""CONGEST-model simulator: round engine, messages, metrics, BFS primitives."""

from .message import Message, BROADCAST, message_words
from .metrics import CongestMetrics, merge_metrics
from .node import CongestAlgorithm, NodeView
from .network import CongestNetwork, BandwidthViolation
from .bfs import (
    BFSTree,
    build_bfs_tree,
    pipelined_broadcast_rounds,
    convergecast_rounds,
    global_broadcast_metrics,
    DistributedBFS,
    verify_bfs_outputs,
)

__all__ = [
    "Message",
    "BROADCAST",
    "message_words",
    "CongestMetrics",
    "merge_metrics",
    "CongestAlgorithm",
    "NodeView",
    "CongestNetwork",
    "BandwidthViolation",
    "BFSTree",
    "build_bfs_tree",
    "pipelined_broadcast_rounds",
    "convergecast_rounds",
    "global_broadcast_metrics",
    "DistributedBFS",
    "verify_bfs_outputs",
]
