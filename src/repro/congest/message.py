"""Messages exchanged in the CONGEST model.

In the CONGEST model every edge carries one message of ``B ∈ Θ(log n)`` bits
per round.  We represent a message as an immutable payload (a tuple of small
integers / identifiers) together with a size estimate in "words", where one
word is an ``O(log n)``-bit quantity (a node identifier, a distance bounded
by a polynomial in ``n``, a level index, or a flag).

The simulator enforces the bandwidth constraint in units of words: a message
of more than ``words_per_round`` words cannot be sent in a single round.
Most algorithms in the paper send messages consisting of a constant number of
words (e.g. a ``(distance, source)`` pair), so the default budget of a small
constant is faithful to the model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

__all__ = ["Message", "BROADCAST", "message_words"]

#: Sentinel destination meaning "send the same message to every neighbour".
BROADCAST = object()


def message_words(payload: Any) -> int:
    """Estimate the size of a payload in ``O(log n)``-bit words.

    Scalars (ints, floats, short strings, ``None``, booleans) count as one
    word; tuples and lists count as the sum of their elements.  This is the
    accounting unit used by :class:`~repro.congest.network.CongestNetwork`.
    """
    if payload is None or isinstance(payload, (int, float, bool, str)):
        return 1
    if isinstance(payload, (tuple, list)):
        return sum(message_words(item) for item in payload)
    if isinstance(payload, dict):
        return sum(message_words(k) + message_words(v) for k, v in payload.items())
    return 1


@dataclass(frozen=True)
class Message:
    """A single CONGEST message.

    Attributes
    ----------
    payload:
        The content (typically a tuple such as ``(distance, source_id)``).
    words:
        Size in ``O(log n)``-bit words; computed from the payload if omitted.
    """

    payload: Any
    words: int = 0

    def __post_init__(self) -> None:
        if self.words <= 0:
            object.__setattr__(self, "words", message_words(self.payload))

    def __iter__(self):
        # Allow unpacking tuple payloads directly: ``d, s = msg``.
        return iter(self.payload)
