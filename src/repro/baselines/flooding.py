"""Topology collection + local Dijkstra (OSPF-style link-state baseline).

The second trivial solution the introduction discusses: flood the complete
topology to every node (``Theta(m)`` rounds and ``Theta(m)`` storage in the
CONGEST model, via pipelining over a BFS tree), then run a centralized
shortest-path algorithm locally.  Exact, simple, but expensive in both time
and space — the baseline the sub-linear algorithms of the paper are measured
against in experiment E2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional

from ..congest.bfs import build_bfs_tree, pipelined_broadcast_rounds
from ..congest.metrics import CongestMetrics
from ..graphs.distances import all_pairs_weighted_distances, dijkstra
from ..graphs.weighted_graph import WeightedGraph

__all__ = ["LinkStateResult", "link_state_apsp"]


@dataclass
class LinkStateResult:
    """Exact distances plus the cost accounting of the link-state baseline."""

    distances: Dict[Hashable, Dict[Hashable, float]]
    next_hops: Dict[Hashable, Dict[Hashable, Optional[Hashable]]]
    metrics: CongestMetrics = field(default_factory=CongestMetrics)
    storage_words_per_node: int = 0

    def estimate(self, u: Hashable, v: Hashable) -> float:
        if u == v:
            return 0.0
        return self.distances.get(u, {}).get(v, float("inf"))


def link_state_apsp(graph: WeightedGraph, root: Optional[Hashable] = None
                    ) -> LinkStateResult:
    """Collect the topology at every node and solve locally.

    Round accounting: every edge description (3 words) is broadcast to all
    nodes by pipelining over a BFS tree, i.e. ``m + D`` rounds; storage is
    ``Theta(m)`` words per node.
    """
    root = root if root is not None else graph.nodes()[0]
    tree = build_bfs_tree(graph, root)
    rounds = pipelined_broadcast_rounds(graph.num_edges, tree.height)
    metrics = CongestMetrics(rounds=rounds, measured=False)
    metrics.total_messages = graph.num_edges * max(0, graph.num_nodes - 1)

    distances = all_pairs_weighted_distances(graph)
    next_hops: Dict[Hashable, Dict[Hashable, Optional[Hashable]]] = {}
    for v in graph.nodes():
        _, parent = dijkstra(graph, v)
        # parent[w] is the predecessor of w on the path from v; the next hop
        # from v toward w is found by walking back from w, but for the
        # baseline we only need the first hop, recovered per destination.
        hops: Dict[Hashable, Optional[Hashable]] = {}
        for w in graph.nodes():
            if w == v or w not in parent:
                continue
            node = w
            while parent[node] is not None and parent[node] != v:
                node = parent[node]
            hops[w] = node if parent[node] == v else None
        next_hops[v] = hops
    return LinkStateResult(distances=distances, next_hops=next_hops, metrics=metrics,
                           storage_words_per_node=3 * graph.num_edges)
