"""Distributed Bellman–Ford APSP (distance-vector routing, RIP-style).

The paper's introduction recalls that a Bellman–Ford all-pairs computation in
the CONGEST model takes ``Theta(n^2)`` rounds in the worst case and
``Theta(n log n)`` bits of storage per node.  This module provides the
baseline for experiment E2:

* :class:`DistanceVectorProtocol` — a faithful CONGEST protocol in which
  every node maintains a distance vector to all destinations and, per round,
  broadcasts one improved ``(destination, distance)`` entry (the CONGEST
  bandwidth allows only a constant number of words per edge per round).
  Running it to quiescence measures the real round count.
* :func:`bellman_ford_apsp` — exact output (ground-truth distances) together
  with either measured rounds (``simulate=True``) or the analytic worst-case
  bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from ..congest.message import BROADCAST, Message
from ..congest.metrics import CongestMetrics
from ..congest.network import CongestNetwork
from ..congest.node import CongestAlgorithm, NodeView
from ..graphs.distances import all_pairs_weighted_distances
from ..graphs.weighted_graph import WeightedGraph

__all__ = ["DistanceVectorProtocol", "bellman_ford_apsp", "BellmanFordResult"]


@dataclass
class BellmanFordResult:
    """Exact APSP distances plus the cost accounting of the baseline."""

    distances: Dict[Hashable, Dict[Hashable, float]]
    next_hops: Dict[Hashable, Dict[Hashable, Optional[Hashable]]]
    metrics: CongestMetrics = field(default_factory=CongestMetrics)

    def estimate(self, u: Hashable, v: Hashable) -> float:
        if u == v:
            return 0.0
        return self.distances.get(u, {}).get(v, float("inf"))


class DistanceVectorProtocol(CongestAlgorithm):
    """RIP-style distance-vector protocol, one announcement per round."""

    def init_state(self, view: NodeView):
        return {
            "dist": {view.node_id: 0.0},
            "via": {view.node_id: None},
            "pending": {view.node_id},   # destinations whose entry changed
            "announced": set(),          # (dest, dist) pairs already broadcast
        }

    def generate(self, view: NodeView, state, round_index: int):
        candidates = sorted(
            ((state["dist"][dest], repr(dest), dest) for dest in state["pending"]),
        )
        for dist, _, dest in candidates:
            if (dest, dist) in state["announced"]:
                state["pending"].discard(dest)
                continue
            state["announced"].add((dest, dist))
            state["pending"].discard(dest)
            return [(BROADCAST, Message(("dv", dest, dist)))]
        return []

    def receive(self, view: NodeView, state, round_index: int, inbox):
        for sender, msg in inbox:
            tag, dest, dist = msg.payload
            if tag != "dv":
                continue
            nd = dist + view.neighbor_weights[sender]
            if nd < state["dist"].get(dest, float("inf")):
                state["dist"][dest] = nd
                state["via"][dest] = sender
                state["pending"].add(dest)

    def finished(self, view: NodeView, state, round_index: int) -> bool:
        return not state["pending"]

    def output(self, view: NodeView, state):
        return {"dist": dict(state["dist"]), "via": dict(state["via"])}


def bellman_ford_apsp(graph: WeightedGraph, simulate: bool = True,
                      max_rounds: Optional[int] = None) -> BellmanFordResult:
    """Exact APSP by distributed distance-vector computation.

    With ``simulate=True`` the protocol is executed round by round and the
    measured round count is reported; otherwise the exact distances are
    computed centrally and the worst-case CONGEST bound ``n^2`` is attached.
    """
    n = graph.num_nodes
    if simulate:
        protocol = DistanceVectorProtocol()
        network = CongestNetwork(graph, protocol)
        budget = max_rounds if max_rounds is not None else 4 * n * n + 10
        metrics = network.run(max_rounds=budget)
        outputs = network.outputs()
        distances = {v: outputs[v]["dist"] for v in graph.nodes()}
        next_hops = {v: outputs[v]["via"] for v in graph.nodes()}
        return BellmanFordResult(distances=distances, next_hops=next_hops,
                                 metrics=metrics)
    distances = all_pairs_weighted_distances(graph)
    next_hops = {v: {} for v in graph.nodes()}
    metrics = CongestMetrics(rounds=n * n, measured=False)
    return BellmanFordResult(distances=distances, next_hops=next_hops, metrics=metrics)
