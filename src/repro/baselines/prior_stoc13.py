"""Prior-work long-range scheme (Patt-Shamir & Lenzen, STOC'13 [15]).

Theorem 4.5's improvement over the prior work is twofold:

* the *short range* is handled by a single PDE instance (stretch
  ``1 + o(1)``) instead of a ``Theta(log k)``-level hierarchy, and
* the *long range* knows ``(1+eps)``-accurate skeleton distances (second PDE
  instance) before sparsifying them with one ``(2k-1)``-spanner — the prior
  work instead approximates skeleton distances *by* a spanner, so a further
  spanner-based sparsification compounds the error (the "quadratic stretch"
  the paper mentions for compact tables, and the extra ``O(log k)`` factor
  for non-compact ones).

For the ablation experiment E6 we reproduce exactly this difference on the
long-range path: given the same skeleton, compare

* ``new``: skeleton distances from PDE, one ``(2k-1)``-spanner on top
  (stretch ``<= (2k-1)(1+eps)``), versus
* ``prior``: skeleton distances known only through a ``(2k-1)``-spanner,
  then sparsified again by a ``(2k-1)``-spanner of the spanner
  (stretch ``<= (2k-1)^2``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Set

from ..graphs.distances import all_pairs_weighted_distances, dijkstra
from ..graphs.weighted_graph import WeightedGraph
from ..routing.spanner import baswana_sen_spanner, greedy_spanner

__all__ = ["LongRangeComparison", "compare_long_range_schemes"]


@dataclass
class LongRangeComparison:
    """Stretch of skeleton-to-skeleton distance estimates under both designs."""

    k: int
    skeleton_size: int
    new_max_stretch: float
    new_mean_stretch: float
    prior_max_stretch: float
    prior_mean_stretch: float
    new_spanner_edges: int
    prior_spanner_edges: int

    def as_dict(self) -> Dict[str, float]:
        return dict(self.__dict__)


def _pairwise_stretch(base: WeightedGraph, approx: WeightedGraph) -> Dict[str, float]:
    stretches = []
    for u in base.nodes():
        exact, _ = dijkstra(base, u)
        est, _ = dijkstra(approx, u)
        for v, d in exact.items():
            if v == u or d <= 0:
                continue
            stretches.append(est.get(v, float("inf")) / d)
    if not stretches:
        return {"max": 1.0, "mean": 1.0}
    return {"max": max(stretches), "mean": sum(stretches) / len(stretches)}


def compare_long_range_schemes(skeleton_graph: WeightedGraph, k: int,
                               seed: int = 0, method: str = "baswana_sen"
                               ) -> LongRangeComparison:
    """Compare the paper's long-range design against the prior-work design.

    ``skeleton_graph`` plays the role of the skeleton graph with
    ``(1+eps)``-accurate weights (as produced by the second PDE instance of
    Theorem 4.5).  The *new* design sparsifies it once; the *prior* design
    first replaces it by a spanner (that is all a node knows about skeleton
    distances) and then sparsifies that spanner again for broadcasting.
    """
    rng = random.Random(seed)
    if method == "greedy":
        first = greedy_spanner(skeleton_graph, k)
        second = greedy_spanner(first, k)
        new = greedy_spanner(skeleton_graph, k)
    else:
        first = baswana_sen_spanner(skeleton_graph, k, rng)
        second = baswana_sen_spanner(first, k, random.Random(seed + 1))
        new = baswana_sen_spanner(skeleton_graph, k, random.Random(seed + 2))

    new_stats = _pairwise_stretch(skeleton_graph, new)
    prior_stats = _pairwise_stretch(skeleton_graph, second)
    return LongRangeComparison(
        k=k,
        skeleton_size=skeleton_graph.num_nodes,
        new_max_stretch=new_stats["max"],
        new_mean_stretch=new_stats["mean"],
        prior_max_stretch=prior_stats["max"],
        prior_mean_stretch=prior_stats["mean"],
        new_spanner_edges=new.num_edges,
        prior_spanner_edges=second.num_edges,
    )
