"""Randomized ``(1+eps)``-approximate APSP in the style of Nanongkai [14].

The algorithm Theorem 4.1 improves upon: the same weight-rounding reduction,
but each unweighted instance is solved by breadth-first searches from all
sources whose start times are shifted by independent random delays to avoid
congestion.  The result is a ``(1+eps)``-approximation of APSP within
``O((h + |S|) log^2 n / eps^2)`` rounds w.h.p. — a ``Theta(log n)`` factor
slower than the deterministic source-detection-based solution, and
randomized.

For experiment E2 we need the baseline's *output* (identical approximation
guarantees) and its *round accounting*; the random-delay scheduling itself is
reflected in the round bound (drawn per instance from the actual random
delays), while distances are computed with the same per-level machinery.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional

from ..congest.metrics import CongestMetrics
from ..core.pde import solve_pde
from ..core.weight_rounding import RoundingScheme
from ..graphs.weighted_graph import WeightedGraph

__all__ = ["RandomizedAPSPResult", "nanongkai_apsp"]


@dataclass
class RandomizedAPSPResult:
    """Estimates plus round accounting of the randomized baseline."""

    epsilon: float
    estimates: Dict[Hashable, Dict[Hashable, float]]
    metrics: CongestMetrics = field(default_factory=CongestMetrics)
    max_delay: int = 0

    def estimate(self, u: Hashable, v: Hashable) -> float:
        if u == v:
            return 0.0
        return self.estimates.get(u, {}).get(v, float("inf"))


def nanongkai_apsp(graph: WeightedGraph, epsilon: float, seed: int = 0
                   ) -> RandomizedAPSPResult:
    """Randomized rounding-based APSP baseline.

    Output: ``(1+eps)``-approximate all-pairs estimates (same reduction as
    Theorem 3.3).  Rounds: per rounding level, BFS with random source delays
    costs ``horizon + max_delay`` rounds where the delays are drawn uniformly
    from ``[0, c * n * log n / eps]`` (the scheduling window that makes
    collisions unlikely w.h.p.); summed over the ``O(log n / eps)`` levels
    this reproduces the ``O(n log^2 n / eps^2)`` bound of [14].
    """
    n = graph.num_nodes
    rng = random.Random(seed)
    pde = solve_pde(graph, graph.nodes(), h=n, sigma=n, epsilon=epsilon,
                    engine="batched", store_levels=False)
    rounding = RoundingScheme(epsilon=epsilon, max_weight=graph.max_weight())
    horizon = rounding.horizon(n)
    log_n = max(1.0, math.log(max(2, n)))
    delay_window = int(math.ceil(n * log_n / epsilon))
    total_rounds = 0
    max_delay = 0
    for _level in rounding.levels():
        delays = [rng.randint(0, delay_window) for _ in range(n)]
        level_delay = max(delays) if delays else 0
        max_delay = max(max_delay, level_delay)
        total_rounds += horizon + level_delay
    metrics = CongestMetrics(rounds=total_rounds, measured=False)
    return RandomizedAPSPResult(epsilon=epsilon, estimates=pde.estimates,
                                metrics=metrics, max_delay=max_delay)
