"""Baseline algorithms the paper compares against (introduction and Section 4)."""

from .bellman_ford import DistanceVectorProtocol, bellman_ford_apsp, BellmanFordResult
from .flooding import LinkStateResult, link_state_apsp
from .nanongkai import RandomizedAPSPResult, nanongkai_apsp
from .prior_stoc13 import LongRangeComparison, compare_long_range_schemes

__all__ = [
    "DistanceVectorProtocol",
    "bellman_ford_apsp",
    "BellmanFordResult",
    "LinkStateResult",
    "link_state_apsp",
    "RandomizedAPSPResult",
    "nanongkai_apsp",
    "LongRangeComparison",
    "compare_long_range_schemes",
]
