"""repro — reproduction of "Fast Partial Distance Estimation and Applications".

Lenzen & Patt-Shamir, PODC 2015 (arXiv:1412.7922).

The package is organised by subsystem:

* :mod:`repro.congest`  — synchronous CONGEST-model simulator (rounds,
  bandwidth accounting, BFS primitives).
* :mod:`repro.graphs`   — weighted-graph substrate: data structure, exact
  distance machinery, generators, the Figure 1 lower-bound gadget.
* :mod:`repro.core`     — the paper's contribution: unweighted source
  detection, weight rounding, partial distance estimation (PDE), and the
  deterministic ``(1+eps)``-approximate APSP of Theorem 4.1.
* :mod:`repro.routing`  — the applications of Section 4: skeletons,
  Baswana–Sen spanners, Thorup–Zwick tree routing, the relabeling routing
  scheme (Theorem 4.5) and the compact routing hierarchy (Theorems 4.8/4.13).
* :mod:`repro.serving`  — the deployment layer: persistent artifacts for
  built hierarchies, the cached :class:`RoutingService` query facade, and
  reproducible query-workload generators.
* :mod:`repro.baselines` — comparison algorithms: distributed Bellman–Ford,
  topology flooding + Dijkstra, Nanongkai-style randomized APSP, and the
  prior-work STOC'13 scheme.
* :mod:`repro.analysis` — theoretical bound calculators, experiment runners
  and report formatting used by the benchmark harness.

Quickstart::

    from repro import graphs, core

    g = graphs.erdos_renyi_graph(50, 0.1, graphs.uniform_weights(1, 100), seed=1)
    result = core.approximate_apsp(g, epsilon=0.25)
    print(result.stretch_audit(g))
"""

from . import congest, graphs, core

__version__ = "0.1.0"

__all__ = ["congest", "graphs", "core", "__version__"]
