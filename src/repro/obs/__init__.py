"""Observability: metrics registries, trace capture/replay, experiments.

Layering contract: this package is a **dependency leaf** for its eagerly
imported modules — :mod:`repro.obs.metrics` and :mod:`repro.obs.trace`
import nothing from the rest of ``repro`` at module level, so routing
kernels and every serving layer can import them without cycles.

:mod:`repro.obs.experiment` (the ``repro-experiment`` harness) sits on
*top* of ``repro.serving`` and is therefore deliberately **not**
imported here; reach it explicitly (``from repro.obs import experiment``
or the console entry point).
"""

from .metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    make_registry,
    merge_exports,
)
from .trace import (
    TRACE_MAGIC,
    TRACE_VERSION,
    SessionTrace,
    TraceBatch,
    TraceError,
    TraceRecorder,
    load_trace,
    replay_trace,
    save_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "make_registry",
    "merge_exports",
    "TRACE_MAGIC",
    "TRACE_VERSION",
    "SessionTrace",
    "TraceBatch",
    "TraceError",
    "TraceRecorder",
    "save_trace",
    "load_trace",
    "replay_trace",
]
