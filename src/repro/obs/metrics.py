"""Telemetry core: counters, gauges, fixed-log-bucket histograms, spans.

This module is deliberately a *leaf* — stdlib only, no imports from the
rest of ``repro`` — so any layer (routing kernels, serving services,
shard workers, the CLI) can depend on it without cycles.

Design contract:

* Bucket boundaries are **deterministic** functions of ``(lo, hi,
  buckets_per_double)``: ``bounds[i] = lo * 2**(i / buckets_per_double)``.
  Two histograms built with the same parameters — in different processes,
  different interpreter runs, different worker orderings — always agree
  bucket-for-bucket, which is what makes per-worker merges exact.
* :meth:`Histogram.merge` is associative and commutative (bucket counts
  add, ``min``/``max``/``total`` combine pointwise), so
  ``ServingStats.merge`` can fold worker registries in any order.
* Everything is picklable (worker stats travel over a
  ``multiprocessing`` queue) and :meth:`to_dict` is JSON-safe (run
  directories and ``--json`` embed exports verbatim).
* The disabled path is the :data:`NULL_REGISTRY` singleton: every
  accessor returns a pre-built no-op object, so instrumented hot paths
  pay one attribute call and nothing else.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "make_registry",
    "merge_exports",
]

#: Default bucket layout: 4 buckets per doubling (growth factor
#: 2**0.25 ~ 1.19, i.e. ~19% relative quantile error) spanning 1us..64s.
DEFAULT_LO = 1e-6
DEFAULT_HI = 64.0
DEFAULT_BUCKETS_PER_DOUBLE = 4

_BOUNDS_CACHE: Dict[Tuple[float, float, int], List[float]] = {}


def _bucket_bounds(lo: float, hi: float, buckets_per_double: int) -> List[float]:
    """Strictly increasing log-spaced boundaries from ``lo`` up past ``hi``."""
    key = (lo, hi, buckets_per_double)
    bounds = _BOUNDS_CACHE.get(key)
    if bounds is None:
        if lo <= 0 or hi <= lo or buckets_per_double < 1:
            raise ValueError(
                f"invalid histogram layout lo={lo} hi={hi} "
                f"buckets_per_double={buckets_per_double}")
        steps = int(math.ceil(math.log2(hi / lo) * buckets_per_double)) + 1
        bounds = [lo * 2.0 ** (i / buckets_per_double) for i in range(steps)]
        _BOUNDS_CACHE[key] = bounds
    return bounds


class Counter:
    """A monotonically increasing count.  Merges by summing."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def to_dict(self) -> Dict[str, object]:
        return {"type": "counter", "value": self.value}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.value})"


class Gauge:
    """A point-in-time level.  Merges by taking the max across workers

    (the conventional cross-process reduction for levels like queue depth
    or resident table bytes, where summing would double-count a shared
    resource and averaging hides the worst worker).
    """

    __slots__ = ("value",)

    def __init__(self, value: float = 0) -> None:
        self.value = value

    def set(self, value: float) -> None:
        self.value = value

    def to_dict(self) -> Dict[str, object]:
        return {"type": "gauge", "value": self.value}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.value})"


class Histogram:
    """Fixed-log-bucket latency histogram (seconds).

    Buckets never move: index ``0`` is the underflow bucket
    (``v < lo``), indices ``1..len(bounds)-1`` cover
    ``[bounds[i-1], bounds[i])``, and ``len(bounds)`` is the overflow
    bucket (``v >= bounds[-1]``).  Counts are stored sparsely.

    Quantiles are bucket-resolution (geometric midpoint of the selected
    bucket) but always clamped to the observed ``[min, max]``, so a
    single-sample histogram reports that exact sample and an
    overflow-heavy histogram never invents a value beyond its true max.
    An empty histogram reports ``nan`` for every quantile.
    """

    __slots__ = ("lo", "hi", "buckets_per_double", "count", "total",
                 "min", "max", "counts", "_bounds")

    def __init__(self, lo: float = DEFAULT_LO, hi: float = DEFAULT_HI,
                 buckets_per_double: int = DEFAULT_BUCKETS_PER_DOUBLE) -> None:
        self.lo = float(lo)
        self.hi = float(hi)
        self.buckets_per_double = int(buckets_per_double)
        self._bounds = _bucket_bounds(self.lo, self.hi, self.buckets_per_double)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.counts: Dict[int, int] = {}

    # -- recording ---------------------------------------------------------

    def observe(self, value: float) -> None:
        value = float(value)
        if value < 0.0:          # durations: clock skew clamps to zero
            value = 0.0
        index = bisect_right(self._bounds, value)
        self.counts[index] = self.counts.get(index, 0) + 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    # -- reading -----------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def _bucket_value(self, index: int) -> float:
        bounds = self._bounds
        if index <= 0:
            value = self.min
        elif index >= len(bounds):
            value = self.max
        else:
            value = math.sqrt(bounds[index - 1] * bounds[index])
        return min(max(value, self.min), self.max)

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile; ``nan`` when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q!r} outside [0, 1]")
        if self.count == 0:
            return math.nan
        rank = max(1, math.ceil(q * self.count))
        cumulative = 0
        for index in sorted(self.counts):
            cumulative += self.counts[index]
            if cumulative >= rank:
                return self._bucket_value(index)
        return self._bucket_value(max(self.counts))  # pragma: no cover

    def percentiles(self) -> Dict[str, float]:
        return {"p50": self.quantile(0.50),
                "p95": self.quantile(0.95),
                "p99": self.quantile(0.99)}

    # -- combining ---------------------------------------------------------

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into ``self`` (in place); returns ``self``."""
        layout = (self.lo, self.hi, self.buckets_per_double)
        other_layout = (other.lo, other.hi, other.buckets_per_double)
        if layout != other_layout:
            raise ValueError(
                f"cannot merge histograms with different bucket layouts: "
                f"{layout} vs {other_layout}")
        for index, n in other.counts.items():
            self.counts[index] = self.counts.get(index, 0) + n
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    # -- (de)serialisation -------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "type": "histogram",
            "lo": self.lo,
            "hi": self.hi,
            "buckets_per_double": self.buckets_per_double,
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            # Derived on export (and recomputed after merges), not stored:
            # from_dict rebuilds them from the bucket counts, so two exports
            # of the same distribution always agree.  None (not NaN) when
            # empty — the export must stay JSON-round-trippable.
            "p50": self.quantile(0.50) if self.count else None,
            "p95": self.quantile(0.95) if self.count else None,
            "p99": self.quantile(0.99) if self.count else None,
            # JSON object keys are strings; sorted for deterministic dumps.
            "counts": {str(i): self.counts[i] for i in sorted(self.counts)},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Histogram":
        hist = cls(lo=payload.get("lo", DEFAULT_LO),
                   hi=payload.get("hi", DEFAULT_HI),
                   buckets_per_double=payload.get(
                       "buckets_per_double", DEFAULT_BUCKETS_PER_DOUBLE))
        hist.count = int(payload.get("count", 0))
        hist.total = float(payload.get("total", 0.0))
        if hist.count:
            hist.min = float(payload["min"])
            hist.max = float(payload["max"])
        hist.counts = {int(i): int(n)
                       for i, n in dict(payload.get("counts", {})).items()}
        return hist

    def __getstate__(self):
        # _bounds is a shared cached list; rebuild it on unpickle instead of
        # shipping a private copy per worker.
        return {"lo": self.lo, "hi": self.hi,
                "buckets_per_double": self.buckets_per_double,
                "count": self.count, "total": self.total,
                "min": self.min, "max": self.max, "counts": self.counts}

    def __setstate__(self, state):
        for name in ("lo", "hi", "buckets_per_double", "count", "total",
                     "min", "max", "counts"):
            object.__setattr__(self, name, state[name])
        object.__setattr__(
            self, "_bounds",
            _bucket_bounds(self.lo, self.hi, self.buckets_per_double))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Histogram(count={self.count}, mean={self.mean:.6g}, "
                f"p99={self.quantile(0.99):.6g})")


class _Span:
    """Context manager timing one stage into the owning histogram."""

    __slots__ = ("_histogram", "_clock", "_start")

    def __init__(self, histogram: Histogram, clock) -> None:
        self._histogram = histogram
        self._clock = clock
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = self._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._histogram.observe(self._clock() - self._start)


class MetricsRegistry:
    """Named metrics with get-or-create accessors and a JSON-safe export.

    Not thread-safe by design: each worker process (and the front-end)
    owns its registry and exports travel through ``ServingStats`` extras,
    where :func:`merge_exports` folds them additively.
    """

    enabled = True

    def __init__(self, clock=None) -> None:
        import time
        self._clock = clock if clock is not None else time.perf_counter
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, factory, kind) -> object:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, Gauge)

    def histogram(self, name: str, *, lo: float = DEFAULT_LO,
                  hi: float = DEFAULT_HI,
                  buckets_per_double: int = DEFAULT_BUCKETS_PER_DOUBLE,
                  ) -> Histogram:
        return self._get(
            name, lambda: Histogram(lo=lo, hi=hi,
                                    buckets_per_double=buckets_per_double),
            Histogram)

    def span(self, name: str) -> _Span:
        """Time a stage: ``with registry.span("artifact_load"): ...``."""
        return _Span(self.histogram(name), self._clock)

    def export(self) -> Dict[str, Dict[str, object]]:
        """JSON-safe snapshot ``{name: metric.to_dict()}``, name-sorted."""
        return {name: self._metrics[name].to_dict()
                for name in sorted(self._metrics)}

    def __getstate__(self):
        return {"_metrics": self._metrics}

    def __setstate__(self, state):
        import time
        self._clock = time.perf_counter
        self._metrics = state["_metrics"]


class _NullMetric:
    """Absorbs every recording call; never stores anything."""

    __slots__ = ()
    value = 0

    def inc(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_METRIC = _NullMetric()
_NULL_SPAN = _NullSpan()


class NullRegistry:
    """No-op registry: the default when telemetry is disabled.

    Every accessor returns a pre-built singleton, so an instrumented call
    site costs one method call and zero allocation on the hot path.
    """

    enabled = False

    def counter(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str, **_kwargs) -> _NullMetric:
        return _NULL_METRIC

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def export(self) -> Dict[str, Dict[str, object]]:
        return {}


NULL_REGISTRY = NullRegistry()


def make_registry(enabled: bool) -> object:
    """A live :class:`MetricsRegistry` or the shared no-op singleton."""
    return MetricsRegistry() if enabled else NULL_REGISTRY


def merge_exports(exports: Iterable[Mapping[str, Mapping[str, object]]],
                  ) -> Dict[str, Dict[str, object]]:
    """Fold registry exports additively (the ``ServingStats`` extra rule).

    Counters sum, gauges max, histograms merge bucket-for-bucket.
    Associative and commutative, so worker ordering cannot change the
    result.  Metrics present in only some exports are kept as-is; a name
    whose type disagrees across exports raises ``ValueError``.
    """
    merged: Dict[str, Dict[str, object]] = {}
    for export in exports:
        if not export:
            continue
        for name, payload in export.items():
            kind = payload.get("type")
            if name not in merged:
                if kind == "histogram":
                    merged[name] = Histogram.from_dict(payload).to_dict()
                else:
                    merged[name] = dict(payload)
                continue
            seen = merged[name]
            if seen.get("type") != kind:
                raise ValueError(
                    f"metric {name!r} has conflicting types across "
                    f"exports: {seen.get('type')!r} vs {kind!r}")
            if kind == "counter":
                seen["value"] = seen["value"] + payload["value"]
            elif kind == "gauge":
                seen["value"] = max(seen["value"], payload["value"])
            elif kind == "histogram":
                seen.update(
                    Histogram.from_dict(seen)
                    .merge(Histogram.from_dict(payload)).to_dict())
            else:
                raise ValueError(f"metric {name!r} has unknown type {kind!r}")
    return {name: merged[name] for name in sorted(merged)}
