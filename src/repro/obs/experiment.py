"""``repro-experiment`` — regression-gated serving experiment harness.

A named experiment is one serving session (described entirely by
``repro-serve`` flags) run into a *run directory* that captures everything
needed to reproduce and to compare it later::

    repro-experiment run --name warm-cache --out runs \\
        -- --graph er:n=300,p=0.03,seed=1 --k 3 --workload zipf \\
           --queries 2000 --telemetry

    repro-experiment compare runs/warm-cache/<baseline> runs/warm-cache/<cand>

Each run directory holds three JSON files:

* ``config.json`` — the harness parameters plus the fully *resolved*
  :class:`~repro.serving.config.ServingConfig` (``to_dict()`` form), so the
  exact session can be re-run from the directory alone;
* ``metrics.json`` — the complete result record
  (the ``repro-serve --json`` schema: throughput, per-batch latency
  quantiles, stage split, serving counters, and — when ``--telemetry`` was
  passed — the full per-span histogram buckets);
* ``environment.json`` — provenance of where the run happened (python,
  platform, machine, timestamp).

``compare`` diffs two run directories against declared regression
thresholds (defaults: p99 per-batch latency and throughput may each be at
most 10% worse than baseline) and exits non-zero when any threshold is
violated — a CI gate, not just a report.

This module is *not* imported by ``repro.obs.__init__``: it pulls in the
serving stack, and the obs package proper must stay a dependency leaf.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import sys
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Threshold",
    "DEFAULT_THRESHOLDS",
    "environment_provenance",
    "write_run_directory",
    "record_benchmark_run",
    "load_run",
    "compare_runs",
    "main",
]


# ======================================================================
# thresholds
# ======================================================================

@dataclass(frozen=True)
class Threshold:
    """One regression gate: a metric, how much worse it may get, and which
    direction is "better".

    ``metric`` is a dotted path into the run's ``metrics.json`` record
    (e.g. ``latency_ms.p99`` or ``queries_per_second``);
    ``max_regression_pct`` is the largest tolerated regression in percent
    of the baseline value.
    """

    metric: str
    max_regression_pct: float
    higher_is_better: bool

    @classmethod
    def parse(cls, spec: str) -> "Threshold":
        """Parse ``metric:pct[:higher|lower]`` (direction = which way is
        *better*; default ``higher``, i.e. throughput-style)."""
        parts = spec.split(":")
        if not parts[0]:
            raise ValueError(f"threshold spec {spec!r} has no metric path")
        if len(parts) > 3:
            raise ValueError(
                f"threshold spec {spec!r} has too many fields "
                "(want metric:pct[:higher|lower])")
        pct = float(parts[1]) if len(parts) > 1 and parts[1] else 10.0
        direction = parts[2] if len(parts) > 2 else "higher"
        if direction not in ("higher", "lower"):
            raise ValueError(
                f"threshold direction must be 'higher' or 'lower' "
                f"(which way is better), got {direction!r}")
        return cls(metric=parts[0], max_regression_pct=pct,
                   higher_is_better=(direction == "higher"))


#: The default gates: per-batch p99 latency and end-to-end throughput may
#: each regress by at most 10% against the baseline run.
DEFAULT_THRESHOLDS: Tuple[Threshold, ...] = (
    Threshold("latency_ms.p99", 10.0, higher_is_better=False),
    Threshold("queries_per_second", 10.0, higher_is_better=True),
)


def _lookup(record: Mapping, path: str):
    """Walk a dotted path into nested dicts; ``None`` when absent."""
    node = record
    for part in path.split("."):
        if not isinstance(node, Mapping) or part not in node:
            return None
        node = node[part]
    return node


def compare_runs(baseline: Mapping, candidate: Mapping,
                 thresholds: Sequence[Threshold] = DEFAULT_THRESHOLDS,
                 ) -> List[Dict[str, object]]:
    """Evaluate every threshold over two ``metrics.json`` records.

    Returns one evaluation dict per threshold with keys ``metric``,
    ``baseline``, ``candidate``, ``regression_pct``, ``limit_pct`` and
    ``status`` (``ok`` / ``regression`` / ``skipped``).  A metric missing
    or null on either side is ``skipped`` — absence is not a pass, and the
    caller decides whether skips should fail the gate (the CLI reports
    them but only ``regression`` flips the exit code).
    """
    evaluations: List[Dict[str, object]] = []
    for threshold in thresholds:
        base = _lookup(baseline, threshold.metric)
        cand = _lookup(candidate, threshold.metric)
        entry: Dict[str, object] = {
            "metric": threshold.metric,
            "baseline": base,
            "candidate": cand,
            "limit_pct": threshold.max_regression_pct,
            "higher_is_better": threshold.higher_is_better,
        }
        if (not isinstance(base, (int, float)) or isinstance(base, bool)
                or not isinstance(cand, (int, float))
                or isinstance(cand, bool)):
            entry["regression_pct"] = None
            entry["status"] = "skipped"
            evaluations.append(entry)
            continue
        if base == 0:
            # No baseline signal to regress against: only flag movement in
            # the "worse" direction away from an exact zero.
            worse = cand < 0 if threshold.higher_is_better else cand > 0
            regression = math.inf if worse else 0.0
        elif threshold.higher_is_better:
            regression = (base - cand) / abs(base) * 100.0
        else:
            regression = (cand - base) / abs(base) * 100.0
        entry["regression_pct"] = (round(regression, 3)
                                   if math.isfinite(regression)
                                   else regression)
        entry["status"] = ("ok" if regression <= threshold.max_regression_pct
                           else "regression")
        evaluations.append(entry)
    return evaluations


# ======================================================================
# run directories
# ======================================================================

def environment_provenance() -> Dict[str, object]:
    """Where this run happened — recorded verbatim into the run directory."""
    return {
        "python": sys.version,
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "hostname": platform.node(),
        "pid": os.getpid(),
        "cwd": os.getcwd(),
        "timestamp_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }


def _write_json(path: str, payload: Mapping) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")


def write_run_directory(run_dir: str, record: Mapping, config: Mapping,
                        environment: Optional[Mapping] = None) -> str:
    """Materialise one run directory (``config.json`` / ``metrics.json`` /
    ``environment.json``); returns ``run_dir``.

    Shared by the ``run`` subcommand and the benchmark scripts, so every
    producer emits the same layout ``compare`` and CI consume.
    """
    os.makedirs(run_dir, exist_ok=True)
    _write_json(os.path.join(run_dir, "config.json"), config)
    _write_json(os.path.join(run_dir, "metrics.json"), record)
    _write_json(os.path.join(run_dir, "environment.json"),
                environment if environment is not None
                else environment_provenance())
    return run_dir


def record_benchmark_run(name: str, payload: Mapping, config: Mapping,
                         out_path: Optional[str] = None,
                         run_dir: Optional[str] = None) -> str:
    """Persist one benchmark result through the run-directory flow.

    The one wiring every ``benchmarks/bench_*.py`` CLI shares: the payload
    lands in a run directory (``runs/<name>/<utc-timestamp>-<pid>`` unless
    ``run_dir`` names one), making it a first-class ``repro-experiment
    compare`` citizen, and the flat CI artifact (``out_path``) is *derived*
    from that directory by reading it back — one source of truth, two
    consumers.  Returns the run directory path.
    """
    if run_dir is None:
        run_id = (time.strftime("%Y%m%dT%H%M%S", time.gmtime())
                  + f"-{os.getpid()}")
        run_dir = os.path.join("runs", name, run_id)
    write_run_directory(run_dir, payload, dict(config, name=name))
    print(f"wrote run directory {run_dir}")
    if out_path is not None:
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(load_run(run_dir)["metrics"], handle, indent=2)
        print(f"wrote {out_path}")
    return run_dir


def load_run(run_dir: str) -> Dict[str, Dict]:
    """Read a run directory back; ``metrics.json`` is required, the other
    two files are optional (empty dict when absent)."""
    metrics_path = os.path.join(run_dir, "metrics.json")
    if not os.path.isfile(metrics_path):
        raise FileNotFoundError(
            f"{run_dir!r} is not a run directory (no metrics.json)")
    out: Dict[str, Dict] = {}
    for name in ("config", "metrics", "environment"):
        path = os.path.join(run_dir, f"{name}.json")
        if os.path.isfile(path):
            with open(path, "r", encoding="utf-8") as handle:
                out[name] = json.load(handle)
        else:
            out[name] = {}
    return out


# ======================================================================
# CLI
# ======================================================================

def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Run named serving experiments into run directories "
                    "and gate changes on metric regressions.")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="run one serving session into a run directory")
    run.add_argument("--name", required=True,
                     help="experiment name (groups runs under "
                          "OUT/NAME/RUN_ID)")
    run.add_argument("--out", default="runs",
                     help="root directory for run directories "
                          "(default ./runs)")
    run.add_argument("--run-id", default=None,
                     help="run directory name (default: UTC timestamp + "
                          "pid)")
    run.add_argument("--json", action="store_true",
                     help="echo the metrics record as JSON on stdout")
    run.add_argument("serve_args", nargs=argparse.REMAINDER,
                     help="repro-serve flags describing the session "
                          "(separate with --)")

    compare = sub.add_parser(
        "compare", help="diff two run directories against regression "
                        "thresholds; non-zero exit on violation")
    compare.add_argument("baseline", help="baseline run directory")
    compare.add_argument("candidate", help="candidate run directory")
    compare.add_argument("--threshold", action="append", default=None,
                         metavar="METRIC:PCT[:higher|lower]",
                         help="override the default gates (latency_ms.p99 "
                              "and queries_per_second, 10%% each); "
                              "direction says which way is better; "
                              "repeatable")
    compare.add_argument("--json", action="store_true",
                         help="emit the evaluation list as JSON")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    # The session itself is described in repro-serve's own flag language,
    # validated by repro-serve's own parser — one grammar, two entry
    # points.  Imported here (not at module top) to keep repro.obs a
    # dependency leaf for everything except this harness entry point.
    from ..serving.cli import (
        build_parser as build_serve_parser,
        config_from_args,
        run_serving_session,
    )

    serve_args_raw = list(args.serve_args)
    if serve_args_raw and serve_args_raw[0] == "--":
        serve_args_raw = serve_args_raw[1:]
    serve_parser = build_serve_parser()
    serve_parser.prog = "repro-experiment run --"
    serve_args = serve_parser.parse_args(serve_args_raw)
    config = config_from_args(serve_args, serve_parser)

    record, _stats, ok = run_serving_session(config, hot=serve_args.hot,
                                             trace_out=serve_args.trace_out)
    record = dict(record)
    record["ok"] = ok

    run_id = args.run_id
    if run_id is None:
        run_id = time.strftime("%Y%m%dT%H%M%S", time.gmtime()) \
            + f"-{os.getpid()}"
    run_dir = os.path.join(args.out, args.name, run_id)
    write_run_directory(run_dir, record, {
        "name": args.name,
        "run_id": run_id,
        "hot": serve_args.hot,
        "trace_out": serve_args.trace_out,
        "serving": config.to_dict(),
    })

    if args.json:
        json.dump(record, sys.stdout, indent=2, default=str)
        print()
    else:
        latency = record.get("latency_ms", {})
        p99 = latency.get("p99")
        p99_text = f"{p99:.2f} ms" if isinstance(p99, float) else "n/a"
        print(f"run {args.name}/{run_id}: "
              f"{record['queries_per_second']:,.0f} q/s, "
              f"p99 {p99_text} -> {run_dir}")
    return 0 if ok else 1


def _cmd_compare(args: argparse.Namespace) -> int:
    thresholds = (tuple(Threshold.parse(spec) for spec in args.threshold)
                  if args.threshold else DEFAULT_THRESHOLDS)
    baseline = load_run(args.baseline)["metrics"]
    candidate = load_run(args.candidate)["metrics"]
    evaluations = compare_runs(baseline, candidate, thresholds)
    failed = [e for e in evaluations if e["status"] == "regression"]

    if args.json:
        json.dump({"evaluations": evaluations,
                   "ok": not failed}, sys.stdout, indent=2, default=str)
        print()
    else:
        for entry in evaluations:
            regression = entry["regression_pct"]
            detail = (f"{regression:+.1f}% (limit "
                      f"{entry['limit_pct']:.0f}%)"
                      if isinstance(regression, float)
                      else "metric missing on one side")
            print(f"[{entry['status']:^10}] {entry['metric']}: "
                  f"{entry['baseline']} -> {entry['candidate']}  {detail}")
        verdict = ("FAIL: "
                   f"{len(failed)} regression(s) over threshold"
                   if failed else "OK: no regressions over threshold")
        print(verdict)
    return 1 if failed else 0


def main(argv=None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    return _cmd_compare(args)


if __name__ == "__main__":
    raise SystemExit(main())
