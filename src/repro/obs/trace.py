"""Trace capture and replay: live serving sessions as versioned artifacts.

A *trace* is the recorded shape of a serving session — the query pairs,
their kinds, the batch boundaries, and each batch's arrival-time offset
from session start.  Captured once with :class:`TraceRecorder` (which
wraps any ``QueryBackend``), it becomes a reusable fixture: the ``trace``
workload registered in :mod:`repro.serving.workloads` replays it
deterministically, batch shaping included, so production-shaped load can
gate regressions instead of living and dying with one terminal session.

On-disk format (``REPRO-TRACE v1``), following the artifact idiom of
``serving/artifacts.py`` — a magic line, a header JSON line carrying the
body checksum, then the body::

    REPRO-TRACE v1\n
    {"checksum": "<sha256 of body bytes>", "queries": N, "batches": M,
     "meta": {...}}\n
    {"batches": [{"kind": "route", "offset": 0.0013,
                  "pairs": [[s, t], ...]}, ...]}

The body is UTF-8 JSON with sorted keys, so identical sessions produce
byte-identical traces.  Node labels must be JSON-representable (ints and
strings — everything the graph generators produce); richer label types
would need an interning layer and are rejected at save time.

This module imports nothing from ``repro.serving`` at module level (the
one serving import, inside :meth:`SessionTrace.to_workload`, is resolved
at call time) so ``repro.obs`` stays a dependency leaf.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

__all__ = [
    "TRACE_MAGIC",
    "TRACE_VERSION",
    "TraceError",
    "TraceBatch",
    "SessionTrace",
    "TraceRecorder",
    "save_trace",
    "load_trace",
    "replay_trace",
]

TRACE_MAGIC = "REPRO-TRACE"
TRACE_VERSION = 1

_KINDS = ("route", "distance")


class TraceError(ValueError):
    """A trace file is missing, malformed, corrupt, or unsupported."""


@dataclass(frozen=True)
class TraceBatch:
    """One recorded query batch."""

    kind: str
    pairs: Tuple[Tuple[Hashable, Hashable], ...]
    #: Seconds between session start and this batch's submission.
    offset_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise TraceError(f"unknown batch kind {self.kind!r}")


@dataclass
class SessionTrace:
    """An ordered sequence of recorded batches plus free-form metadata."""

    batches: List[TraceBatch] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)
    version: int = TRACE_VERSION

    @property
    def num_queries(self) -> int:
        return sum(len(batch.pairs) for batch in self.batches)

    def pairs(self) -> List[Tuple[Hashable, Hashable]]:
        """All pairs in recorded order, batch boundaries flattened away."""
        flat: List[Tuple[Hashable, Hashable]] = []
        for batch in self.batches:
            flat.extend(batch.pairs)
        return flat

    def batch_sizes(self) -> List[int]:
        return [len(batch.pairs) for batch in self.batches]

    def kinds(self) -> List[str]:
        return [batch.kind for batch in self.batches]

    def to_workload(self, name: str = "trace"):
        """Materialise as a :class:`~repro.serving.workloads.QueryWorkload`.

        Batch shaping (sizes and per-batch kinds) rides along so the CLI
        replays the recorded session batch-for-batch rather than
        re-chunking by ``--batch-size``.
        """
        # Call-time import: serving.workloads itself registers the
        # ``trace`` workload, which calls back into this module.
        from ..serving.workloads import QueryWorkload

        return QueryWorkload(
            name=name,
            pairs=self.pairs(),
            params={"queries": self.num_queries,
                    "batches": len(self.batches),
                    "version": self.version,
                    **{f"meta_{k}": v for k, v in sorted(self.meta.items())
                       if isinstance(v, (str, int, float, bool))}},
            batch_sizes=self.batch_sizes(),
            batch_kinds=self.kinds(),
        )

    def _body_payload(self) -> Dict[str, object]:
        return {"batches": [{"kind": batch.kind,
                             "offset": batch.offset_seconds,
                             "pairs": [list(pair) for pair in batch.pairs]}
                            for batch in self.batches]}


class TraceRecorder:
    """Wrap a ``QueryBackend``; answers pass through, batches are recorded.

    Duck-types the backend protocol (``route_batch`` / ``distance_batch``
    / ``query_stats`` / ``close`` / context manager) and delegates any
    other attribute to the wrapped backend, so existing driver loops work
    unmodified.  Arrival offsets are measured from construction with a
    monotonic clock (injectable for tests).
    """

    def __init__(self, backend, meta: Optional[Dict[str, object]] = None,
                 clock=time.perf_counter) -> None:
        self._backend = backend
        self._clock = clock
        self._start = clock()
        self.trace = SessionTrace(meta=dict(meta or {}))

    def _record(self, kind: str, pairs: Sequence) -> None:
        self.trace.batches.append(TraceBatch(
            kind=kind,
            pairs=tuple(tuple(pair) for pair in pairs),
            offset_seconds=self._clock() - self._start))

    def route_batch(self, pairs):
        self._record("route", pairs)
        return self._backend.route_batch(pairs)

    def distance_batch(self, pairs):
        self._record("distance", pairs)
        return self._backend.distance_batch(pairs)

    def query_stats(self):
        return self._backend.query_stats()

    @property
    def graph(self):
        return self._backend.graph

    def close(self) -> None:
        self._backend.close()

    def __enter__(self) -> "TraceRecorder":
        enter = getattr(self._backend, "__enter__", None)
        if enter is not None:
            enter()
        return self

    def __exit__(self, exc_type, exc, tb):
        exit_ = getattr(self._backend, "__exit__", None)
        if exit_ is not None:
            return exit_(exc_type, exc, tb)
        return None

    def __getattr__(self, name):
        return getattr(self._backend, name)

    def save(self, path: str,
             meta: Optional[Dict[str, object]] = None) -> str:
        if meta:
            self.trace.meta.update(meta)
        return save_trace(self.trace, path)


def _json_safe_pair(pair) -> None:
    for node in pair:
        if not isinstance(node, (int, str)):
            raise TraceError(
                f"trace nodes must be JSON-representable ints or strings, "
                f"got {type(node).__name__}: {node!r}")


def save_trace(trace: SessionTrace, path: str) -> str:
    """Write ``trace`` atomically; returns the body's sha256 hex digest."""
    for batch in trace.batches:
        for pair in batch.pairs:
            _json_safe_pair(pair)
    body = json.dumps(trace._body_payload(), sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    checksum = hashlib.sha256(body).hexdigest()
    header = json.dumps({"checksum": checksum,
                         "queries": trace.num_queries,
                         "batches": len(trace.batches),
                         "meta": trace.meta}, sort_keys=True)
    tmp_path = f"{path}.tmp.{os.getpid()}"
    with open(tmp_path, "wb") as fh:
        fh.write(f"{TRACE_MAGIC} v{trace.version}\n".encode("ascii"))
        fh.write(header.encode("utf-8") + b"\n")
        fh.write(body)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp_path, path)
    return checksum


def load_trace(path: str) -> SessionTrace:
    """Read a trace, verifying magic, version, and body checksum."""
    try:
        with open(path, "rb") as fh:
            magic_line = fh.readline()
            header_line = fh.readline()
            body = fh.read()
    except OSError as exc:
        raise TraceError(f"cannot read trace {path!r}: {exc}") from exc

    magic = magic_line.decode("ascii", "replace").strip()
    if not magic.startswith(TRACE_MAGIC + " v"):
        raise TraceError(f"{path!r} is not a trace file (magic {magic!r})")
    try:
        version = int(magic.split("v", 1)[1])
    except ValueError:
        raise TraceError(f"unparseable trace version in magic {magic!r}")
    if version != TRACE_VERSION:
        raise TraceError(
            f"unsupported trace version {version} (supported: "
            f"{TRACE_VERSION})")

    try:
        header = json.loads(header_line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TraceError(f"corrupt trace header in {path!r}: {exc}") from exc
    checksum = hashlib.sha256(body).hexdigest()
    if checksum != header.get("checksum"):
        raise TraceError(
            f"trace body checksum mismatch in {path!r}: header says "
            f"{header.get('checksum')!r}, body hashes to {checksum!r}")

    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TraceError(f"corrupt trace body in {path!r}: {exc}") from exc

    batches = [TraceBatch(kind=entry["kind"],
                          pairs=tuple(tuple(pair) for pair in entry["pairs"]),
                          offset_seconds=float(entry.get("offset", 0.0)))
               for entry in payload.get("batches", [])]
    trace = SessionTrace(batches=batches, meta=dict(header.get("meta", {})),
                         version=version)
    if trace.num_queries != header.get("queries"):
        raise TraceError(
            f"trace query count mismatch in {path!r}: header says "
            f"{header.get('queries')}, body holds {trace.num_queries}")
    return trace


def replay_trace(backend, trace: SessionTrace) -> List[object]:
    """Re-issue every recorded batch in order; returns the flat answers.

    Replay is deterministic: batch boundaries and kinds are exactly the
    recorded ones, so answers are list-for-list comparable with the
    original session on any backend serving the same artifact.
    """
    answers: List[object] = []
    for batch in trace.batches:
        if batch.kind == "route":
            answers.extend(backend.route_batch(list(batch.pairs)))
        else:
            answers.extend(backend.distance_batch(list(batch.pairs)))
    return answers
