"""The Figure 1 lower-bound construction of the paper.

Figure 1 of the paper exhibits a weighted graph on which exact
``(S, h+1, sigma)``-detection cannot be solved in ``o(h * sigma)`` rounds:
all ``h * sigma`` source/distance values relevant to the nodes ``u_i`` must
traverse a single bottleneck edge ``{u_1, v_h}``.

Construction (following the figure):

* a chain of "receiver" nodes ``u_h - u_{h-1} - ... - u_1``,
* the bottleneck edge ``{u_1, v_h}``,
* a chain of "attachment" nodes ``v_h - v_{h-1} - ... - v_1``,
* each ``v_i`` carries ``sigma`` leaf sources ``s_{i,1}, ..., s_{i,sigma}``
  attached by edges of weight ``~4^i * h`` (geometrically growing so that the
  relevant distance values are pairwise distinct and cannot be aggregated),
* all chain edges have weight 1 (negligible).

The construction is exposed as a :class:`LowerBoundInstance` so that the
benchmark for experiment E1 can (a) count the number of distinct
``(source, distance)`` values that must cross the bottleneck and (b) measure
how many messages the exact-detection baseline and the PDE algorithm actually
push across that edge in the CONGEST simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from .weighted_graph import WeightedGraph

__all__ = ["LowerBoundInstance", "build_figure1_graph"]


@dataclass
class LowerBoundInstance:
    """The Figure 1 gadget together with the named node groups."""

    graph: WeightedGraph
    h: int
    sigma: int
    receivers: List[str] = field(default_factory=list)   # u_1 ... u_h
    attachments: List[str] = field(default_factory=list)  # v_1 ... v_h
    sources: List[str] = field(default_factory=list)      # s_{i,j}
    bottleneck: Tuple[str, str] = ("", "")

    @property
    def source_set(self) -> Set[str]:
        return set(self.sources)

    @property
    def detection_hop_budget(self) -> int:
        """The ``h + 1`` hop budget used in the figure's statement.

        With a hop budget of ``h + 1``... (receiver ``u_1`` is one hop from
        ``v_h``, and ``v_i`` is ``h - i + 1`` hops further, plus one hop to
        the leaves), every receiver can see a large slice of the sources, so
        choose a budget that lets ``u_1`` reach all of them.
        """
        return 2 * self.h + 1

    def required_values_over_bottleneck(self) -> int:
        """Number of distinct (source, distance) values that must cross the cut.

        Every receiver node ``u_i`` must output distances to ``sigma``
        sources (its closest ones), and all sources sit on the far side of
        the bottleneck edge, hence at least ``h * sigma / sigma``... The
        information-theoretic argument of the figure is that the *union* of
        values needed by ``u_1, ..., u_h`` has size ``h * sigma`` because the
        geometric weights make every receiver's relevant source set the same
        but the distances distinct and incompressible.  We report the count
        ``h * sigma`` as the paper's bound.
        """
        return self.h * self.sigma


def build_figure1_graph(h: int, sigma: int, base: int = 4) -> LowerBoundInstance:
    """Build the Figure 1 gadget for parameters ``h`` and ``sigma``.

    Parameters
    ----------
    h:
        Length of both chains (number of receivers and of attachment nodes).
    sigma:
        Number of leaf sources per attachment node.
    base:
        Growth base of the leaf edge weights (the paper uses 4).
    """
    if h < 1 or sigma < 1:
        raise ValueError("h and sigma must be positive")
    graph = WeightedGraph()
    receivers = [f"u{i}" for i in range(1, h + 1)]
    attachments = [f"v{i}" for i in range(1, h + 1)]
    sources: List[str] = []

    # receiver chain u_h - ... - u_1 (weight-1 edges)
    for i in range(len(receivers) - 1):
        graph.add_edge(receivers[i], receivers[i + 1], 1)
    # attachment chain v_h - ... - v_1 (weight-1 edges)
    for i in range(len(attachments) - 1):
        graph.add_edge(attachments[i], attachments[i + 1], 1)
    # bottleneck edge {u_1, v_h}
    bottleneck = (receivers[0], attachments[-1])
    graph.add_edge(*bottleneck, 1)

    # leaf sources s_{i,j} attached to v_i with geometrically growing weights
    for i in range(1, h + 1):
        weight = (base ** i) * h
        for j in range(1, sigma + 1):
            name = f"s{i}_{j}"
            sources.append(name)
            graph.add_edge(attachments[i - 1], name, weight)

    return LowerBoundInstance(
        graph=graph,
        h=h,
        sigma=sigma,
        receivers=receivers,
        attachments=attachments,
        sources=sources,
        bottleneck=bottleneck,
    )
