"""Weighted undirected graph data structure used throughout the reproduction.

The paper models the network as a simple, connected, weighted undirected graph
``G = (V, E, W)`` with integer edge weights ``W : E -> N`` bounded by a
polynomial in ``n``.  :class:`WeightedGraph` is a small adjacency-map
implementation tailored to the needs of the CONGEST simulator and the
distance machinery: integer node identifiers, positive integer weights, and
cheap neighbourhood iteration.

The class intentionally does not depend on :mod:`networkx` for its core
operations (the simulator iterates adjacency lists in tight loops), but it
converts to and from ``networkx.Graph`` for interoperability with the graph
generators and for users who want to plug in their own topologies.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = ["WeightedGraph", "GraphError"]


class GraphError(ValueError):
    """Raised for structurally invalid graph operations."""


class WeightedGraph:
    """A simple undirected graph with positive integer edge weights.

    Nodes are hashable identifiers (typically small integers, matching the
    paper's assumption of ``O(log n)``-bit identifiers).  Parallel edges and
    self-loops are rejected, matching the "simple graph" assumption of the
    CONGEST model description in Section 2.1 of the paper.
    """

    def __init__(self) -> None:
        self._adj: Dict[object, Dict[object, int]] = {}
        self._num_edges = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: object) -> None:
        """Add an isolated node (no-op if it already exists)."""
        if node not in self._adj:
            self._adj[node] = {}

    def add_edge(self, u: object, v: object, weight: int = 1) -> None:
        """Add the undirected edge ``{u, v}`` with the given positive weight.

        Adding an edge that already exists overwrites its weight; this keeps
        generators simple (they may emit the same edge twice with the same
        weight).
        """
        if u == v:
            raise GraphError(f"self-loops are not allowed (node {u!r})")
        if not isinstance(weight, (int,)) or isinstance(weight, bool):
            raise GraphError(f"edge weight must be an int, got {weight!r}")
        if weight <= 0:
            raise GraphError(f"edge weight must be positive, got {weight}")
        self.add_node(u)
        self.add_node(v)
        if v not in self._adj[u]:
            self._num_edges += 1
        self._adj[u][v] = weight
        self._adj[v][u] = weight

    def remove_edge(self, u: object, v: object) -> None:
        """Remove the edge ``{u, v}``; raises :class:`GraphError` if absent."""
        if not self.has_edge(u, v):
            raise GraphError(f"edge {{{u!r}, {v!r}}} does not exist")
        del self._adj[u][v]
        del self._adj[v][u]
        self._num_edges -= 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def nodes(self) -> List[object]:
        """Return the list of nodes (insertion order)."""
        return list(self._adj.keys())

    def has_node(self, node: object) -> bool:
        return node in self._adj

    def has_edge(self, u: object, v: object) -> bool:
        return u in self._adj and v in self._adj[u]

    def edges(self) -> Iterator[Tuple[object, object, int]]:
        """Yield each undirected edge once as ``(u, v, weight)``."""
        seen = set()
        for u, nbrs in self._adj.items():
            for v, w in nbrs.items():
                key = (u, v) if repr(u) <= repr(v) else (v, u)
                if key in seen:
                    continue
                seen.add(key)
                yield u, v, w

    def neighbors(self, node: object) -> Iterator[object]:
        """Iterate over the neighbours of ``node``."""
        return iter(self._adj[node])

    def neighbor_weights(self, node: object) -> Dict[object, int]:
        """Return the ``{neighbour: weight}`` mapping for ``node``.

        The returned dict is the internal adjacency map; callers must not
        mutate it.
        """
        return self._adj[node]

    def weight(self, u: object, v: object) -> int:
        """Return the weight of edge ``{u, v}``."""
        try:
            return self._adj[u][v]
        except KeyError:
            raise GraphError(f"edge {{{u!r}, {v!r}}} does not exist") from None

    def degree(self, node: object) -> int:
        return len(self._adj[node])

    @property
    def num_nodes(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def max_weight(self) -> int:
        """Return the maximum edge weight (1 for an edgeless graph)."""
        best = 1
        for _, _, w in self.edges():
            if w > best:
                best = w
        return best

    def total_weight(self) -> int:
        """Return the sum of all edge weights."""
        return sum(w for _, _, w in self.edges())

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """Return whether the graph is connected (empty graphs count as connected)."""
        if self.num_nodes == 0:
            return True
        start = next(iter(self._adj))
        seen = {start}
        stack = [start]
        while stack:
            u = stack.pop()
            for v in self._adj[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return len(seen) == self.num_nodes

    def connected_components(self) -> List[List[object]]:
        """Return the connected components as lists of nodes."""
        seen: set = set()
        components: List[List[object]] = []
        for start in self._adj:
            if start in seen:
                continue
            comp = [start]
            seen.add(start)
            stack = [start]
            while stack:
                u = stack.pop()
                for v in self._adj[u]:
                    if v not in seen:
                        seen.add(v)
                        comp.append(v)
                        stack.append(v)
            components.append(comp)
        return components

    def subgraph(self, nodes: Iterable[object]) -> "WeightedGraph":
        """Return the induced subgraph on ``nodes``."""
        node_set = set(nodes)
        sub = WeightedGraph()
        for node in node_set:
            if node in self._adj:
                sub.add_node(node)
        for u, v, w in self.edges():
            if u in node_set and v in node_set:
                sub.add_edge(u, v, w)
        return sub

    def copy(self) -> "WeightedGraph":
        """Return a deep copy of the graph."""
        other = WeightedGraph()
        for node in self._adj:
            other.add_node(node)
        for u, v, w in self.edges():
            other.add_edge(u, v, w)
        return other

    def reweighted(self, weight_fn) -> "WeightedGraph":
        """Return a copy whose edge weights are ``weight_fn(u, v, w)``."""
        other = WeightedGraph()
        for node in self._adj:
            other.add_node(node)
        for u, v, w in self.edges():
            other.add_edge(u, v, int(weight_fn(u, v, w)))
        return other

    # ------------------------------------------------------------------
    # interoperability
    # ------------------------------------------------------------------
    @classmethod
    def from_networkx(cls, nx_graph, weight_attr: str = "weight",
                      default_weight: int = 1) -> "WeightedGraph":
        """Build a :class:`WeightedGraph` from a ``networkx.Graph``."""
        graph = cls()
        for node in nx_graph.nodes():
            graph.add_node(node)
        for u, v, data in nx_graph.edges(data=True):
            if u == v:
                continue
            weight = int(data.get(weight_attr, default_weight))
            graph.add_edge(u, v, max(1, weight))
        return graph

    def to_networkx(self):
        """Convert to a ``networkx.Graph`` with ``weight`` edge attributes."""
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(self.nodes())
        for u, v, w in self.edges():
            nx_graph.add_edge(u, v, weight=w)
        return nx_graph

    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[object, object, int]],
                   nodes: Optional[Iterable[object]] = None) -> "WeightedGraph":
        """Build a graph from an iterable of ``(u, v, weight)`` triples."""
        graph = cls()
        if nodes is not None:
            for node in nodes:
                graph.add_node(node)
        for u, v, w in edges:
            graph.add_edge(u, v, w)
        return graph

    # ------------------------------------------------------------------
    # state export (serving artifacts)
    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, object]:
        """Plain-builtin snapshot of the graph for persistence.

        The per-node *adjacency order* is captured explicitly (not just the
        edge set): neighbour iteration order breaks ties in the distance
        machinery, so a faithful reload must reproduce it exactly for
        reloaded routing structures to answer queries identically.
        """
        return {
            "nodes": list(self._adj.keys()),
            "adjacency": [(u, list(nbrs.items())) for u, nbrs in self._adj.items()],
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "WeightedGraph":
        """Rebuild a graph from :meth:`export_state`, validating the invariants."""
        graph = cls()
        for node in state["nodes"]:
            graph.add_node(node)
        for u, nbrs in state["adjacency"]:
            if u not in graph._adj:
                raise GraphError(f"adjacency references unknown node {u!r}")
            for v, w in nbrs:
                if u == v:
                    raise GraphError(f"self-loops are not allowed (node {u!r})")
                if v not in graph._adj:
                    raise GraphError(f"adjacency references unknown node {v!r}")
                if not isinstance(w, int) or isinstance(w, bool) or w <= 0:
                    raise GraphError(f"edge weight must be a positive int, got {w!r}")
                graph._adj[u][v] = w
        edges = 0
        for u, nbrs in graph._adj.items():
            for v, w in nbrs.items():
                if graph._adj.get(v, {}).get(u) != w:
                    raise GraphError(f"asymmetric adjacency on edge {{{u!r}, {v!r}}}")
                edges += 1
        graph._num_edges = edges // 2
        return graph

    # ------------------------------------------------------------------
    # dunder helpers
    # ------------------------------------------------------------------
    def __contains__(self, node: object) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __repr__(self) -> str:
        return (f"WeightedGraph(num_nodes={self.num_nodes}, "
                f"num_edges={self.num_edges})")
