"""Graph distance machinery: the concepts of Section 2.2 of the paper.

This module provides reference (centralized) implementations of every
distance notion the paper uses:

* hop distance ``hd`` and the hop diameter ``D``,
* weighted distance ``wd`` and the weighted diameter ``WD``,
* ``h``-hop distances (minimum weight over paths of at most ``h`` hops),
* minimum-hop shortest weighted paths and the shortest path diameter ``SPD``.

These are used both as ground truth in tests and benchmarks (stretch is
always measured against ``wd``) and as the computational core of the fast
"logical" execution engine for the distributed algorithms.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from .weighted_graph import WeightedGraph

__all__ = [
    "INFINITY",
    "dijkstra",
    "dijkstra_with_hops",
    "all_pairs_weighted_distances",
    "bfs_hop_distances",
    "all_pairs_hop_distances",
    "hop_diameter",
    "weighted_diameter",
    "shortest_path_diameter",
    "h_hop_distances",
    "h_hop_distances_from_sources",
    "path_weight",
    "path_hops",
    "reconstruct_path",
]

INFINITY = float("inf")


def dijkstra(graph: WeightedGraph, source: Hashable,
             weight_fn=None) -> Tuple[Dict[Hashable, float], Dict[Hashable, Optional[Hashable]]]:
    """Single-source shortest weighted paths.

    Returns ``(dist, parent)`` where ``dist[v]`` is the weighted distance
    ``wd(source, v)`` as a ``float`` and ``parent[v]`` is the predecessor of
    ``v`` on a shortest path from ``source`` (``None`` for the source
    itself).  Nodes unreachable from ``source`` are omitted from both dicts
    (the sparse-dict contract shared by every distance function in this
    module); all distance values are ``float`` so results from the different
    distance functions compare and serialise consistently.

    ``weight_fn(u, v, w)`` may be supplied to reinterpret edge weights (used
    by the rounding machinery of Section 3).
    """
    dist: Dict[Hashable, float] = {source: 0.0}
    parent: Dict[Hashable, Optional[Hashable]] = {source: None}
    heap: List[Tuple[float, Hashable]] = [(0.0, source)]
    settled = set()
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        for v, w in graph.neighbor_weights(u).items():
            edge_w = w if weight_fn is None else weight_fn(u, v, w)
            nd = d + float(edge_w)
            if nd < dist.get(v, INFINITY):
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))
    return dist, parent


def dijkstra_with_hops(graph: WeightedGraph, source: Hashable
                       ) -> Tuple[Dict[Hashable, float], Dict[Hashable, int]]:
    """Weighted distances together with minimum hop counts among shortest paths.

    Returns ``(dist, hops)`` where ``hops[v]`` is the minimum number of hops
    over all shortest weighted paths from ``source`` to ``v`` (the quantity
    ``h_{source,v}`` of Section 2.2).  The search orders nodes
    lexicographically by ``(distance, hops)``.  Distances are ``float``;
    unreachable nodes are omitted (see :func:`dijkstra`).
    """
    dist: Dict[Hashable, float] = {source: 0.0}
    hops: Dict[Hashable, int] = {source: 0}
    heap: List[Tuple[float, int, Hashable]] = [(0.0, 0, source)]
    settled = set()
    while heap:
        d, hop, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        for v, w in graph.neighbor_weights(u).items():
            nd = d + float(w)
            nh = hop + 1
            if nd < dist.get(v, INFINITY) or (
                    nd == dist.get(v, INFINITY) and nh < hops.get(v, float("inf"))):
                dist[v] = nd
                hops[v] = nh
                heapq.heappush(heap, (nd, nh, v))
    return dist, hops


def all_pairs_weighted_distances(graph: WeightedGraph
                                 ) -> Dict[Hashable, Dict[Hashable, float]]:
    """Exact all-pairs weighted distances (ground truth for stretch audits)."""
    return {v: dijkstra(graph, v)[0] for v in graph.nodes()}


def bfs_hop_distances(graph: WeightedGraph, source: Hashable) -> Dict[Hashable, int]:
    """Hop distances (unweighted BFS distances) from ``source``."""
    dist = {source: 0}
    frontier = [source]
    level = 0
    while frontier:
        level += 1
        next_frontier = []
        for u in frontier:
            for v in graph.neighbors(u):
                if v not in dist:
                    dist[v] = level
                    next_frontier.append(v)
        frontier = next_frontier
    return dist


def all_pairs_hop_distances(graph: WeightedGraph) -> Dict[Hashable, Dict[Hashable, int]]:
    """Hop distances between all pairs of nodes."""
    return {v: bfs_hop_distances(graph, v) for v in graph.nodes()}


def hop_diameter(graph: WeightedGraph) -> int:
    """The hop diameter ``D`` of the graph (max hop distance over all pairs).

    Raises :class:`ValueError` for disconnected graphs, matching the paper's
    assumption of a connected network.
    """
    diameter = 0
    n = graph.num_nodes
    for v in graph.nodes():
        dist = bfs_hop_distances(graph, v)
        if len(dist) != n:
            raise ValueError("hop_diameter requires a connected graph")
        diameter = max(diameter, max(dist.values()))
    return diameter


def weighted_diameter(graph: WeightedGraph) -> float:
    """The weighted diameter ``WD`` of the graph."""
    diameter = 0.0
    n = graph.num_nodes
    for v in graph.nodes():
        dist, _ = dijkstra(graph, v)
        if len(dist) != n:
            raise ValueError("weighted_diameter requires a connected graph")
        diameter = max(diameter, max(dist.values()))
    return diameter


def shortest_path_diameter(graph: WeightedGraph) -> int:
    """The shortest path diameter ``SPD``.

    ``SPD`` is the maximum, over all pairs ``(v, w)``, of the minimum hop
    length of a shortest *weighted* path between ``v`` and ``w``.
    """
    spd = 0
    n = graph.num_nodes
    for v in graph.nodes():
        _, hops = dijkstra_with_hops(graph, v)
        if len(hops) != n:
            raise ValueError("shortest_path_diameter requires a connected graph")
        spd = max(spd, max(hops.values()))
    return spd


def h_hop_distances(graph: WeightedGraph, source: Hashable, h: int
                    ) -> Dict[Hashable, float]:
    """``h``-hop distances from ``source``.

    ``wd_h(source, v)`` is the minimum weight over all ``source``-``v`` paths
    with at most ``h`` hops.  Nodes admitting no such path (conceptually at
    distance ``wd_h = infinity``) are *omitted* from the returned dict — the
    sparse-dict contract shared by every distance function in this module;
    use ``dist.get(v, INFINITY)`` to recover the total function.  All values
    are ``float``.  Computed with ``h`` rounds of Bellman–Ford relaxation,
    which mirrors exactly what an ``h``-round distributed relaxation can
    learn.
    """
    if h < 0:
        raise ValueError("h must be non-negative")
    dist = {source: 0.0}
    frontier = {source}
    for _ in range(h):
        updates: Dict[Hashable, float] = {}
        for u in frontier:
            du = dist[u]
            for v, w in graph.neighbor_weights(u).items():
                nd = du + float(w)
                if nd < dist.get(v, INFINITY) and nd < updates.get(v, INFINITY):
                    updates[v] = nd
        if not updates:
            break
        frontier = set()
        for v, nd in updates.items():
            if nd < dist.get(v, INFINITY):
                dist[v] = nd
                frontier.add(v)
        if not frontier:
            break
    return dist


def h_hop_distances_from_sources(graph: WeightedGraph, sources: Iterable[Hashable],
                                 h: int) -> Dict[Hashable, Dict[Hashable, float]]:
    """``h``-hop distances from every node to every source.

    Returns ``result[v][s] = wd_h(v, s)`` including only finite entries.
    """
    result: Dict[Hashable, Dict[Hashable, float]] = {v: {} for v in graph.nodes()}
    for s in sources:
        dist = h_hop_distances(graph, s, h)
        for v, d in dist.items():
            result[v][s] = d
    return result


def path_weight(graph: WeightedGraph, path: List[Hashable]) -> float:
    """Total weight of a path given as a node sequence."""
    return sum(graph.weight(path[i], path[i + 1]) for i in range(len(path) - 1))


def path_hops(path: List[Hashable]) -> int:
    """Hop length of a path given as a node sequence."""
    return max(0, len(path) - 1)


def reconstruct_path(parent: Dict[Hashable, Optional[Hashable]],
                     target: Hashable) -> List[Hashable]:
    """Reconstruct a root-to-target path from a parent map produced by Dijkstra."""
    if target not in parent:
        raise ValueError(f"target {target!r} unreachable")
    path = [target]
    while parent[path[-1]] is not None:
        path.append(parent[path[-1]])
    path.reverse()
    return path
