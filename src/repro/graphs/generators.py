"""Seeded graph and weight generators for experiments and tests.

The paper's algorithms are evaluated on weighted undirected graphs where the
interplay between *hop* distance and *weighted* distance matters (this is the
whole point of partial distance estimation).  The generators here therefore
offer several weighting strategies, in particular a "mixed-scale" strategy
that produces shortest weighted paths that are many hops long — the hard case
motivating the rounding technique of Section 3.

All generators are deterministic given a seed.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from .weighted_graph import WeightedGraph

__all__ = [
    "WeightStrategy",
    "unit_weights",
    "uniform_weights",
    "heavy_tailed_weights",
    "mixed_scale_weights",
    "path_graph",
    "cycle_graph",
    "grid_graph",
    "road_grid_graph",
    "powerlaw_graph",
    "fat_tree_graph",
    "complete_graph",
    "star_graph",
    "random_tree",
    "erdos_renyi_graph",
    "barabasi_albert_graph",
    "random_geometric_graph",
    "caterpillar_graph",
    "make_connected",
    "standard_test_suite",
]

# A weight strategy maps (u, v, rng) to a positive integer weight.
WeightStrategy = Callable[[Hashable, Hashable, random.Random], int]


# ----------------------------------------------------------------------
# weight strategies
# ----------------------------------------------------------------------
def unit_weights() -> WeightStrategy:
    """All edges get weight 1 (unweighted graph)."""
    return lambda u, v, rng: 1


def uniform_weights(low: int = 1, high: int = 100) -> WeightStrategy:
    """Weights drawn uniformly from ``[low, high]``."""
    if low < 1 or high < low:
        raise ValueError("need 1 <= low <= high")
    return lambda u, v, rng: rng.randint(low, high)


def heavy_tailed_weights(max_weight: int = 10 ** 6, alpha: float = 1.5) -> WeightStrategy:
    """Pareto-like heavy-tailed integer weights in ``[1, max_weight]``.

    Produces a few very heavy edges, which makes rounded weight levels
    (Section 3) genuinely distinct.
    """
    if max_weight < 1:
        raise ValueError("max_weight must be >= 1")

    def strategy(u, v, rng: random.Random) -> int:
        raw = rng.paretovariate(alpha)
        return max(1, min(max_weight, int(raw)))

    return strategy


def mixed_scale_weights(light: int = 1, heavy: int = 10 ** 4,
                        heavy_fraction: float = 0.2) -> WeightStrategy:
    """A fraction of edges is heavy, the rest light.

    This produces graphs where the minimum-hop path and the minimum-weight
    path differ drastically: shortest weighted paths thread through many
    light edges, which is exactly the regime where exact weighted source
    detection degrades to ``Ω(n)`` rounds and PDE shines.
    """

    def strategy(u, v, rng: random.Random) -> int:
        if rng.random() < heavy_fraction:
            return heavy
        return light

    return strategy


# ----------------------------------------------------------------------
# topology generators
# ----------------------------------------------------------------------
def _apply_weights(edges: Iterable[Tuple[Hashable, Hashable]],
                   nodes: Sequence[Hashable],
                   weights: Optional[WeightStrategy],
                   rng: random.Random) -> WeightedGraph:
    strategy = weights if weights is not None else unit_weights()
    graph = WeightedGraph()
    for node in nodes:
        graph.add_node(node)
    for u, v in edges:
        if u == v or graph.has_edge(u, v):
            continue
        graph.add_edge(u, v, strategy(u, v, rng))
    return graph


def path_graph(n: int, weights: Optional[WeightStrategy] = None,
               seed: int = 0) -> WeightedGraph:
    """Path on ``n`` nodes ``0 - 1 - ... - (n-1)``."""
    rng = random.Random(seed)
    edges = [(i, i + 1) for i in range(n - 1)]
    return _apply_weights(edges, range(n), weights, rng)


def cycle_graph(n: int, weights: Optional[WeightStrategy] = None,
                seed: int = 0) -> WeightedGraph:
    """Cycle on ``n`` nodes."""
    if n < 3:
        raise ValueError("cycle_graph requires n >= 3")
    rng = random.Random(seed)
    edges = [(i, (i + 1) % n) for i in range(n)]
    return _apply_weights(edges, range(n), weights, rng)


def grid_graph(rows: int, cols: int, weights: Optional[WeightStrategy] = None,
               seed: int = 0) -> WeightedGraph:
    """``rows x cols`` grid; node ``(r, c)`` is numbered ``r * cols + c``."""
    rng = random.Random(seed)
    edges = []
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                edges.append((node, node + 1))
            if r + 1 < rows:
                edges.append((node, node + cols))
    return _apply_weights(edges, range(rows * cols), weights, rng)


def road_grid_graph(rows: int, cols: int, highway_every: int = 4,
                    highway_weight: int = 1, street_low: int = 5,
                    street_high: int = 12, shortcut_fraction: float = 0.02,
                    seed: int = 0) -> WeightedGraph:
    """Road-network-like grid: fast highway corridors over slow streets.

    A ``rows x cols`` grid (node ``(r, c)`` numbered ``r * cols + c``,
    like :func:`grid_graph`) whose edge weights mimic a road hierarchy:

    * every ``highway_every``-th row and column is a *highway corridor* —
      edges along it cost ``highway_weight``;
    * all other edges are *local streets* with weights drawn uniformly
      from ``[street_low, street_high]``;
    * a ``shortcut_fraction`` of nodes additionally gets one random
      diagonal shortcut (a bridge/tunnel) to a node two steps away,
      weighted like a street.

    The result has the signature structure of road networks that makes
    them a distinct serving workload from ER/BA graphs: low degree,
    large weighted diameter, and shortest weighted paths that detour
    many hops along corridors instead of going metrically straight —
    exactly the hop-vs-weight tension partial distance estimation is
    about.  Deterministic given ``seed``.
    """
    if rows < 2 or cols < 2:
        raise ValueError(f"road_grid_graph needs rows, cols >= 2, "
                         f"got {rows}x{cols}")
    if highway_every < 2:
        raise ValueError(f"highway_every must be >= 2, got {highway_every}")
    if not 1 <= highway_weight:
        raise ValueError(f"highway_weight must be >= 1, "
                         f"got {highway_weight}")
    if not 1 <= street_low <= street_high:
        raise ValueError(f"need 1 <= street_low <= street_high, "
                         f"got {street_low}..{street_high}")
    if not 0.0 <= shortcut_fraction <= 1.0:
        raise ValueError(f"shortcut_fraction must be in [0, 1], "
                         f"got {shortcut_fraction}")
    rng = random.Random(seed)
    graph = WeightedGraph()
    for node in range(rows * cols):
        graph.add_node(node)

    def street_weight() -> int:
        return rng.randint(street_low, street_high)

    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                # Horizontal edge rides row r: a highway iff the row is a
                # corridor.
                weight = (highway_weight if r % highway_every == 0
                          else street_weight())
                graph.add_edge(node, node + 1, weight)
            if r + 1 < rows:
                weight = (highway_weight if c % highway_every == 0
                          else street_weight())
                graph.add_edge(node, node + cols, weight)
    if shortcut_fraction > 0.0:
        for r in range(rows - 2):
            for c in range(cols - 2):
                if rng.random() < shortcut_fraction:
                    node = r * cols + c
                    target = (r + 2) * cols + (c + 2)
                    if not graph.has_edge(node, target):
                        graph.add_edge(node, target, street_weight())
    return graph


def powerlaw_graph(n: int, exponent: float = 2.5, min_degree: int = 1,
                   weights: Optional[WeightStrategy] = None, seed: int = 0,
                   connect: bool = True) -> WeightedGraph:
    """Random graph with a power-law degree sequence (configuration model).

    Degrees are drawn from a continuous Pareto tail ``P(k) ~ k^-exponent``
    truncated to ``[min_degree, n-1]`` (inverse-transform sampling), then
    realised by stub matching: each node contributes ``degree`` stubs, the
    shuffled stub list is paired off, and self-loops / duplicate edges are
    dropped.  The result has the heavy-tailed degree distribution of web /
    social / AS-level graphs — a few massive hubs over a sea of low-degree
    nodes — which stresses serving very differently from ER graphs: hub
    sources dominate Zipf-style query streams, so per-shard load is skewed
    by construction.  Deterministic given ``seed``; ``connect`` patches
    disconnected leftovers like :func:`erdos_renyi_graph` does.
    """
    if n < 3:
        raise ValueError(f"powerlaw_graph needs n >= 3, got {n}")
    if exponent <= 1.0:
        raise ValueError(f"exponent must be > 1 (the tail must be "
                         f"normalisable), got {exponent}")
    if not 1 <= min_degree < n:
        raise ValueError(f"need 1 <= min_degree < n, got {min_degree}")
    rng = random.Random(seed)
    max_degree = n - 1
    degrees = []
    for _ in range(n):
        raw = min_degree * (1.0 - rng.random()) ** (-1.0 / (exponent - 1.0))
        degrees.append(max(min_degree, min(max_degree, int(raw))))
    if sum(degrees) % 2:
        degrees[0] += 1 if degrees[0] < max_degree else -1
    stubs = [node for node, degree in enumerate(degrees)
             for _ in range(degree)]
    rng.shuffle(stubs)
    edges = list(zip(stubs[0::2], stubs[1::2]))
    graph = _apply_weights(edges, range(n), weights, rng)
    if connect:
        graph = make_connected(graph, weights, rng)
    return graph


def fat_tree_graph(k: int = 4, hosts_per_edge: Optional[int] = None,
                   core_weight: int = 1, aggregation_weight: int = 2,
                   host_weight: int = 10, seed: int = 0) -> WeightedGraph:
    """k-ary fat-tree datacenter topology (Clos network).

    The standard three-tier fabric: ``(k/2)^2`` core switches, ``k`` pods
    of ``k/2`` aggregation + ``k/2`` edge switches each, and
    ``hosts_per_edge`` hosts under every edge switch (default ``k/2``, the
    canonical oversubscription-free fill).  Core switch ``a*(k/2)+c``
    connects to aggregation switch ``a`` of every pod, every aggregation
    switch connects to every edge switch in its pod, and edge switches
    connect their hosts.  Node names are strings (``"core3"``,
    ``"pod1-agg0"``, ``"pod1-edge1-host2"``) so traces stay readable.

    Each link tier has one weight knob, faster higher in the fabric:
    core↔aggregation links cost ``core_weight``, aggregation↔edge links
    ``aggregation_weight``, edge↔host links ``host_weight`` — so shortest
    weighted paths between pods climb to the core the way datacenter
    routing does.  Like the ``road:`` family, the topology owns its
    weights.  Every parameter is structural, so the graph is fully
    deterministic — ``seed`` is accepted for generator-interface
    uniformity but unused.
    """
    if k < 2 or k % 2:
        raise ValueError(f"fat_tree_graph needs an even k >= 2, got {k}")
    half = k // 2
    if hosts_per_edge is None:
        hosts_per_edge = half
    if hosts_per_edge < 0:
        raise ValueError(f"hosts_per_edge must be >= 0, "
                         f"got {hosts_per_edge}")
    for name, value in (("core_weight", core_weight),
                        ("aggregation_weight", aggregation_weight),
                        ("host_weight", host_weight)):
        if value < 1:
            raise ValueError(f"{name} must be >= 1, got {value}")
    graph = WeightedGraph()
    cores = [f"core{i}" for i in range(half * half)]
    for core in cores:
        graph.add_node(core)
    for pod in range(k):
        aggs = [f"pod{pod}-agg{a}" for a in range(half)]
        edges = [f"pod{pod}-edge{e}" for e in range(half)]
        for switch in aggs + edges:
            graph.add_node(switch)
        for a, agg in enumerate(aggs):
            for c in range(half):
                graph.add_edge(cores[a * half + c], agg, core_weight)
            for edge in edges:
                graph.add_edge(agg, edge, aggregation_weight)
        for e, edge in enumerate(edges):
            for h in range(hosts_per_edge):
                host = f"pod{pod}-edge{e}-host{h}"
                graph.add_node(host)
                graph.add_edge(edge, host, host_weight)
    return graph


def complete_graph(n: int, weights: Optional[WeightStrategy] = None,
                   seed: int = 0) -> WeightedGraph:
    """Complete graph on ``n`` nodes (the Congested Clique topology)."""
    rng = random.Random(seed)
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return _apply_weights(edges, range(n), weights, rng)


def star_graph(n: int, weights: Optional[WeightStrategy] = None,
               seed: int = 0) -> WeightedGraph:
    """Star with centre ``0`` and leaves ``1..n-1``."""
    rng = random.Random(seed)
    edges = [(0, i) for i in range(1, n)]
    return _apply_weights(edges, range(n), weights, rng)


def random_tree(n: int, weights: Optional[WeightStrategy] = None,
                seed: int = 0) -> WeightedGraph:
    """Uniform random recursive tree on ``n`` nodes."""
    rng = random.Random(seed)
    edges = [(i, rng.randrange(i)) for i in range(1, n)]
    return _apply_weights(edges, range(n), weights, rng)


def caterpillar_graph(spine: int, legs: int,
                      weights: Optional[WeightStrategy] = None,
                      seed: int = 0) -> WeightedGraph:
    """A spine path with ``legs`` leaves attached to every spine node."""
    rng = random.Random(seed)
    edges = [(i, i + 1) for i in range(spine - 1)]
    next_id = spine
    nodes = list(range(spine))
    for i in range(spine):
        for _ in range(legs):
            edges.append((i, next_id))
            nodes.append(next_id)
            next_id += 1
    return _apply_weights(edges, nodes, weights, rng)


def erdos_renyi_graph(n: int, p: float, weights: Optional[WeightStrategy] = None,
                      seed: int = 0, connect: bool = True) -> WeightedGraph:
    """Erdős–Rényi ``G(n, p)`` graph, optionally patched to be connected."""
    rng = random.Random(seed)
    edges = [(i, j) for i in range(n) for j in range(i + 1, n) if rng.random() < p]
    graph = _apply_weights(edges, range(n), weights, rng)
    if connect:
        graph = make_connected(graph, weights, rng)
    return graph


def barabasi_albert_graph(n: int, m: int, weights: Optional[WeightStrategy] = None,
                          seed: int = 0) -> WeightedGraph:
    """Barabási–Albert preferential-attachment graph with ``m`` edges per new node."""
    if m < 1 or n < m + 1:
        raise ValueError("need 1 <= m < n")
    rng = random.Random(seed)
    edges: List[Tuple[int, int]] = []
    targets = list(range(m))
    repeated: List[int] = list(range(m))
    for new in range(m, n):
        chosen = set()
        while len(chosen) < m:
            chosen.add(rng.choice(repeated) if repeated else rng.randrange(new))
        for t in chosen:
            edges.append((new, t))
            repeated.append(new)
            repeated.append(t)
        targets.append(new)
    return _apply_weights(edges, range(n), weights, rng)


def random_geometric_graph(n: int, radius: float,
                           weights: Optional[WeightStrategy] = None,
                           seed: int = 0, connect: bool = True) -> WeightedGraph:
    """Random geometric graph on the unit square.

    If ``weights`` is ``None``, edge weights are the (scaled, integer)
    Euclidean distances, giving a natural "latency" interpretation.
    """
    rng = random.Random(seed)
    points = [(rng.random(), rng.random()) for _ in range(n)]
    edges = []
    geo_weights: Dict[Tuple[int, int], int] = {}
    for i in range(n):
        for j in range(i + 1, n):
            dx = points[i][0] - points[j][0]
            dy = points[i][1] - points[j][1]
            dist = math.hypot(dx, dy)
            if dist <= radius:
                edges.append((i, j))
                geo_weights[(i, j)] = max(1, int(dist * 1000))
    if weights is None:
        def strategy(u, v, _rng):
            key = (u, v) if (u, v) in geo_weights else (v, u)
            return geo_weights.get(key, 1)
        weights = strategy
    graph = _apply_weights(edges, range(n), weights, rng)
    if connect:
        graph = make_connected(graph, weights, rng)
    return graph


def make_connected(graph: WeightedGraph,
                   weights: Optional[WeightStrategy] = None,
                   rng: Optional[random.Random] = None) -> WeightedGraph:
    """Return a connected copy by linking consecutive components with one edge."""
    rng = rng if rng is not None else random.Random(0)
    strategy = weights if weights is not None else unit_weights()
    components = graph.connected_components()
    if len(components) <= 1:
        return graph
    result = graph.copy()
    for first, second in zip(components, components[1:]):
        u = first[0]
        v = second[0]
        result.add_edge(u, v, strategy(u, v, rng))
    return result


def standard_test_suite(seed: int = 0) -> Dict[str, WeightedGraph]:
    """A small zoo of graphs used by integration tests and benchmarks."""
    return {
        "path_unit": path_graph(20, unit_weights(), seed),
        "path_heavy": path_graph(20, uniform_weights(1, 1000), seed),
        "cycle": cycle_graph(24, uniform_weights(1, 50), seed),
        "grid": grid_graph(5, 6, uniform_weights(1, 20), seed),
        "tree": random_tree(30, uniform_weights(1, 100), seed),
        "er_sparse": erdos_renyi_graph(40, 0.1, uniform_weights(1, 100), seed),
        "er_dense": erdos_renyi_graph(30, 0.3, mixed_scale_weights(), seed),
        "ba": barabasi_albert_graph(35, 2, heavy_tailed_weights(10 ** 4), seed),
        "geometric": random_geometric_graph(35, 0.35, None, seed),
        "clique_mixed": complete_graph(15, mixed_scale_weights(1, 10 ** 4, 0.5), seed),
    }
