"""Reproducible query-workload generators for serving benchmarks.

A routing service is only as interesting as the traffic it faces.  Real
query streams are not uniform: a few endpoints are very hot (Zipf's law) and
many queries are local (users talk to nearby services).  This module
generates ``(source, target)`` query streams with those shapes, all
deterministic given a seed, so benchmarks and tests exercise the cache and
batching layers under realistic skew:

* :func:`uniform_workload` — every ordered pair equally likely (the
  cache-hostile baseline);
* :func:`zipf_workload` — endpoint popularity follows a Zipf distribution
  with exponent ``skew``; the same few pairs dominate the stream;
* :func:`locality_workload` — sources are uniform but targets are drawn
  from the source's hop-neighbourhood with probability ``bias``.

Only the Python standard library is used (``random.Random.choices`` with
explicit Zipf weights — no numpy/scipy dependency).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from ..graphs.distances import bfs_hop_distances
from ..graphs.weighted_graph import WeightedGraph

__all__ = [
    "QueryWorkload",
    "uniform_workload",
    "zipf_workload",
    "locality_workload",
    "WORKLOAD_NAMES",
    "make_workload",
]


@dataclass
class QueryWorkload:
    """A named stream of ``(source, target)`` queries plus its parameters."""

    name: str
    pairs: List[Tuple[Hashable, Hashable]]
    params: Dict[str, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self):
        return iter(self.pairs)

    def distinct_pairs(self) -> int:
        return len(set(self.pairs))

    def skew_summary(self) -> Dict[str, float]:
        """How repetitive the stream is (drives expected cache hit rates)."""
        total = len(self.pairs)
        distinct = self.distinct_pairs()
        counts: Dict[Tuple[Hashable, Hashable], int] = {}
        for pair in self.pairs:
            counts[pair] = counts.get(pair, 0) + 1
        top = max(counts.values(), default=0)
        return {
            "queries": total,
            "distinct_pairs": distinct,
            "repeat_rate": 1.0 - distinct / total if total else 0.0,
            "hottest_pair_share": top / total if total else 0.0,
        }


def _other_than(node: Hashable, nodes: Sequence[Hashable],
                rng: random.Random) -> Hashable:
    """A uniform node different from ``node`` (assumes ``len(nodes) >= 2``)."""
    while True:
        candidate = nodes[rng.randrange(len(nodes))]
        if candidate != node:
            return candidate


def uniform_workload(nodes: Sequence[Hashable], num_queries: int,
                     seed: int = 0) -> QueryWorkload:
    """``num_queries`` ordered pairs drawn uniformly (source != target)."""
    nodes = list(nodes)
    if len(nodes) < 2:
        raise ValueError("uniform_workload needs at least 2 nodes")
    rng = random.Random(seed)
    pairs = []
    for _ in range(num_queries):
        s = nodes[rng.randrange(len(nodes))]
        pairs.append((s, _other_than(s, nodes, rng)))
    return QueryWorkload(name="uniform", pairs=pairs,
                         params={"seed": seed, "nodes": len(nodes)})


def zipf_workload(nodes: Sequence[Hashable], num_queries: int,
                  skew: float = 1.2, seed: int = 0) -> QueryWorkload:
    """Endpoint popularity follows ``P(rank r) ∝ 1 / r^skew``.

    Sources and targets get *independent* popularity rankings (a hot content
    server is not necessarily a hot client), both derived from the seed, so
    the hottest (source, target) pairs repeat many times — the regime where
    a result cache and hot-pair precomputation pay off.
    """
    nodes = list(nodes)
    if len(nodes) < 2:
        raise ValueError("zipf_workload needs at least 2 nodes")
    if skew <= 0:
        raise ValueError("skew must be positive")
    rng = random.Random(seed)
    source_ranking = list(nodes)
    rng.shuffle(source_ranking)
    target_ranking = list(nodes)
    rng.shuffle(target_ranking)
    weights = [1.0 / (rank + 1) ** skew for rank in range(len(nodes))]
    sources = rng.choices(source_ranking, weights=weights, k=num_queries)
    targets = rng.choices(target_ranking, weights=weights, k=num_queries)
    pairs = []
    for s, t in zip(sources, targets):
        if s == t:
            t = _other_than(s, nodes, rng)
        pairs.append((s, t))
    return QueryWorkload(name="zipf", pairs=pairs,
                         params={"seed": seed, "skew": skew, "nodes": len(nodes)})


def locality_workload(graph: WeightedGraph, num_queries: int,
                      hop_radius: int = 2, bias: float = 0.8,
                      seed: int = 0) -> QueryWorkload:
    """Sources uniform; targets near the source with probability ``bias``.

    "Near" means within ``hop_radius`` hops (BFS balls are computed lazily
    and cached per source).  With probability ``1 - bias`` — or when the
    ball contains no other node — the target is uniform instead.
    """
    nodes = list(graph.nodes())
    if len(nodes) < 2:
        raise ValueError("locality_workload needs at least 2 nodes")
    if not 0.0 <= bias <= 1.0:
        raise ValueError("bias must be in [0, 1]")
    if hop_radius < 1:
        raise ValueError("hop_radius must be >= 1")
    rng = random.Random(seed)
    balls: Dict[Hashable, List[Hashable]] = {}
    pairs = []
    for _ in range(num_queries):
        s = nodes[rng.randrange(len(nodes))]
        t: Optional[Hashable] = None
        if rng.random() < bias:
            ball = balls.get(s)
            if ball is None:
                hop = bfs_hop_distances(graph, s)
                ball = [v for v, d in hop.items() if 0 < d <= hop_radius]
                balls[s] = ball
            if ball:
                t = ball[rng.randrange(len(ball))]
        if t is None:
            t = _other_than(s, nodes, rng)
        pairs.append((s, t))
    return QueryWorkload(name="locality", pairs=pairs,
                         params={"seed": seed, "hop_radius": hop_radius,
                                 "bias": bias, "nodes": len(nodes)})


WORKLOAD_NAMES = ("uniform", "zipf", "locality")


def make_workload(name: str, graph: WeightedGraph, num_queries: int,
                  seed: int = 0, **params) -> QueryWorkload:
    """Dispatch by shape name (the registry behind ``repro-serve --workload``)."""
    if name == "uniform":
        return uniform_workload(graph.nodes(), num_queries, seed=seed, **params)
    if name == "zipf":
        return zipf_workload(graph.nodes(), num_queries, seed=seed, **params)
    if name == "locality":
        return locality_workload(graph, num_queries, seed=seed, **params)
    raise ValueError(f"unknown workload {name!r}; "
                     f"available: {', '.join(WORKLOAD_NAMES)}")
