"""Reproducible query-workload generators for serving benchmarks.

A routing service is only as interesting as the traffic it faces.  Real
query streams are not uniform: a few endpoints are very hot (Zipf's law) and
many queries are local (users talk to nearby services).  This module
generates ``(source, target)`` query streams with those shapes, all
deterministic given a seed, so benchmarks and tests exercise the cache and
batching layers under realistic skew:

* :func:`uniform_workload` — every ordered pair equally likely (the
  cache-hostile baseline);
* :func:`zipf_workload` — endpoint popularity follows a Zipf distribution
  with exponent ``skew``; the same few pairs dominate the stream;
* :func:`locality_workload` — sources are uniform but targets are drawn
  from the source's hop-neighbourhood with probability ``bias``;
* :func:`bursty_workload` — temporally correlated traffic: burst phases
  (a pair suddenly dominates for a stretch of queries) and diurnal drift
  (the popular endpoints rotate cyclically over the stream) on top of a
  Zipf base skew — the stream cache-eviction policies must be compared on.

Every generator is registered by name in the workload registry
(:data:`~repro.serving.registry.WORKLOADS`); :func:`make_workload`
dispatches through it, so ``repro-serve --workload <name>`` and
:class:`~repro.serving.config.WorkloadConfig` pick up custom registered
shapes automatically.

Only the Python standard library is used (explicit Zipf weights sampled via
``bisect`` over the cumulative distribution — no numpy/scipy dependency).
"""

from __future__ import annotations

import bisect
import itertools
import random
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from ..graphs.distances import bfs_hop_distances
from ..graphs.weighted_graph import WeightedGraph
from .registry import WORKLOADS, get_workload, register_workload

__all__ = [
    "QueryWorkload",
    "uniform_workload",
    "zipf_workload",
    "locality_workload",
    "bursty_workload",
    "WORKLOAD_NAMES",
    "workload_names",
    "make_workload",
    "PARTITION_STRATEGIES",
    "partition_pairs",
    "stable_node_hash",
]


@dataclass
class QueryWorkload:
    """A named stream of ``(source, target)`` queries plus its parameters.

    Most workloads are an unshaped stream: the driver chunks ``pairs`` by
    its own batch size and issues every batch with one query kind.
    Replayed traces carry their *recorded* shape instead: when
    ``batch_sizes`` (and optionally per-batch ``batch_kinds``) are set,
    :meth:`iter_batches` yields exactly those batches, so a recorded
    session replays batch-for-batch rather than being re-chunked.
    """

    name: str
    pairs: List[Tuple[Hashable, Hashable]]
    params: Dict[str, object] = field(default_factory=dict)
    #: Recorded batch shaping (trace replay); ``None`` = driver chooses.
    batch_sizes: Optional[List[int]] = None
    #: Per-batch query kinds, parallel to ``batch_sizes``.
    batch_kinds: Optional[List[str]] = None

    def __post_init__(self) -> None:
        if self.batch_sizes is not None:
            if sum(self.batch_sizes) != len(self.pairs):
                raise ValueError(
                    f"batch_sizes sum to {sum(self.batch_sizes)} but the "
                    f"workload holds {len(self.pairs)} pairs")
            if (self.batch_kinds is not None
                    and len(self.batch_kinds) != len(self.batch_sizes)):
                raise ValueError(
                    f"{len(self.batch_kinds)} batch_kinds for "
                    f"{len(self.batch_sizes)} batches")
        elif self.batch_kinds is not None:
            raise ValueError("batch_kinds requires batch_sizes")

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self):
        return iter(self.pairs)

    def iter_batches(self, default_batch_size: int, default_kind: str):
        """Yield ``(kind, pairs)`` batches, honouring any recorded shape."""
        if self.batch_sizes is None:
            for start in range(0, len(self.pairs), default_batch_size):
                yield default_kind, self.pairs[start:start + default_batch_size]
            return
        kinds = self.batch_kinds or [default_kind] * len(self.batch_sizes)
        cursor = 0
        for size, kind in zip(self.batch_sizes, kinds):
            yield kind, self.pairs[cursor:cursor + size]
            cursor += size

    def distinct_pairs(self) -> int:
        return len(set(self.pairs))

    def skew_summary(self) -> Dict[str, float]:
        """How repetitive the stream is (drives expected cache hit rates)."""
        total = len(self.pairs)
        distinct = self.distinct_pairs()
        counts: Dict[Tuple[Hashable, Hashable], int] = {}
        for pair in self.pairs:
            counts[pair] = counts.get(pair, 0) + 1
        top = max(counts.values(), default=0)
        return {
            "queries": total,
            "distinct_pairs": distinct,
            "repeat_rate": 1.0 - distinct / total if total else 0.0,
            "hottest_pair_share": top / total if total else 0.0,
        }


def _other_than(node: Hashable, nodes: Sequence[Hashable],
                rng: random.Random) -> Hashable:
    """A uniform node different from ``node`` (assumes ``len(nodes) >= 2``)."""
    while True:
        candidate = nodes[rng.randrange(len(nodes))]
        if candidate != node:
            return candidate


def uniform_workload(nodes: Sequence[Hashable], num_queries: int,
                     seed: int = 0) -> QueryWorkload:
    """``num_queries`` ordered pairs drawn uniformly (source != target)."""
    nodes = list(nodes)
    if len(nodes) < 2:
        raise ValueError("uniform_workload needs at least 2 nodes")
    rng = random.Random(seed)
    pairs = []
    for _ in range(num_queries):
        s = nodes[rng.randrange(len(nodes))]
        pairs.append((s, _other_than(s, nodes, rng)))
    return QueryWorkload(name="uniform", pairs=pairs,
                         params={"seed": seed, "nodes": len(nodes)})


def zipf_workload(nodes: Sequence[Hashable], num_queries: int,
                  skew: float = 1.2, seed: int = 0) -> QueryWorkload:
    """Endpoint popularity follows ``P(rank r) ∝ 1 / r^skew``.

    Sources and targets get *independent* popularity rankings (a hot content
    server is not necessarily a hot client), both derived from the seed, so
    the hottest (source, target) pairs repeat many times — the regime where
    a result cache and hot-pair precomputation pay off.
    """
    nodes = list(nodes)
    if len(nodes) < 2:
        raise ValueError("zipf_workload needs at least 2 nodes")
    if skew <= 0:
        raise ValueError("skew must be positive")
    rng = random.Random(seed)
    source_ranking = list(nodes)
    rng.shuffle(source_ranking)
    target_ranking = list(nodes)
    rng.shuffle(target_ranking)
    weights = [1.0 / (rank + 1) ** skew for rank in range(len(nodes))]
    sources = rng.choices(source_ranking, weights=weights, k=num_queries)
    targets = rng.choices(target_ranking, weights=weights, k=num_queries)
    pairs = []
    for s, t in zip(sources, targets):
        # Collisions concentrate on the hottest ranks, so the replacement must
        # keep the Zipf shape: redraw from the target weights (conditioned on
        # t != s), never uniformly — a uniform fallback would dilute the skew
        # exactly where the stream is supposed to be most repetitive.
        while t == s:
            t = rng.choices(target_ranking, weights=weights, k=1)[0]
        pairs.append((s, t))
    return QueryWorkload(name="zipf", pairs=pairs,
                         params={"seed": seed, "skew": skew, "nodes": len(nodes)})


def locality_workload(graph: WeightedGraph, num_queries: int,
                      hop_radius: int = 2, bias: float = 0.8,
                      seed: int = 0) -> QueryWorkload:
    """Sources uniform; targets near the source with probability ``bias``.

    "Near" means within ``hop_radius`` hops (BFS balls are computed lazily
    and cached per source).  With probability ``1 - bias`` — or when the
    ball contains no other node — the target is uniform instead.
    """
    nodes = list(graph.nodes())
    if len(nodes) < 2:
        raise ValueError("locality_workload needs at least 2 nodes")
    if not 0.0 <= bias <= 1.0:
        raise ValueError("bias must be in [0, 1]")
    if hop_radius < 1:
        raise ValueError("hop_radius must be >= 1")
    rng = random.Random(seed)
    balls: Dict[Hashable, List[Hashable]] = {}
    pairs = []
    for _ in range(num_queries):
        s = nodes[rng.randrange(len(nodes))]
        t: Optional[Hashable] = None
        if rng.random() < bias:
            ball = balls.get(s)
            if ball is None:
                hop = bfs_hop_distances(graph, s)
                ball = [v for v, d in hop.items() if 0 < d <= hop_radius]
                balls[s] = ball
            if ball:
                t = ball[rng.randrange(len(ball))]
        if t is None:
            t = _other_than(s, nodes, rng)
        pairs.append((s, t))
    return QueryWorkload(name="locality", pairs=pairs,
                         params={"seed": seed, "hop_radius": hop_radius,
                                 "bias": bias, "nodes": len(nodes)})


def _zipf_sampler(num_ranks: int, skew: float, rng: random.Random
                  ) -> Callable[[], int]:
    """An ``O(log n)``-per-draw sampler of Zipf ranks ``0..num_ranks-1``."""
    weights = [1.0 / (rank + 1) ** skew for rank in range(num_ranks)]
    cumulative = list(itertools.accumulate(weights))
    total = cumulative[-1]

    def draw() -> int:
        return bisect.bisect_left(cumulative, rng.random() * total)

    return draw


def bursty_workload(nodes: Sequence[Hashable], num_queries: int,
                    skew: float = 1.2, burst_rate: float = 0.02,
                    burst_length: int = 40, burst_intensity: float = 0.8,
                    drift_period: int = 500, seed: int = 0) -> QueryWorkload:
    """Temporally correlated traffic: bursts and diurnal drift over Zipf.

    The base stream draws endpoints Zipf-distributed (exponent ``skew``)
    like :func:`zipf_workload`, with two temporal effects layered on top:

    * **Diurnal drift** — the popularity *rankings* rotate cyclically, one
      full rotation every ``drift_period`` queries, so which endpoints are
      hot changes gradually and comes back around (think day/night traffic
      moving across regions).  A cache tuned to a static hot set decays as
      the hot set walks away from it.
    * **Bursts** — after any organically drawn query, with probability
      ``burst_rate``, that query's pair becomes a *burst pair*: for the
      next ``burst_length`` queries each query repeats the burst pair with
      probability ``burst_intensity`` (otherwise it is drawn organically).
      Bursts are the regime online hot-set promotion exists for — a pair
      whose hit count explodes now, whatever its long-run rank.

    Deterministic given the seed, like every generator in this module.
    """
    nodes = list(nodes)
    if len(nodes) < 2:
        raise ValueError("bursty_workload needs at least 2 nodes")
    if skew <= 0:
        raise ValueError("skew must be positive")
    if not 0.0 <= burst_rate <= 1.0:
        raise ValueError("burst_rate must be in [0, 1]")
    if burst_length < 1:
        raise ValueError("burst_length must be >= 1")
    if not 0.0 <= burst_intensity <= 1.0:
        raise ValueError("burst_intensity must be in [0, 1]")
    if drift_period < 1:
        raise ValueError("drift_period must be >= 1")
    rng = random.Random(seed)
    n = len(nodes)
    source_ranking = list(nodes)
    rng.shuffle(source_ranking)
    target_ranking = list(nodes)
    rng.shuffle(target_ranking)
    draw_rank = _zipf_sampler(n, skew, rng)

    pairs: List[Tuple[Hashable, Hashable]] = []
    burst_pair: Optional[Tuple[Hashable, Hashable]] = None
    burst_remaining = 0
    for index in range(num_queries):
        # Diurnal phase: rotate both rankings by the same cyclic offset, so
        # rank r maps to position (r + offset) % n.  One full cycle per
        # drift_period queries.
        offset = ((index % drift_period) * n) // drift_period
        if burst_remaining > 0:
            burst_remaining -= 1
            if rng.random() < burst_intensity:
                pairs.append(burst_pair)
                continue
        s = source_ranking[(draw_rank() + offset) % n]
        t = target_ranking[(draw_rank() + offset) % n]
        while t == s:
            # Redraw from the Zipf weights (conditioned on t != s), exactly
            # as zipf_workload does — a uniform fallback would dilute the
            # skew on the hottest ranks.
            t = target_ranking[(draw_rank() + offset) % n]
        pair = (s, t)
        pairs.append(pair)
        if burst_remaining == 0 and rng.random() < burst_rate:
            burst_pair = pair
            burst_remaining = burst_length
    return QueryWorkload(name="bursty", pairs=pairs,
                         params={"seed": seed, "skew": skew,
                                 "burst_rate": burst_rate,
                                 "burst_length": burst_length,
                                 "burst_intensity": burst_intensity,
                                 "drift_period": drift_period,
                                 "nodes": len(nodes)})


# ----------------------------------------------------------------------
# workload registry
# ----------------------------------------------------------------------
register_workload(
    "uniform",
    lambda graph, num_queries, seed=0, **params:
        uniform_workload(graph.nodes(), num_queries, seed=seed, **params))
register_workload(
    "zipf",
    lambda graph, num_queries, seed=0, **params:
        zipf_workload(graph.nodes(), num_queries, seed=seed, **params))
register_workload(
    "locality",
    lambda graph, num_queries, seed=0, **params:
        locality_workload(graph, num_queries, seed=seed, **params))
register_workload(
    "bursty",
    lambda graph, num_queries, seed=0, **params:
        bursty_workload(graph.nodes(), num_queries, seed=seed, **params))


@register_workload("trace")
def _trace_workload(graph: WeightedGraph, num_queries: int, seed: int = 0,
                    trace_path: Optional[str] = None) -> QueryWorkload:
    """Replay a recorded serving session (``repro-serve --trace-out``).

    The trace fully determines the stream — pairs, kinds, and batch
    boundaries — so ``num_queries`` and ``seed`` are intentionally
    ignored (the recorded session *is* the workload).  Every recorded
    node must exist in the graph being served, otherwise the trace
    belongs to a different graph and replay would be meaningless.
    """
    if not trace_path:
        raise ValueError("the trace workload requires trace_path= "
                         "(repro-serve --trace-path FILE)")
    # Call-time import keeps repro.obs a dependency leaf of this package.
    from ..obs.trace import load_trace

    trace = load_trace(trace_path)
    known = set(graph.nodes())
    for s, t in trace.pairs():
        if s not in known or t not in known:
            raise ValueError(
                f"trace {trace_path!r} references node(s) {(s, t)!r} "
                f"absent from the served graph — recorded against a "
                f"different graph?")
    return trace.to_workload()


def workload_names() -> Tuple[str, ...]:
    """Currently registered workload names (includes custom registrations)."""
    return WORKLOADS.names()


#: The built-in *generator* shapes, snapshotted at import time: every name
#: here produces ``num_queries`` pairs from a seed alone.  The ``trace``
#: workload is registered but deliberately excluded — it replays a
#: recorded session (requires ``trace_path=``), so generator contracts
#: (determinism from seed, length == num_queries) don't apply to it.  Use
#: :func:`workload_names` for the full registry, including shapes
#: registered later.
WORKLOAD_NAMES = tuple(name for name in workload_names()
                       if name != "trace")

PARTITION_STRATEGIES = ("round_robin", "hash_pair", "hash_source")


def _stable_pair_hash(pair: Tuple[Hashable, Hashable]) -> int:
    """Deterministic across processes and runs (``hash()`` is salted)."""
    return zlib.crc32(repr(pair).encode("utf-8"))


def stable_node_hash(node: Hashable) -> int:
    """Deterministic per-node hash (processes and runs agree).

    This is the shard-ownership function shared by the ``hash_source``
    partitioner and per-shard sub-artifact slicing
    (:func:`~repro.serving.artifacts.write_shard_artifacts`): both must
    assign a node to the same shard, or a worker would be handed queries
    whose source rows its artifact slice does not hold.
    """
    return zlib.crc32(repr(node).encode("utf-8"))


def partition_pairs(pairs: Sequence[Tuple[Hashable, Hashable]],
                    num_shards: int, strategy: str = "round_robin",
                    ) -> List[List[Tuple[int, Tuple[Hashable, Hashable]]]]:
    """Deterministically split a query stream across ``num_shards`` shards.

    Returns ``num_shards`` lists of ``(original_index, pair)``; within each
    shard the original stream order is preserved, and the indices let the
    caller reassemble answers in input order after a scatter/gather.

    * ``"round_robin"`` — query ``i`` goes to shard ``i % num_shards``;
      balances load exactly regardless of content.
    * ``"hash_pair"`` — shard by a stable hash of the pair, so *every*
      occurrence of a hot pair lands on the same shard and warms exactly one
      shard's result cache instead of smearing its repeats across all of
      them.  Requires node ids with a deterministic ``repr`` (ints, strings).
    * ``"hash_source"`` — shard by a stable hash of the *source* node, so a
      shard only ever answers queries originating at its own sources — the
      assignment per-shard sub-artifacts slice their bunch tables by.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    shards: List[List[Tuple[int, Tuple[Hashable, Hashable]]]] = \
        [[] for _ in range(num_shards)]
    if strategy == "round_robin":
        for index, pair in enumerate(pairs):
            shards[index % num_shards].append((index, pair))
    elif strategy == "hash_pair":
        for index, pair in enumerate(pairs):
            shards[_stable_pair_hash(pair) % num_shards].append((index, pair))
    elif strategy == "hash_source":
        for index, pair in enumerate(pairs):
            shards[stable_node_hash(pair[0]) % num_shards].append((index, pair))
    else:
        raise ValueError(f"unknown partition strategy {strategy!r}; "
                         f"available: {', '.join(PARTITION_STRATEGIES)}")
    return shards


def make_workload(name: str, graph: WeightedGraph, num_queries: int,
                  seed: int = 0, **params) -> QueryWorkload:
    """Dispatch by shape name through the workload registry.

    Custom shapes added with
    :func:`~repro.serving.registry.register_workload` are picked up here
    (and therefore by ``repro-serve --workload`` and
    :class:`~repro.serving.config.WorkloadConfig`) without any other wiring.
    """
    return get_workload(name)(graph, num_queries, seed=seed, **params)
