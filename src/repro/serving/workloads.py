"""Reproducible query-workload generators for serving benchmarks.

A routing service is only as interesting as the traffic it faces.  Real
query streams are not uniform: a few endpoints are very hot (Zipf's law) and
many queries are local (users talk to nearby services).  This module
generates ``(source, target)`` query streams with those shapes, all
deterministic given a seed, so benchmarks and tests exercise the cache and
batching layers under realistic skew:

* :func:`uniform_workload` — every ordered pair equally likely (the
  cache-hostile baseline);
* :func:`zipf_workload` — endpoint popularity follows a Zipf distribution
  with exponent ``skew``; the same few pairs dominate the stream;
* :func:`locality_workload` — sources are uniform but targets are drawn
  from the source's hop-neighbourhood with probability ``bias``.

Only the Python standard library is used (``random.Random.choices`` with
explicit Zipf weights — no numpy/scipy dependency).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from ..graphs.distances import bfs_hop_distances
from ..graphs.weighted_graph import WeightedGraph

__all__ = [
    "QueryWorkload",
    "uniform_workload",
    "zipf_workload",
    "locality_workload",
    "WORKLOAD_NAMES",
    "make_workload",
    "PARTITION_STRATEGIES",
    "partition_pairs",
]


@dataclass
class QueryWorkload:
    """A named stream of ``(source, target)`` queries plus its parameters."""

    name: str
    pairs: List[Tuple[Hashable, Hashable]]
    params: Dict[str, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self):
        return iter(self.pairs)

    def distinct_pairs(self) -> int:
        return len(set(self.pairs))

    def skew_summary(self) -> Dict[str, float]:
        """How repetitive the stream is (drives expected cache hit rates)."""
        total = len(self.pairs)
        distinct = self.distinct_pairs()
        counts: Dict[Tuple[Hashable, Hashable], int] = {}
        for pair in self.pairs:
            counts[pair] = counts.get(pair, 0) + 1
        top = max(counts.values(), default=0)
        return {
            "queries": total,
            "distinct_pairs": distinct,
            "repeat_rate": 1.0 - distinct / total if total else 0.0,
            "hottest_pair_share": top / total if total else 0.0,
        }


def _other_than(node: Hashable, nodes: Sequence[Hashable],
                rng: random.Random) -> Hashable:
    """A uniform node different from ``node`` (assumes ``len(nodes) >= 2``)."""
    while True:
        candidate = nodes[rng.randrange(len(nodes))]
        if candidate != node:
            return candidate


def uniform_workload(nodes: Sequence[Hashable], num_queries: int,
                     seed: int = 0) -> QueryWorkload:
    """``num_queries`` ordered pairs drawn uniformly (source != target)."""
    nodes = list(nodes)
    if len(nodes) < 2:
        raise ValueError("uniform_workload needs at least 2 nodes")
    rng = random.Random(seed)
    pairs = []
    for _ in range(num_queries):
        s = nodes[rng.randrange(len(nodes))]
        pairs.append((s, _other_than(s, nodes, rng)))
    return QueryWorkload(name="uniform", pairs=pairs,
                         params={"seed": seed, "nodes": len(nodes)})


def zipf_workload(nodes: Sequence[Hashable], num_queries: int,
                  skew: float = 1.2, seed: int = 0) -> QueryWorkload:
    """Endpoint popularity follows ``P(rank r) ∝ 1 / r^skew``.

    Sources and targets get *independent* popularity rankings (a hot content
    server is not necessarily a hot client), both derived from the seed, so
    the hottest (source, target) pairs repeat many times — the regime where
    a result cache and hot-pair precomputation pay off.
    """
    nodes = list(nodes)
    if len(nodes) < 2:
        raise ValueError("zipf_workload needs at least 2 nodes")
    if skew <= 0:
        raise ValueError("skew must be positive")
    rng = random.Random(seed)
    source_ranking = list(nodes)
    rng.shuffle(source_ranking)
    target_ranking = list(nodes)
    rng.shuffle(target_ranking)
    weights = [1.0 / (rank + 1) ** skew for rank in range(len(nodes))]
    sources = rng.choices(source_ranking, weights=weights, k=num_queries)
    targets = rng.choices(target_ranking, weights=weights, k=num_queries)
    pairs = []
    for s, t in zip(sources, targets):
        # Collisions concentrate on the hottest ranks, so the replacement must
        # keep the Zipf shape: redraw from the target weights (conditioned on
        # t != s), never uniformly — a uniform fallback would dilute the skew
        # exactly where the stream is supposed to be most repetitive.
        while t == s:
            t = rng.choices(target_ranking, weights=weights, k=1)[0]
        pairs.append((s, t))
    return QueryWorkload(name="zipf", pairs=pairs,
                         params={"seed": seed, "skew": skew, "nodes": len(nodes)})


def locality_workload(graph: WeightedGraph, num_queries: int,
                      hop_radius: int = 2, bias: float = 0.8,
                      seed: int = 0) -> QueryWorkload:
    """Sources uniform; targets near the source with probability ``bias``.

    "Near" means within ``hop_radius`` hops (BFS balls are computed lazily
    and cached per source).  With probability ``1 - bias`` — or when the
    ball contains no other node — the target is uniform instead.
    """
    nodes = list(graph.nodes())
    if len(nodes) < 2:
        raise ValueError("locality_workload needs at least 2 nodes")
    if not 0.0 <= bias <= 1.0:
        raise ValueError("bias must be in [0, 1]")
    if hop_radius < 1:
        raise ValueError("hop_radius must be >= 1")
    rng = random.Random(seed)
    balls: Dict[Hashable, List[Hashable]] = {}
    pairs = []
    for _ in range(num_queries):
        s = nodes[rng.randrange(len(nodes))]
        t: Optional[Hashable] = None
        if rng.random() < bias:
            ball = balls.get(s)
            if ball is None:
                hop = bfs_hop_distances(graph, s)
                ball = [v for v, d in hop.items() if 0 < d <= hop_radius]
                balls[s] = ball
            if ball:
                t = ball[rng.randrange(len(ball))]
        if t is None:
            t = _other_than(s, nodes, rng)
        pairs.append((s, t))
    return QueryWorkload(name="locality", pairs=pairs,
                         params={"seed": seed, "hop_radius": hop_radius,
                                 "bias": bias, "nodes": len(nodes)})


WORKLOAD_NAMES = ("uniform", "zipf", "locality")

PARTITION_STRATEGIES = ("round_robin", "hash_pair")


def _stable_pair_hash(pair: Tuple[Hashable, Hashable]) -> int:
    """Deterministic across processes and runs (``hash()`` is salted)."""
    return zlib.crc32(repr(pair).encode("utf-8"))


def partition_pairs(pairs: Sequence[Tuple[Hashable, Hashable]],
                    num_shards: int, strategy: str = "round_robin",
                    ) -> List[List[Tuple[int, Tuple[Hashable, Hashable]]]]:
    """Deterministically split a query stream across ``num_shards`` shards.

    Returns ``num_shards`` lists of ``(original_index, pair)``; within each
    shard the original stream order is preserved, and the indices let the
    caller reassemble answers in input order after a scatter/gather.

    * ``"round_robin"`` — query ``i`` goes to shard ``i % num_shards``;
      balances load exactly regardless of content.
    * ``"hash_pair"`` — shard by a stable hash of the pair, so *every*
      occurrence of a hot pair lands on the same shard and warms exactly one
      shard's result cache instead of smearing its repeats across all of
      them.  Requires node ids with a deterministic ``repr`` (ints, strings).
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    shards: List[List[Tuple[int, Tuple[Hashable, Hashable]]]] = \
        [[] for _ in range(num_shards)]
    if strategy == "round_robin":
        for index, pair in enumerate(pairs):
            shards[index % num_shards].append((index, pair))
    elif strategy == "hash_pair":
        for index, pair in enumerate(pairs):
            shards[_stable_pair_hash(pair) % num_shards].append((index, pair))
    else:
        raise ValueError(f"unknown partition strategy {strategy!r}; "
                         f"available: {', '.join(PARTITION_STRATEGIES)}")
    return shards


def make_workload(name: str, graph: WeightedGraph, num_queries: int,
                  seed: int = 0, **params) -> QueryWorkload:
    """Dispatch by shape name (the registry behind ``repro-serve --workload``)."""
    if name == "uniform":
        return uniform_workload(graph.nodes(), num_queries, seed=seed, **params)
    if name == "zipf":
        return zipf_workload(graph.nodes(), num_queries, seed=seed, **params)
    if name == "locality":
        return locality_workload(graph, num_queries, seed=seed, **params)
    raise ValueError(f"unknown workload {name!r}; "
                     f"available: {', '.join(WORKLOAD_NAMES)}")
