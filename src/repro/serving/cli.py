"""``repro-serve`` — build an artifact from a generator spec and serve a workload.

The console entry point wired in ``setup.py``.  Typical session::

    repro-serve --graph er:n=300,p=0.03,seed=1 --artifact /tmp/er300.artifact \\
                --k 3 --workload zipf --queries 2000 --batch-size 64

builds (or loads, if the artifact already exists) a compact-routing
hierarchy, replays the requested query workload against the service in
batches, and prints throughput plus the :class:`ServingStats` counters.
With ``--workers N`` (N > 1, requires ``--artifact``) the stream is served
through a :class:`~repro.serving.sharded.ShardedRoutingService` instead:
N worker processes each load the artifact and answer their partition of
every batch, and the printed stats are the merged per-worker counters.

Graph specs are ``name:key=value,key=value`` with an optional
``weights=...`` key (``unit``, ``uniform:LO:HI``, ``mixed``, ``heavy``)::

    er:n=200,p=0.05,seed=3,weights=uniform:1:100
    grid:rows=10,cols=12          ba:n=150,m=2
    geometric:n=120,radius=0.18   tree:n=100        path:n=64
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, Optional

from .. import graphs
from ..graphs.weighted_graph import WeightedGraph
from .service import RoutingService, answer_batch
from .sharded import ShardedRoutingService
from .workloads import PARTITION_STRATEGIES, WORKLOAD_NAMES, make_workload

__all__ = ["parse_graph_spec", "main"]


def _parse_weights(spec: Optional[str]):
    if spec is None or spec == "unit":
        return graphs.unit_weights()
    if spec.startswith("uniform"):
        parts = spec.split(":")
        low = int(parts[1]) if len(parts) > 1 else 1
        high = int(parts[2]) if len(parts) > 2 else 100
        return graphs.uniform_weights(low, high)
    if spec == "mixed":
        return graphs.mixed_scale_weights()
    if spec == "heavy":
        return graphs.heavy_tailed_weights()
    raise ValueError(f"unknown weight spec {spec!r}")


def parse_graph_spec(spec: str) -> WeightedGraph:
    """Build a graph from a ``name:key=value,...`` spec string."""
    name, _, arg_text = spec.partition(":")
    params: Dict[str, str] = {}
    if arg_text:
        for item in arg_text.split(","):
            key, eq, value = item.partition("=")
            if not eq:
                raise ValueError(f"malformed graph spec item {item!r} in {spec!r}")
            params[key.strip()] = value.strip()

    weights = _parse_weights(params.pop("weights", None)) \
        if "weights" in params else None
    seed = int(params.pop("seed", 0))

    def want(key: str, cast, default=None):
        if key in params:
            return cast(params.pop(key))
        if default is None:
            raise ValueError(f"graph spec {spec!r} is missing {key!r}")
        return default

    if name == "er":
        graph = graphs.erdos_renyi_graph(want("n", int), want("p", float),
                                         weights, seed=seed)
    elif name == "grid":
        graph = graphs.grid_graph(want("rows", int), want("cols", int),
                                  weights, seed=seed)
    elif name == "ba":
        graph = graphs.barabasi_albert_graph(want("n", int), want("m", int, 2),
                                             weights, seed=seed)
    elif name == "geometric":
        graph = graphs.random_geometric_graph(want("n", int),
                                              want("radius", float),
                                              weights, seed=seed)
    elif name == "tree":
        graph = graphs.random_tree(want("n", int), weights, seed=seed)
    elif name == "path":
        graph = graphs.path_graph(want("n", int), weights, seed=seed)
    else:
        raise ValueError(f"unknown graph family {name!r} in spec {spec!r}")
    if params:
        raise ValueError(f"unused graph spec keys {sorted(params)} in {spec!r}")
    return graph


def _chunks(items, size):
    for start in range(0, len(items), size):
        yield items[start:start + size]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Build or load a compact-routing artifact and run a "
                    "query workload against it.")
    parser.add_argument("--graph", help="generator spec, e.g. er:n=300,p=0.03")
    parser.add_argument("--artifact", help="artifact path to build-or-load; "
                        "omitted = build in memory only")
    parser.add_argument("--k", type=int, default=3)
    parser.add_argument("--epsilon", type=float, default=0.25)
    parser.add_argument("--mode", default="auto",
                        choices=["auto", "budget", "spd", "truncated"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--engine", default="batched")
    parser.add_argument("--workload", default="zipf", choices=list(WORKLOAD_NAMES))
    parser.add_argument("--queries", type=int, default=1000)
    parser.add_argument("--skew", type=float, default=None,
                        help="Zipf exponent (zipf workload only; default 1.2)")
    parser.add_argument("--hop-radius", type=int, default=None,
                        help="locality ball radius in hops "
                             "(locality workload only; default 2)")
    parser.add_argument("--bias", type=float, default=None,
                        help="probability a target is drawn from the source's "
                             "ball (locality workload only; default 0.8)")
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--cache-size", type=int, default=4096,
                        help="LRU result-cache capacity (per worker when "
                             "sharded)")
    parser.add_argument("--kind", default="route", choices=["route", "distance"])
    parser.add_argument("--hot", type=int, default=0,
                        help="precompute the N most frequent workload pairs")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes; >1 serves through a sharded "
                             "front-end (requires --artifact)")
    parser.add_argument("--partitioner", default="round_robin",
                        choices=list(PARTITION_STRATEGIES),
                        help="shard partition strategy (--workers > 1 only)")
    parser.add_argument("--json", action="store_true",
                        help="emit the result record as JSON on stdout")
    args = parser.parse_args(argv)

    if args.graph is None and args.artifact is None:
        parser.error("provide --graph, --artifact, or both")

    # Workload parameters are validated here instead of silently ignored:
    # a flag that does not apply to the chosen shape is an error.
    workload_params: Dict[str, object] = {}
    if args.skew is not None:
        if args.workload != "zipf":
            parser.error(f"--skew applies to the zipf workload only "
                         f"(got --workload {args.workload})")
        workload_params["skew"] = args.skew
    if args.hop_radius is not None:
        if args.workload != "locality":
            parser.error(f"--hop-radius applies to the locality workload only "
                         f"(got --workload {args.workload})")
        workload_params["hop_radius"] = args.hop_radius
    if args.bias is not None:
        if args.workload != "locality":
            parser.error(f"--bias applies to the locality workload only "
                         f"(got --workload {args.workload})")
        workload_params["bias"] = args.bias

    if args.workers < 1:
        parser.error("--workers must be >= 1")
    sharded = args.workers > 1
    if sharded and args.artifact is None:
        parser.error("--workers > 1 requires --artifact "
                     "(workers load the hierarchy by path)")
    if sharded and args.hot > 0:
        parser.error("--hot applies to single-process serving only "
                     "(shard workers own their caches)")

    graph = parse_graph_spec(args.graph) if args.graph else None
    if sharded:
        service = ShardedRoutingService.build_or_load(
            args.artifact, graph=graph, k=args.k, epsilon=args.epsilon,
            seed=args.seed, mode=args.mode, engine=args.engine,
            num_workers=args.workers, partitioner=args.partitioner,
            cache_size=args.cache_size)
        workload_graph = service.graph
    elif args.artifact:
        service = RoutingService.build_or_load(
            args.artifact, graph=graph, k=args.k, epsilon=args.epsilon,
            seed=args.seed, mode=args.mode, engine=args.engine,
            cache_size=args.cache_size)
        workload_graph = service.hierarchy.graph
    else:
        service = RoutingService.build(
            graph, k=args.k, epsilon=args.epsilon, seed=args.seed,
            mode=args.mode, engine=args.engine, cache_size=args.cache_size)
        workload_graph = service.hierarchy.graph

    workload = make_workload(args.workload, workload_graph,
                             args.queries, seed=args.seed, **workload_params)

    if args.hot > 0:
        counts: Dict[tuple, int] = {}
        for pair in workload.pairs:
            counts[pair] = counts.get(pair, 0) + 1
        hottest = sorted(counts, key=lambda p: (-counts[p], repr(p)))[:args.hot]
        service.precompute_hot_pairs(hottest, kind=args.kind)

    if sharded:
        # Spawn + warm the workers outside the timed window, so the reported
        # throughput is serving cost, not one-time process start-up.
        service.start()
    start = time.perf_counter()
    delivered = 0
    for chunk in _chunks(workload.pairs, max(1, args.batch_size)):
        results = answer_batch(service, args.kind, chunk)
        if args.kind == "route":
            delivered += sum(1 for trace in results if trace.delivered)
        else:
            delivered += sum(1 for est in results if est != float("inf"))
    elapsed = time.perf_counter() - start
    qps = len(workload) / elapsed if elapsed > 0 else float("inf")

    stats = service.merged_stats() if sharded else service.stats
    if sharded:
        service.close()
    record = {
        "workload": workload.name,
        "kind": args.kind,
        "queries": len(workload),
        "delivered": delivered,
        "seconds": round(elapsed, 4),
        "queries_per_second": round(qps, 1),
        **workload.skew_summary(),
        **stats.as_dict(),
    }
    if args.json:
        json.dump(record, sys.stdout, indent=2, default=str)
        print()
    else:
        print(f"served {len(workload)} {args.kind} queries "
              f"({workload.name} workload"
              + (f", {args.workers} workers" if sharded else "")
              + f") in {elapsed:.3f}s -> {qps:,.0f} q/s, "
              f"{delivered} delivered")
        print(stats.describe())
    # Routes must always deliver (the hierarchy has an exact-path fallback);
    # distance estimates may legitimately be infinite for pairs the scheme's
    # bunches never cover, so they do not affect the exit code.
    return 0 if args.kind == "distance" or delivered == len(workload) else 1


if __name__ == "__main__":
    raise SystemExit(main())
