"""``repro-serve`` — build an artifact from a generator spec and serve a workload.

The console entry point wired in ``setup.py``.  Typical session::

    repro-serve --graph er:n=300,p=0.03,seed=1 --artifact /tmp/er300.artifact \\
                --k 3 --workload zipf --queries 2000 --batch-size 64

Every flag maps onto a field of the serving API v2 config family (see
:data:`FLAG_CONFIG_FIELDS`); the CLI is a thin shell around
``open_service(ServingConfig(...))``: it parses flags into a
:class:`~repro.serving.config.ServingConfig`, opens the backend the config
describes (local for ``--workers 1``, sharded above that), replays the
requested query workload in batches, and prints throughput plus the
:class:`~repro.serving.cache.ServingStats` counters.

Graph specs are ``name:key=value,key=value`` with an optional
``weights=...`` key (``unit``, ``uniform:LO:HI``, ``mixed``, ``heavy``) —
see :mod:`repro.serving.specs`.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, Optional, Tuple

from ..obs.metrics import Histogram
from ..obs.trace import TraceRecorder
from .backend import open_service
from .config import BuildConfig, CacheConfig, ServingConfig, WorkloadConfig
from .policies import ExplicitHotSet
from .registry import (
    CACHE_POLICIES,
    HOT_SET_POLICIES,
    PARTITIONERS,
    QUERY_KERNELS,
    WORKLOADS,
)
from .service import answer_batch
from .specs import parse_graph_spec
from .workloads import make_workload

__all__ = ["parse_graph_spec", "FLAG_CONFIG_FIELDS", "build_parser",
           "config_from_args", "run_serving_session", "advertised_config",
           "run_server_mode",
           "main"]

#: Which config field each ``repro-serve`` flag (by argparse dest) maps to.
#: Paths are dotted from :class:`ServingConfig`; ``workload.params.<key>``
#: lands in the workload's free-form params dict.  ``None`` marks flags
#: that deliberately configure no declarative field: ``--json`` is
#: presentation-only, and ``--hot`` *derives* an explicit hot set from the
#: generated workload at runtime (the pairs cannot be known before the
#: graph and stream exist), installing it on the opened backend instead of
#: baking pair lists into the config.  The CLI-parity test asserts this
#: mapping is total over the parser and that every named field exists.
FLAG_CONFIG_FIELDS: Dict[str, Optional[str]] = {
    "graph": "graph_spec",
    "artifact": "artifact_path",
    "k": "build.k",
    "epsilon": "build.epsilon",
    "mode": "build.mode",
    "seed": "build.seed",
    "engine": "build.engine",
    "workload": "workload.name",
    "queries": "workload.num_queries",
    "skew": "workload.params.skew",
    "hop_radius": "workload.params.hop_radius",
    "bias": "workload.params.bias",
    "burst_rate": "workload.params.burst_rate",
    "burst_length": "workload.params.burst_length",
    "burst_intensity": "workload.params.burst_intensity",
    "drift_period": "workload.params.drift_period",
    "batch_size": "batch_size",
    "kind": "kind",
    "kernel": "kernel",
    "cache_size": "cache.capacity",
    "cache_policy": "cache.policy",
    "pivot_cache_cap": "cache.pivot_cache_cap",
    "hot": None,        # derives cache.hot_pairs from the workload at runtime
    "hot_set": "cache.hot_set",
    "hot_threshold": "cache.hot_threshold",
    "hot_capacity": "cache.hot_capacity",
    "hot_decay_window": "cache.hot_decay_window",
    "hot_decay_threshold": "cache.hot_decay_threshold",
    "artifact_format": "build.artifact_format",
    "build_workers": "build.build_workers",
    "sub_artifacts": "sub_artifacts",
    "workers": "workers",
    "partitioner": "partitioner",
    "telemetry": "telemetry",
    "connect": "connect",
    "pipeline_depth": "pipeline_depth",
    "max_inflight": "max_inflight",
    "admission": "admission",
    "fleet": "fleet",
    "min_workers": "min_workers",
    "max_workers": "max_workers",
    "heartbeat_interval": "heartbeat_interval",
    "respawn_limit": "respawn_limit",
    "serve": None,      # runtime deployment mode: where to bind, not what
                        # to serve — every serving field stays declarative
    "trace_path": "workload.params.trace_path",
    "trace_out": None,  # runtime capture target, not serving behaviour
    "json": None,       # output format, not serving behaviour
}

#: Workload shapes each shape-specific flag applies to (anything else errors).
_WORKLOAD_FLAG_SHAPES = {
    "skew": ("zipf", "bursty"),
    "hop_radius": ("locality",),
    "bias": ("locality",),
    "burst_rate": ("bursty",),
    "burst_length": ("bursty",),
    "burst_intensity": ("bursty",),
    "drift_period": ("bursty",),
    "trace_path": ("trace",),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Build or load a compact-routing artifact and run a "
                    "query workload against it.")
    parser.add_argument("--graph", help="generator spec, e.g. er:n=300,p=0.03")
    parser.add_argument("--artifact", help="artifact path to build-or-load; "
                        "omitted = build in memory only")
    parser.add_argument("--k", type=int, default=3)
    parser.add_argument("--epsilon", type=float, default=0.25)
    parser.add_argument("--mode", default="auto",
                        choices=["auto", "budget", "spd", "truncated"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--engine", default="batched")
    parser.add_argument("--workload", default="zipf",
                        choices=list(WORKLOADS.names()))
    parser.add_argument("--queries", type=int, default=1000)
    parser.add_argument("--skew", type=float, default=None,
                        help="Zipf exponent (zipf/bursty workloads only; "
                             "default 1.2)")
    parser.add_argument("--hop-radius", type=int, default=None,
                        help="locality ball radius in hops "
                             "(locality workload only; default 2)")
    parser.add_argument("--bias", type=float, default=None,
                        help="probability a target is drawn from the source's "
                             "ball (locality workload only; default 0.8)")
    parser.add_argument("--burst-rate", type=float, default=None,
                        help="probability a query starts a burst "
                             "(bursty workload only; default 0.02)")
    parser.add_argument("--burst-length", type=int, default=None,
                        help="queries per burst phase "
                             "(bursty workload only; default 40)")
    parser.add_argument("--burst-intensity", type=float, default=None,
                        help="probability an in-burst query repeats the "
                             "burst pair (bursty workload only; default 0.8)")
    parser.add_argument("--drift-period", type=int, default=None,
                        help="queries per full rotation of the popularity "
                             "ranking (bursty workload only; default 500)")
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--cache-size", type=int, default=4096,
                        help="result-cache capacity (per worker when "
                             "sharded)")
    parser.add_argument("--cache-policy", default="lru",
                        choices=list(CACHE_POLICIES.names()),
                        help="result-cache policy (from the cache-policy "
                             "registry)")
    parser.add_argument("--kind", default="route", choices=["route", "distance"])
    parser.add_argument("--kernel", default="auto",
                        choices=list(QUERY_KERNELS.names()),
                        help="batch query kernel: 'columnar' answers batches "
                             "straight from the v2 record tables, 'dict' is "
                             "the per-pair path, 'auto' picks columnar "
                             "whenever the backing store supports it "
                             "(answers are identical either way)")
    parser.add_argument("--pivot-cache-cap", type=int, default=65536,
                        help="bound on the hierarchy's pivot-row LRU "
                             "(0 disables it)")
    parser.add_argument("--hot", type=int, default=0,
                        help="pin the N most frequent workload pairs up "
                             "front (explicit hot set; single-process only)")
    parser.add_argument("--hot-set", default="none",
                        choices=[name for name in HOT_SET_POLICIES.names()
                                 if name != "explicit"],
                        help="hot-set policy; 'online' promotes pairs whose "
                             "LRU hit counts cross --hot-threshold "
                             "(explicit pinning is spelled --hot N)")
    parser.add_argument("--hot-threshold", type=int, default=8,
                        help="LRU hit count that promotes a pair "
                             "(--hot-set online)")
    parser.add_argument("--hot-capacity", type=int, default=256,
                        help="max online promotions per query kind "
                             "(--hot-set online)")
    parser.add_argument("--hot-decay-window", type=int, default=0,
                        help="hit events per decay sweep; promoted pairs "
                             "whose windowed hot hits fall below "
                             "--hot-decay-threshold are unpinned "
                             "(--hot-set online; 0 disables decay)")
    parser.add_argument("--hot-decay-threshold", type=int, default=1,
                        help="windowed hot-hit count a promoted pair needs "
                             "to stay pinned (--hot-decay-window > 0)")
    parser.add_argument("--build-workers", type=int, default=1,
                        help="process-pool width for hierarchy construction "
                             "and sub-artifact slicing; the parallel build "
                             "is checksum-identical to the sequential one "
                             "(default 1 = sequential)")
    parser.add_argument("--artifact-format", type=int, default=2,
                        choices=[1, 2],
                        help="on-disk layout written on the build path: "
                             "2 = mmap-able section table (default), "
                             "1 = legacy monolithic pickle")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes; >1 serves through a sharded "
                             "front-end (requires --artifact)")
    parser.add_argument("--partitioner", default=None,
                        choices=list(PARTITIONERS.names()),
                        help="shard partition strategy (--workers > 1 only; "
                             "default round_robin, or hash_source when "
                             "--sub-artifacts is set)")
    parser.add_argument("--sub-artifacts", action="store_true",
                        help="slice the artifact into per-shard "
                             "sub-artifacts so each worker loads only its "
                             "partition's tables (--workers > 1, format-2 "
                             "artifact, source partitioning)")
    parser.add_argument("--telemetry", action="store_true",
                        help="enable the per-stage telemetry registry: span "
                             "histograms for artifact load, hierarchy build, "
                             "cache probes/fills, kernel batches and sharded "
                             "scatter/gather ride along in stats.extra"
                             "['telemetry'] (off by default: the null "
                             "registry costs nothing)")
    parser.add_argument("--serve", default=None, metavar="HOST:PORT",
                        help="serve the opened backend on a TCP endpoint "
                             "instead of replaying a workload; port 0 binds "
                             "an ephemeral port (printed on stdout). "
                             "Shut down gracefully with SIGINT/SIGTERM")
    parser.add_argument("--connect", default=None, metavar="HOST:PORT",
                        help="replay the workload against a running --serve "
                             "server instead of opening a backend "
                             "in-process (graph/artifact/cache flags then "
                             "belong to the server)")
    parser.add_argument("--pipeline-depth", type=int, default=8,
                        help="max batches in flight through the pipelined "
                             "scatter/gather (also the --connect client's "
                             "in-flight window)")
    parser.add_argument("--max-inflight", type=int, default=4,
                        help="max outstanding batches per shard worker "
                             "(--workers > 1)")
    parser.add_argument("--admission", default="block",
                        choices=["block", "reject"],
                        help="at the pipeline bounds: 'block' delays "
                             "submitters, 'reject' raises BackpressureError")
    parser.add_argument("--fleet", action="store_true",
                        help="supervise the shard workers as an elastic "
                             "fleet: dead workers are respawned while "
                             "siblings cover their partition, and the "
                             "worker count scales between --min-workers "
                             "and --max-workers on sustained queue depth "
                             "(--workers > 1; answers stay identical)")
    parser.add_argument("--min-workers", type=int, default=None,
                        help="fleet scale-down floor (--fleet; default 1)")
    parser.add_argument("--max-workers", type=int, default=None,
                        help="fleet scale-up ceiling (--fleet; default "
                             "--workers)")
    parser.add_argument("--heartbeat-interval", type=float, default=0.5,
                        help="fleet supervisor beat period in seconds "
                             "(--fleet): liveness checks, respawns and "
                             "scaling decisions happen on this cadence")
    parser.add_argument("--respawn-limit", type=int, default=3,
                        help="worker respawns tolerated before the fleet "
                             "degrades to a FleetError (--fleet)")
    parser.add_argument("--trace-path", default=None,
                        help="trace artifact to replay "
                             "(--workload trace only)")
    parser.add_argument("--trace-out", default=None,
                        help="capture the served query stream (pairs, kinds, "
                             "batch boundaries, arrival offsets) into a "
                             "trace artifact at PATH, replayable later with "
                             "--workload trace --trace-path PATH")
    parser.add_argument("--json", action="store_true",
                        help="emit the result record as JSON on stdout")
    return parser


def config_from_args(args: argparse.Namespace,
                     parser: argparse.ArgumentParser) -> ServingConfig:
    """Validate flags and assemble the :class:`ServingConfig` they describe."""
    if args.connect is not None:
        if args.serve is not None:
            parser.error("--serve and --connect are mutually exclusive "
                         "(one process is either the server or a client)")
        if args.graph is not None or args.artifact is not None:
            parser.error("--connect sessions take the graph and artifact "
                         "from the server; drop --graph/--artifact")
        if args.workers > 1:
            parser.error("--connect keeps --workers 1: the *server* owns "
                         "the deployment shape (start it with --workers N)")
        if args.sub_artifacts:
            parser.error("--sub-artifacts is a server-side flag; it does "
                         "not combine with --connect")
        if args.hot > 0:
            parser.error("--hot pins pairs into an in-process cache; it "
                         "does not combine with --connect")
    elif args.graph is None and args.artifact is None:
        parser.error("provide --graph, --artifact, or both")
    if args.serve is not None:
        if args.trace_out is not None:
            parser.error("--trace-out captures a replayed workload; a "
                         "--serve process replays none (capture on the "
                         "client instead)")
        if args.hot > 0:
            parser.error("--hot derives its pin set from a replayed "
                         "workload; a --serve process replays none")

    # Workload parameters are validated here instead of silently ignored:
    # a flag that does not apply to the chosen shape is an error.
    workload_params: Dict[str, object] = {}
    for dest, shapes in _WORKLOAD_FLAG_SHAPES.items():
        value = getattr(args, dest)
        if value is None:
            continue
        if args.workload not in shapes:
            flag = "--" + dest.replace("_", "-")
            parser.error(
                f"{flag} applies to the {'/'.join(shapes)} workload"
                f"{'s' if len(shapes) > 1 else ''} only "
                f"(got --workload {args.workload})")
        workload_params[dest] = value

    if args.workload == "trace" and args.trace_path is None:
        parser.error("--workload trace requires --trace-path FILE "
                     "(record one with --trace-out)")
    if args.workers < 1:
        parser.error("--workers must be >= 1")
    if args.workers > 1 and args.artifact is None:
        parser.error("--workers > 1 requires --artifact "
                     "(workers load the hierarchy by path)")
    if args.hot < 0:
        parser.error("--hot must be >= 0")
    if args.hot > 0 and args.workers > 1:
        parser.error("--hot applies to single-process serving only "
                     "(shard workers own their caches)")
    if args.hot > 0 and args.hot_set != "none":
        parser.error("--hot (explicit pinning) and --hot-set are mutually "
                     "exclusive")
    if args.hot_decay_window > 0 and args.hot_set != "online":
        parser.error("--hot-decay-window applies to --hot-set online only "
                     "(decay demotes online promotions)")

    if args.sub_artifacts:
        if args.workers <= 1:
            parser.error("--sub-artifacts requires --workers > 1 "
                         "(slicing exists to shrink per-worker tables)")
        if args.artifact_format != 2:
            parser.error("--sub-artifacts requires --artifact-format 2 "
                         "(slices are section subsets)")
        if args.partitioner not in (None, "hash_source"):
            parser.error("--sub-artifacts requires source partitioning "
                         "(--partitioner hash_source): workers only hold "
                         "their own sources' tables")
    if args.fleet:
        if args.workers <= 1:
            parser.error("--fleet requires --workers > 1 (siblings cover "
                         "a dead worker's partition)")
        if args.connect is not None:
            parser.error("--fleet is a deployment-side flag; it does not "
                         "combine with --connect")
        if args.partitioner not in (None, "hash_source"):
            parser.error("--fleet routes by source hash (the epoch table "
                         "must agree with sub-artifact slicing); use "
                         "--partitioner hash_source or omit it")
    elif args.min_workers is not None or args.max_workers is not None:
        parser.error("--min-workers/--max-workers apply with --fleet only")
    partitioner = args.partitioner
    if partitioner is None:
        partitioner = ("hash_source"
                       if args.sub_artifacts or args.fleet
                       else "round_robin")

    try:
        return ServingConfig(
            artifact_path=args.artifact,
            graph_spec=args.graph,
            workers=args.workers,
            partitioner=partitioner,
            sub_artifacts=args.sub_artifacts,
            batch_size=args.batch_size,
            kind=args.kind,
            kernel=args.kernel,
            telemetry=args.telemetry,
            connect=args.connect,
            pipeline_depth=args.pipeline_depth,
            max_inflight=args.max_inflight,
            admission=args.admission,
            fleet=args.fleet,
            min_workers=args.min_workers,
            max_workers=args.max_workers,
            heartbeat_interval=args.heartbeat_interval,
            respawn_limit=args.respawn_limit,
            build=BuildConfig(k=args.k, epsilon=args.epsilon, seed=args.seed,
                              mode=args.mode, engine=args.engine,
                              artifact_format=args.artifact_format,
                              build_workers=args.build_workers),
            cache=CacheConfig(policy=args.cache_policy,
                              capacity=args.cache_size,
                              hot_set=args.hot_set,
                              hot_kind=args.kind,
                              hot_threshold=args.hot_threshold,
                              hot_capacity=args.hot_capacity,
                              hot_decay_window=args.hot_decay_window,
                              hot_decay_threshold=args.hot_decay_threshold,
                              pivot_cache_cap=args.pivot_cache_cap),
            workload=WorkloadConfig(name=args.workload,
                                    num_queries=args.queries,
                                    params=workload_params),
        )
    except ValueError as exc:
        parser.error(str(exc))


def _round_ms(value: float) -> Optional[float]:
    """Seconds → milliseconds, ``None`` for NaN (JSON has no NaN)."""
    if value != value:
        return None
    return round(value * 1000.0, 3)


def _round_opt(value: Optional[float], digits: int = 4) -> Optional[float]:
    return None if value is None else round(value, digits)


def run_serving_session(config: ServingConfig, hot: int = 0,
                        trace_out: Optional[str] = None
                        ) -> Tuple[Dict, object, bool]:
    """Open the configured backend, replay its workload, return the record.

    The shared session engine behind ``repro-serve`` and the
    ``repro-experiment`` harness.  Returns ``(record, stats, ok)``:
    ``record`` is the JSON-ready result dict (the ``--json`` schema),
    ``stats`` the backend's final :class:`ServingStats` (for human-format
    ``describe()``), and ``ok`` says whether every *route* query was
    delivered — distance estimates may legitimately be infinite for pairs
    the scheme's bunches never cover, so they never count against ``ok``.

    Every session measures per-batch serving latency into a fixed-bucket
    :class:`~repro.obs.metrics.Histogram` (always on: one ``observe`` per
    batch is nothing next to the batch itself) and reports the
    build/load/warm/query stage split under ``stage_seconds``.  Hot-pair
    precompute (``hot > 0``) runs *before* the timed query window but is
    not dropped on the floor: the service accounts it in
    ``stats.warm_seconds``, surfaced as ``stage_seconds["warm"]``.  With
    ``trace_out`` the query stream is captured through a
    :class:`~repro.obs.trace.TraceRecorder` and saved as a replayable
    trace artifact once the session completes.
    """
    backend = open_service(config)
    if backend.graph is None:
        backend.close()
        raise ValueError(
            f"the backend exposes no graph to generate the "
            f"{config.workload.name!r} workload from — a --connect "
            f"session needs the server to advertise a graph spec (start "
            f"it with --graph, or from an artifact whose header records "
            f"the spec that built it)")
    workload = make_workload(config.workload.name, backend.graph,
                             config.workload.num_queries,
                             seed=config.workload_seed(),
                             **config.workload.params)

    if hot > 0:
        counts: Dict[tuple, int] = {}
        for pair in workload.pairs:
            counts[pair] = counts.get(pair, 0) + 1
        hottest = sorted(counts, key=lambda p: (-counts[p], repr(p)))[:hot]
        # hot > 0 implies workers == 1 (the CLI validates this), so the
        # backend is a local RoutingService and install_hot_set — a
        # local-service extra beyond the QueryBackend protocol — is
        # available.  The precompute time lands in stats.warm_seconds.
        backend.install_hot_set(ExplicitHotSet(pairs=hottest,
                                               kind=config.kind))

    recorder = TraceRecorder(backend) if trace_out else None
    target = recorder if recorder is not None else backend
    latency = Histogram()
    delivered = 0
    route_total = route_delivered = 0

    with backend:
        # For sharded backends, entering the context spawns and warms the
        # workers outside the timed window, so the reported throughput is
        # serving cost, not one-time process start-up.
        start = time.perf_counter()
        for batch_kind, chunk in workload.iter_batches(config.batch_size,
                                                       config.kind):
            batch_start = time.perf_counter()
            results = answer_batch(target, batch_kind, chunk)
            latency.observe(time.perf_counter() - batch_start)
            if batch_kind == "route":
                route_total += len(chunk)
                good = sum(1 for trace in results if trace.delivered)
                route_delivered += good
                delivered += good
            else:
                delivered += sum(1 for est in results if est != float("inf"))
        elapsed = time.perf_counter() - start
        stats = backend.query_stats()
        if recorder is not None:
            recorder.save(trace_out, meta={
                "workload": workload.name,
                "default_kind": config.kind,
                "batch_size": config.batch_size,
                "graph_spec": config.graph_spec,
            })
    qps = len(workload) / elapsed if elapsed > 0 else float("inf")

    record = {
        "workload": workload.name,
        "kind": config.kind,
        # The *resolved* kernel (what answered the batches), not just the
        # request; per-batch group stats ride along in extra.kernel_stats.
        "kernel": stats.extra.get("kernel_active", config.kernel),
        "queries": len(workload),
        "delivered": delivered,
        "seconds": round(elapsed, 4),
        "queries_per_second": round(qps, 1),
        "latency_ms": {
            "p50": _round_ms(latency.quantile(0.50)),
            "p95": _round_ms(latency.quantile(0.95)),
            "p99": _round_ms(latency.quantile(0.99)),
            "mean": _round_ms(latency.mean),
            "max": _round_ms(latency.max if latency.count
                             else float("nan")),
            "batches": latency.count,
        },
        "stage_seconds": {
            "build": _round_opt(stats.build_seconds),
            "load": _round_opt(stats.load_seconds),
            "warm": _round_opt(stats.warm_seconds),
            "query": round(elapsed, 4),
        },
        **workload.skew_summary(),
        **stats.as_dict(),
    }
    return record, stats, route_delivered == route_total


def advertised_config(config: ServingConfig) -> ServingConfig:
    """The config a server advertises in its ``welcome`` frames.

    A server started from ``--artifact`` alone still tells clients the
    graph spec (they need it to generate workloads locally): the artifact
    header stores the ``ServingConfig`` that built it, so the spec is
    recovered from there.  Only the advertisement changes — the config
    that opens the backend stays untouched, so an artifact-only load is
    not silently turned into a build-parameter-checked build-or-load.
    """
    if config.graph_spec is not None or config.artifact_path is None:
        return config
    import dataclasses

    from .artifacts import artifact_info
    built_by = artifact_info(config.artifact_path).metadata.get(
        "serving_config") or {}
    if not built_by.get("graph_spec"):
        return config
    return dataclasses.replace(config, graph_spec=built_by["graph_spec"])


def run_server_mode(config: ServingConfig, endpoint: str) -> int:
    """``--serve``: open the backend and serve it until SIGINT/SIGTERM.

    Prints one ``listening on HOST:PORT`` line (flushed, so wrappers that
    bind port 0 can scrape the real endpoint) and then blocks.  Shutdown
    is graceful: the server drains in-flight batches before the process
    exits, and the backend is closed cleanly (shard workers drain and
    report their final stats).
    """
    import os
    import signal
    import threading

    from .server import RoutingServer
    from .wire import PROTOCOL_VERSION

    advertised = advertised_config(config)
    backend = open_service(config)
    with backend:
        if hasattr(backend, "start"):
            # Warm shard workers before accepting the first client; a local
            # RoutingService is ready the moment it is built/loaded.
            backend.start()
        with RoutingServer(backend, endpoint, config=advertised,
                           telemetry=config.telemetry) as server:
            shutdown = threading.Event()

            def _request_shutdown(signum, frame):
                shutdown.set()

            signal.signal(signal.SIGTERM, _request_shutdown)
            signal.signal(signal.SIGINT, _request_shutdown)
            print(f"repro-serve listening on {server.address} "
                  f"(protocol v{PROTOCOL_VERSION}, pid {os.getpid()})",
                  flush=True)
            while not shutdown.is_set():
                shutdown.wait(0.2)
            server.close(drain=True)
            print(f"repro-serve on {server.address} shut down after "
                  f"{server.sessions_served} session(s)", flush=True)
    return 0


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    config = config_from_args(args, parser)

    if args.serve is not None:
        return run_server_mode(config, args.serve)

    record, stats, ok = run_serving_session(config, hot=args.hot,
                                            trace_out=args.trace_out)
    if args.json:
        json.dump(record, sys.stdout, indent=2, default=str)
        print()
    else:
        p99 = record["latency_ms"]["p99"]
        p99_text = f"{p99:.2f}" if p99 is not None else "n/a"
        print(f"served {record['queries']} {config.kind} queries "
              f"({record['workload']} workload"
              + (f", {config.workers} workers" if config.workers > 1 else "")
              + f") in {record['seconds']:.3f}s -> "
              f"{record['queries_per_second']:,.0f} q/s "
              f"(p99 {p99_text} ms/batch), "
              f"{record['delivered']} delivered")
        stage = record["stage_seconds"]
        stage_text = "  ".join(
            f"{name}={stage[name]:.3f}s"
            for name in ("build", "load", "warm", "query")
            if stage[name] is not None)
        print(f"stages: {stage_text}")
        print(stats.describe())
    # Routes must always deliver (the hierarchy has an exact-path
    # fallback); trace replays may mix kinds per batch, so the check is
    # per-batch, not on the configured default kind.
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
