"""The routing service facade: build-or-load, query, batch, cache.

This is the deployment story for Corollary 4.14: the hierarchy's expensive
preprocessing runs once (or is loaded from a persisted artifact), after
which :class:`RoutingService` answers ``route`` / ``distance_estimate`` /
full-path queries — one at a time or batched — through an LRU result cache
with optional hot-pair precomputation.  Everything the service does is
observable through its :class:`~repro.serving.cache.ServingStats`.

Layering (top to bottom)::

    RoutingService          query API, result caches, stats
      CompactRoutingHierarchy   tables/labels, pivot-row cache (batch hook)
        artifacts               persistence (build once, serve anywhere)

Batched queries amortize label lookups: the hierarchy resolves each distinct
target's per-level pivot row once per batch (see
:meth:`~repro.routing.tz_hierarchy.CompactRoutingHierarchy.pivot_row`), and
the service computes each *distinct* pair once, fanning the result out to
every duplicate in the batch.
"""

from __future__ import annotations

import os
import time
import warnings
from typing import Any, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from ..graphs.weighted_graph import WeightedGraph
from ..obs.metrics import make_registry
from ..routing.compact import build_compact_routing
from ..routing.tables import RouteTrace
from ..routing.tz_hierarchy import CompactRoutingHierarchy
from .artifacts import (
    ArtifactError,
    ArtifactInfo,
    artifact_info,
    load_hierarchy,
    save_hierarchy,
)
from .cache import ServingStats
from .config import BuildConfig, CacheConfig
from .policies import HotSetPolicy, make_hot_set_policy
from .registry import get_cache_policy, get_query_kernel, register_query_kernel

__all__ = ["RoutingService", "build_or_load_service", "answer_batch",
           "execute_query_shard", "resolve_query_kernel"]

_Pair = Tuple[Hashable, Hashable]

#: Sentinel distinguishing "not cached" from legitimately cached falsy values.
_MISS = object()

#: Sentinel for "key absent from an artifact header" in freshness checks.
_UNSET = object()


# ======================================================================
# query kernels (batch probing strategy, selected by name)
# ======================================================================
@register_query_kernel("dict")
def _dict_kernel(hierarchy: CompactRoutingHierarchy) -> str:
    """The per-pair path: label-keyed dict probes, always available."""
    return "dict"


@register_query_kernel("columnar")
def _columnar_kernel(hierarchy: CompactRoutingHierarchy) -> str:
    """Array-native batch kernel over v2 record tables; falls back to the
    dict path when the backing store is v1/in-memory (no record tables)."""
    return "columnar" if hierarchy.has_columnar_kernel() else "dict"


@register_query_kernel("auto")
def _auto_kernel(hierarchy: CompactRoutingHierarchy) -> str:
    """Columnar whenever the backing store supports it, dict otherwise."""
    return "columnar" if hierarchy.has_columnar_kernel() else "dict"


def resolve_query_kernel(kernel: str,
                         hierarchy: CompactRoutingHierarchy) -> str:
    """Resolve a kernel selector against a hierarchy's backing store.

    Returns the *concrete* kernel name (``"dict"`` or ``"columnar"``) that
    batch queries will actually use; unknown selectors raise with the
    registered names.
    """
    return get_query_kernel(kernel)(hierarchy)


class RoutingService:
    """Serve routing queries from a built or loaded compact-routing hierarchy.

    Parameters
    ----------
    hierarchy:
        The underlying compact-routing hierarchy.
    cache_size:
        Capacity of *each* result cache (routes and distances are cached
        separately since route traces are much heavier).  ``0`` disables
        result caching — the benchmarks use this as the cold baseline.
        Ignored when ``cache_config`` is given.
    stats:
        Optional pre-populated stats object (used by the factory
        constructors to carry build/load timings into the service).
    cache_config:
        Full cache behaviour as a :class:`~repro.serving.config.CacheConfig`
        — selects the result-cache policy from the cache-policy registry and
        installs the configured hot-set policy.  When omitted, an LRU of
        ``cache_size`` with no hot-set policy (the v1 behaviour).
    kernel:
        Query-kernel selector (``"dict"`` / ``"columnar"`` / ``"auto"``,
        resolved through the query-kernel registry).  Controls how batch
        queries probe the routing tables; answers are identical across
        kernels, so ``"auto"`` (columnar whenever the backing store is a
        v2 mmap artifact) is safe everywhere.
    telemetry:
        When true, per-stage spans (cache probes, kernel batches, group
        decodes, warm-up) record into a live
        :class:`~repro.obs.metrics.MetricsRegistry`, exported through
        ``query_stats().extra["telemetry"]``.  Off by default: the no-op
        registry keeps the hot path allocation-free.
    metrics:
        An explicit registry to record into (overrides ``telemetry``;
        the factory constructors use it to capture build/load spans that
        happen before the service object exists).
    """

    def __init__(self, hierarchy: CompactRoutingHierarchy,
                 cache_size: int = 4096,
                 stats: Optional[ServingStats] = None,
                 cache_config: Optional[CacheConfig] = None,
                 kernel: str = "auto", telemetry: bool = False,
                 metrics=None) -> None:
        if cache_config is None:
            cache_config = CacheConfig(capacity=cache_size)
        self.hierarchy = hierarchy
        self.cache_config = cache_config
        self.kernel = kernel
        self.metrics = metrics if metrics is not None \
            else make_registry(telemetry)
        self._kernel_active = resolve_query_kernel(kernel, hierarchy)
        hierarchy.set_pivot_row_cache_cap(cache_config.pivot_cache_cap)
        hierarchy.set_metrics_registry(self.metrics)
        self.stats = stats if stats is not None else ServingStats()
        make_cache = get_cache_policy(cache_config.policy)
        self.route_cache = make_cache(cache_config.capacity)
        self.distance_cache = make_cache(cache_config.capacity)
        self._hot_routes: Dict[_Pair, RouteTrace] = {}
        self._hot_distances: Dict[_Pair, float] = {}
        self._hot_policy: Optional[HotSetPolicy] = None
        self._hot_policy_extras: Tuple[str, ...] = ()
        self.stats.extra.setdefault("n", hierarchy.graph.num_nodes)
        self.stats.extra.setdefault("k", hierarchy.k)
        self.stats.extra.setdefault("mode", hierarchy.mode)
        self.stats.extra.setdefault("cache_policy", cache_config.policy)
        self.stats.extra.setdefault("kernel_requested", kernel)
        self.stats.extra.setdefault("kernel_active", self._kernel_active)
        self.stats.extra.setdefault("pivot_row_cache_cap",
                                    cache_config.pivot_cache_cap)
        policy = make_hot_set_policy(cache_config)
        if policy is not None:
            self.install_hot_set(policy)

    # ==================================================================
    # construction
    # ==================================================================
    @classmethod
    def build(cls, graph: WeightedGraph, k: int = 3, epsilon: float = 0.25,
              seed: int = 0, mode: str = "auto", engine: str = "batched",
              cache_size: int = 4096,
              cache_config: Optional[CacheConfig] = None,
              kernel: str = "auto", telemetry: bool = False,
              **build_kwargs) -> "RoutingService":
        """Build a hierarchy from scratch and wrap it in a service.

        ``build_kwargs`` forwards to
        :func:`~repro.routing.compact.build_compact_routing` —
        ``build_workers=N`` selects the multi-process parallel build
        (identical artifact, telemetry spans recorded when ``telemetry``
        is on).
        """
        stats = ServingStats()
        metrics = make_registry(telemetry)
        start = time.perf_counter()
        with metrics.span("hierarchy_build"):
            hierarchy = build_compact_routing(graph, k=k, epsilon=epsilon,
                                              seed=seed, mode=mode,
                                              engine=engine, registry=metrics,
                                              **build_kwargs)
        stats.build_seconds = time.perf_counter() - start
        return cls(hierarchy, cache_size=cache_size, stats=stats,
                   cache_config=cache_config, kernel=kernel, metrics=metrics)

    @classmethod
    def load(cls, path: str, cache_size: int = 4096,
             cache_config: Optional[CacheConfig] = None,
             kernel: str = "auto", telemetry: bool = False,
             ) -> "RoutingService":
        """Load a persisted hierarchy artifact and serve from it.

        The artifact format decides the load path: format 1 unpickles the
        whole hierarchy eagerly; format 2 maps the file and pages tables
        lazily.  Both are recorded in the stats extras
        (``artifact_format`` / ``artifact_load`` / ``loaded_table_bytes``)
        so ``repro-serve --json`` reports how this service got its tables.
        """
        stats = ServingStats()
        metrics = make_registry(telemetry)
        start = time.perf_counter()
        with metrics.span("artifact_load"):
            hierarchy, info = load_hierarchy(path)
        stats.load_seconds = time.perf_counter() - start
        stats.artifact_bytes = info.payload_bytes
        stats.extra["artifact_path"] = path
        stats.extra["artifact_format"] = info.format_version
        stats.extra["artifact_load"] = ("mmap" if info.format_version >= 2
                                        else "pickle")
        stats.extra["loaded_table_bytes"] = info.payload_bytes
        sub = info.metadata.get("sub_artifact")
        if sub is not None:
            stats.extra["sub_artifact_shard"] = sub.get("shard")
        madvised = getattr(hierarchy, "_madvise_sections", None)
        if madvised is not None:
            stats.extra["madvise_sections"] = list(madvised)
        return cls(hierarchy, cache_size=cache_size, stats=stats,
                   cache_config=cache_config, kernel=kernel, metrics=metrics)

    @classmethod
    def build_or_load(cls, path: str, graph: Optional[WeightedGraph] = None,
                      k: int = 3, epsilon: float = 0.25, seed: int = 0,
                      mode: str = "auto", engine: str = "batched",
                      cache_size: int = 4096, save: bool = True,
                      **build_kwargs) -> "RoutingService":
        """Deprecated kwargs shim over :func:`build_or_load_service`.

        Use ``open_service(ServingConfig(artifact_path=..., build=...,
        cache=...))`` (or :func:`build_or_load_service` directly) instead;
        this wrapper only repackages the kwargs chain into the typed configs
        and will be removed after a deprecation period.
        """
        warnings.warn(
            "RoutingService.build_or_load(...) is deprecated; use "
            "repro.serving.open_service(ServingConfig(artifact_path=...)) "
            "or build_or_load_service(...)",
            DeprecationWarning, stacklevel=2)
        return build_or_load_service(
            path, graph=graph,
            build=BuildConfig(k=k, epsilon=epsilon, seed=seed, mode=mode,
                              engine=engine),
            cache=CacheConfig(capacity=cache_size), save=save, **build_kwargs)

    def save(self, path: str, metadata: Optional[Dict[str, object]] = None,
             format: int = 2,
             compress_node_table: bool = False) -> ArtifactInfo:
        """Persist the underlying hierarchy as a versioned artifact
        (``format=2`` — the mmap-able section table — by default;
        ``compress_node_table=True`` front-codes the node intern table)."""
        return save_hierarchy(self.hierarchy, path, metadata=metadata,
                              format=format,
                              compress_node_table=compress_node_table)

    # ==================================================================
    # single queries
    # ==================================================================
    def _validate_node(self, node: Hashable) -> None:
        if not self.hierarchy.graph.has_node(node):
            raise ValueError(f"unknown node {node!r}")

    def distance_estimate(self, source: Hashable, target: Hashable) -> float:
        """Distance estimate for one pair (cached)."""
        self._validate_node(source)
        self._validate_node(target)
        self.stats.queries += 1
        self.stats.distance_queries += 1
        key = (source, target)
        hot = self._hot_distances.get(key, _MISS)
        if hot is not _MISS:
            self.stats.hot_hits += 1
            if self._hot_policy is not None:
                self._hot_policy.on_hot_hit(self, key, "distance")
            return hot
        cached = self.distance_cache.get(key, _MISS)
        if cached is not _MISS:
            self.stats.cache_hits += 1
            if self._hot_policy is not None:
                self._hot_policy.on_cache_hit(self, key, "distance", cached)
            return cached
        self.stats.cache_misses += 1
        estimate = self.hierarchy.distance(source, target)
        self.distance_cache.put(key, estimate)
        return estimate

    def route(self, source: Hashable, target: Hashable) -> RouteTrace:
        """Route one pair, returning the full :class:`RouteTrace` (cached)."""
        self._validate_node(source)
        self._validate_node(target)
        self.stats.queries += 1
        self.stats.route_queries += 1
        return self._route_cached((source, target))

    def full_path(self, source: Hashable, target: Hashable) -> List[Hashable]:
        """The routed node sequence from ``source`` to ``target``."""
        return self.route(source, target).path

    def _route_cached(self, key: _Pair) -> RouteTrace:
        hot = self._hot_routes.get(key, _MISS)
        if hot is not _MISS:
            self.stats.hot_hits += 1
            if self._hot_policy is not None:
                self._hot_policy.on_hot_hit(self, key, "route")
            return hot
        cached = self.route_cache.get(key, _MISS)
        if cached is not _MISS:
            self.stats.cache_hits += 1
            if self._hot_policy is not None:
                self._hot_policy.on_cache_hit(self, key, "route", cached)
            return cached
        self.stats.cache_misses += 1
        trace = self.hierarchy.route(*key)
        self.route_cache.put(key, trace)
        return trace

    # ==================================================================
    # batched queries
    # ==================================================================
    def distance_batch(self, pairs: Sequence[_Pair]) -> List[float]:
        """Distance estimates for a batch of pairs.

        Each distinct pair is computed at most once; distinct targets
        resolve their pivot rows once via the hierarchy's batch hook.
        """
        pairs = list(pairs)
        for s, t in pairs:
            self._validate_node(s)
            self._validate_node(t)
        self.stats.queries += len(pairs)
        self.stats.distance_queries += len(pairs)
        self.stats.batches += 1
        self.stats.batched_queries += len(pairs)

        resolved: Dict[_Pair, float] = {}
        misses: List[_Pair] = []
        pending = set()
        with self.metrics.span("cache_probe"):
            for key in pairs:
                if key in resolved or key in pending:
                    continue
                hot = self._hot_distances.get(key, _MISS)
                if hot is not _MISS:
                    self.stats.hot_hits += 1
                    if self._hot_policy is not None:
                        self._hot_policy.on_hot_hit(self, key, "distance")
                    resolved[key] = hot
                    continue
                cached = self.distance_cache.get(key, _MISS)
                if cached is not _MISS:
                    self.stats.cache_hits += 1
                    if self._hot_policy is not None:
                        self._hot_policy.on_cache_hit(self, key, "distance",
                                                      cached)
                    resolved[key] = cached
                else:
                    self.stats.cache_misses += 1
                    pending.add(key)
                    misses.append(key)
        if misses:
            with self.metrics.span("cache_miss_fill"):
                answers = self.hierarchy.distance_batch(
                    misses, kernel=self._kernel_active)
                for key, estimate in zip(misses, answers):
                    resolved[key] = estimate
                    self.distance_cache.put(key, estimate)
        return [resolved[key] for key in pairs]

    def route_batch(self, pairs: Sequence[_Pair]) -> List[RouteTrace]:
        """Route a batch of pairs; duplicates are served from one computation.

        Mirrors :meth:`distance_batch`: hot-store and result-cache probes
        (and hot-set policy hooks) run once per *distinct* pair, then all
        cache misses go to the hierarchy as one batch through the active
        query kernel.
        """
        pairs = list(pairs)
        for s, t in pairs:
            self._validate_node(s)
            self._validate_node(t)
        self.stats.queries += len(pairs)
        self.stats.route_queries += len(pairs)
        self.stats.batches += 1
        self.stats.batched_queries += len(pairs)

        resolved: Dict[_Pair, RouteTrace] = {}
        misses: List[_Pair] = []
        pending = set()
        with self.metrics.span("cache_probe"):
            for key in pairs:
                if key in resolved or key in pending:
                    continue
                hot = self._hot_routes.get(key, _MISS)
                if hot is not _MISS:
                    self.stats.hot_hits += 1
                    if self._hot_policy is not None:
                        self._hot_policy.on_hot_hit(self, key, "route")
                    resolved[key] = hot
                    continue
                cached = self.route_cache.get(key, _MISS)
                if cached is not _MISS:
                    self.stats.cache_hits += 1
                    if self._hot_policy is not None:
                        self._hot_policy.on_cache_hit(self, key, "route",
                                                      cached)
                    resolved[key] = cached
                else:
                    self.stats.cache_misses += 1
                    pending.add(key)
                    misses.append(key)
        if misses:
            with self.metrics.span("cache_miss_fill"):
                answers = self.hierarchy.route_batch(
                    misses, kernel=self._kernel_active)
                for key, trace in zip(misses, answers):
                    resolved[key] = trace
                    self.route_cache.put(key, trace)
        return [resolved[key] for key in pairs]

    # ==================================================================
    # cache management
    # ==================================================================
    def install_hot_set(self, policy: Optional[HotSetPolicy]) -> None:
        """Attach (or detach, with ``None``) a hot-set policy.

        The policy's ``install`` hook runs immediately (an explicit policy
        precomputes its pairs here) and its ``on_cache_hit`` hook is called
        on every LRU result-cache hit from then on.  Installing a policy
        replaces the previous one — including its provenance keys in
        ``stats.extra``, so the reported stats always describe the policy
        actually active; already-pinned pairs stay pinned.
        """
        for key in self._hot_policy_extras:
            self.stats.extra.pop(key, None)
        self._hot_policy_extras = ()
        self._hot_policy = policy
        if policy is not None:
            policy.install(self)
            extras = policy.describe()
            self.stats.extra.update(extras)
            self._hot_policy_extras = tuple(extras)

    def precompute_hot_pairs(self, pairs: Iterable[_Pair],
                             kind: str = "route") -> int:
        """Pin results for known-hot pairs outside the LRU eviction domain.

        Returns the number of pairs precomputed.  ``kind`` is ``"route"``,
        ``"distance"`` or ``"both"``.  Precomputation bypasses the stats
        counters — it is provisioning work, not query traffic.

        Pinning a pair evicts any copy of it from the corresponding LRU
        result cache: the hot store is checked first on every query, so an
        LRU copy would be dead weight — double storage that the LRU's
        eviction and :meth:`clear_cache` bookkeeping no longer govern.
        """
        if kind not in ("route", "distance", "both"):
            raise ValueError(f"kind must be route/distance/both, got {kind!r}")
        count = 0
        start = time.perf_counter()
        with self.metrics.span("warmup"):
            for source, target in pairs:
                self._validate_node(source)
                self._validate_node(target)
                key = (source, target)
                if kind in ("route", "both"):
                    self._hot_routes[key] = self.hierarchy.route(source,
                                                                 target)
                    self.route_cache.discard(key)
                if kind in ("distance", "both"):
                    self._hot_distances[key] = self.hierarchy.distance(
                        source, target)
                    self.distance_cache.discard(key)
                count += 1
        # Warm-up is provisioning cost, not query traffic: it is recorded
        # in its own stat (accumulating over repeated precomputes) so the
        # CLI can report it separately from the serving window.
        self.stats.warm_seconds = ((self.stats.warm_seconds or 0.0)
                                   + time.perf_counter() - start)
        self.stats.extra["hot_pairs"] = {"route": len(self._hot_routes),
                                         "distance": len(self._hot_distances)}
        return count

    def pin_hot_result(self, key: _Pair, kind: str, value) -> None:
        """Pin an *already-computed* result into the hot store.

        The zero-recompute sibling of :meth:`precompute_hot_pairs`: hot-set
        policies promoting on a cache hit already hold the cached value
        (computed by this very hierarchy), so pinning it directly skips the
        redundant route/distance recomputation.  Same bookkeeping as
        precomputation: the LRU copy is evicted and the per-kind hot counts
        are updated.
        """
        if kind == "route":
            self._hot_routes[key] = value
            self.route_cache.discard(key)
        elif kind == "distance":
            self._hot_distances[key] = value
            self.distance_cache.discard(key)
        else:
            raise ValueError(f"kind must be route or distance, got {kind!r}")
        self.stats.extra["hot_pairs"] = {"route": len(self._hot_routes),
                                         "distance": len(self._hot_distances)}

    def unpin_hot_result(self, key: _Pair, kind: str) -> bool:
        """Demote a pinned result back into the LRU eviction domain.

        The inverse of :meth:`pin_hot_result`, used by decaying hot-set
        policies: the value is removed from the hot store and *re-inserted*
        into the corresponding result cache, so a demoted pair that comes
        back is still answered without recomputation (it just competes for
        cache residency again).  Returns whether a pin was removed.
        """
        if kind == "route":
            store, cache = self._hot_routes, self.route_cache
        elif kind == "distance":
            store, cache = self._hot_distances, self.distance_cache
        else:
            raise ValueError(f"kind must be route or distance, got {kind!r}")
        value = store.pop(key, _MISS)
        if value is _MISS:
            return False
        cache.put(key, value)
        self.stats.extra["hot_pairs"] = {"route": len(self._hot_routes),
                                         "distance": len(self._hot_distances)}
        return True

    def clear_cache(self, include_hot: bool = False,
                    include_hierarchy: bool = False) -> None:
        """Empty the result caches (and optionally the hot store and the
        hierarchy's internal query-time caches — used by cold benchmarks)."""
        self.route_cache.clear()
        self.distance_cache.clear()
        if include_hot:
            self._hot_routes.clear()
            self._hot_distances.clear()
        if include_hierarchy:
            self.hierarchy.clear_runtime_caches()

    # ==================================================================
    # lifecycle (QueryBackend contract)
    # ==================================================================
    def close(self) -> None:
        """Release the backend.  A local service holds no external
        resources, so this is deliberately a no-op and the service stays
        queryable (unlike the sharded backend, whose workers are gone after
        close) — closing exists so one teardown path works for any
        :class:`QueryBackend`.  Idempotent."""

    def __enter__(self) -> "RoutingService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ==================================================================
    # introspection
    # ==================================================================
    @property
    def graph(self) -> WeightedGraph:
        """The graph the underlying hierarchy was built on."""
        return self.hierarchy.graph

    @property
    def num_nodes(self) -> int:
        return self.hierarchy.graph.num_nodes

    def query_stats(self) -> ServingStats:
        """This service's counters (the QueryBackend stats accessor).

        Refreshes the hierarchy-level snapshots (pivot-row cache counters,
        columnar-kernel group stats) into ``stats.extra`` so readers get
        current values without poking hierarchy internals.
        """
        self.stats.extra["pivot_row_cache"] = \
            self.hierarchy.pivot_row_cache_info()
        kern = self.hierarchy.query_kernel(self._kernel_active)
        if kern is not None:
            self.stats.extra["kernel_stats"] = dict(kern.stats)
        if self.metrics.enabled:
            self.stats.extra["telemetry"] = self.metrics.export()
        return self.stats

    def describe(self) -> str:
        return self.stats.describe()

    def __repr__(self) -> str:
        return (f"RoutingService(n={self.num_nodes}, k={self.hierarchy.k}, "
                f"mode={self.hierarchy.mode!r}, "
                f"cache={self.route_cache.capacity})")


# ======================================================================
# config-driven build-or-load (the v2 primitive behind open_service)
# ======================================================================
def build_or_load_service(path: str, graph: Optional[WeightedGraph] = None,
                          build: Optional[BuildConfig] = None,
                          cache: Optional[CacheConfig] = None,
                          save: bool = True,
                          metadata: Optional[Dict[str, Any]] = None,
                          kernel: str = "auto", telemetry: bool = False,
                          **build_kwargs) -> RoutingService:
    """Load the artifact at ``path`` if it exists, else build (and save).

    This is the serving workflow: the first process to reference an
    artifact pays the preprocessing cost, every later one just loads.
    ``graph`` is only required on the build path.  When a graph (a build
    intent) *is* provided and the existing artifact was built with
    parameters differing from ``build``, the mismatch raises
    :class:`~repro.serving.artifacts.ArtifactError` instead of silently
    serving stale answers; without a graph the artifact is loaded as-is.

    Every requested parameter must be *present* in the artifact header and
    equal: a key the header never persisted (an artifact predating the
    parameter, or saved by some other writer) cannot be verified, so it is
    treated as a mismatch rather than silently served as fresh.

    ``metadata`` is merged into the artifact header on the build path —
    :func:`~repro.serving.backend.open_service` records the originating
    ``ServingConfig`` there as provenance.
    """
    build = build if build is not None else BuildConfig()
    cache = cache if cache is not None else CacheConfig()
    if os.path.exists(path):
        if graph is not None:
            requested = {"k": build.k, "epsilon": build.epsilon,
                         "seed": build.seed,
                         "n": graph.num_nodes, "m": graph.num_edges,
                         "engine": build.engine, "mode": build.mode}
            header = artifact_info(path).metadata
            stale = {}
            for key, want in requested.items():
                if key == "mode":
                    # "auto" resolves to a concrete mode at build time;
                    # compare request against what was *requested* when
                    # the artifact was built, falling back to the
                    # resolved mode for explicitly-built artifacts.
                    have = header.get("requested_mode",
                                      header.get("mode", _UNSET))
                else:
                    have = header.get(key, _UNSET)
                if have is _UNSET:
                    stale[key] = ("<absent from artifact header>", want)
                elif have != want:
                    stale[key] = (have, want)
            if stale:
                raise ArtifactError(
                    f"artifact {path!r} was built with different "
                    f"parameters than requested: "
                    + ", ".join(f"{key}={have!r} (requested {want!r})"
                                for key, (have, want) in sorted(stale.items()))
                    + "; delete the artifact to rebuild")
        return RoutingService.load(path, cache_config=cache, kernel=kernel,
                                   telemetry=telemetry)
    if graph is None:
        raise ValueError(f"artifact {path!r} does not exist and no graph "
                         "was provided to build from")
    build_kwargs.setdefault("build_workers", build.build_workers)
    service = RoutingService.build(
        graph, k=build.k, epsilon=build.epsilon, seed=build.seed,
        mode=build.mode, engine=build.engine, cache_config=cache,
        kernel=kernel, telemetry=telemetry, **build_kwargs)
    if save:
        info = service.save(path, metadata=metadata,
                            format=build.artifact_format)
        service.stats.artifact_bytes = info.payload_bytes
        service.stats.extra["artifact_path"] = path
        service.stats.extra["artifact_format"] = info.format_version
        service.stats.extra["artifact_load"] = "built"
    return service


# ======================================================================
# module-level query execution (picklable: usable from worker processes)
# ======================================================================
def answer_batch(service: RoutingService, kind: str,
                 pairs: Sequence[_Pair]) -> List:
    """Dispatch one batch to the service by query kind.

    The shared kind registry for the CLI, the sharded front-end's workers
    and :func:`execute_query_shard`.
    """
    if kind == "route":
        return service.route_batch(pairs)
    if kind == "distance":
        return service.distance_batch(pairs)
    raise ValueError(f"kind must be route or distance, got {kind!r}")


def execute_query_shard(artifact_path: str, pairs: Sequence[_Pair],
                        kind: str = "route", cache_size: int = 4096,
                        kernel: str = "auto") -> Tuple[List, ServingStats]:
    """One-shot shard execution: load the artifact, answer ``pairs``.

    A module-level function (hence picklable) so pool-style multiprocessing
    — ``Pool.starmap(execute_query_shard, ...)`` — can fan a partitioned
    stream out to worker processes without any shared state beyond the
    artifact file.  Returns ``(results, stats)``; results are in the order
    of ``pairs``.  The persistent-worker equivalent lives in
    :mod:`repro.serving.sharded`.
    """
    service = RoutingService.load(artifact_path, cache_size=cache_size,
                                  kernel=kernel)
    return answer_batch(service, kind, list(pairs)), service.query_stats()
