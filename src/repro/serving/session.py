"""Session layer: the ``QueryBackend`` protocol over any byte stream.

Layer two of the transport refactor (:mod:`repro.serving.wire` is the
frame layer below, :mod:`repro.serving.server` the socket server above):

* :class:`ServerSession` drives one connected client — handshake, query
  dispatch into a real :class:`~repro.serving.backend.QueryBackend`,
  stats snapshots, graceful close — over a pair of binary streams.
* :class:`ClientSession` is the mirror image and *is itself* a
  :class:`~repro.serving.backend.QueryBackend`: ``route_batch`` /
  ``distance_batch`` / ``query_stats`` / ``close`` plus context
  management, so code written against the protocol cannot tell a remote
  backend from a local one (and the acceptance tests pin that remote
  answers are list-for-list identical).

Both ends are transport-agnostic: anything with blocking ``read`` /
``write`` / ``flush`` works (socket makefiles in production,
``io.BytesIO`` pairs in tests).

The client pipelines: up to ``window`` query frames may be in flight
before it insists on reading answers back, overlapping serialization of
the next batch with the server's work on the previous ones.  Answers are
matched by request id (the server answers in arrival order), and the
time spent blocked on a full window is recorded under the
``inflight_wait`` telemetry span.

Config negotiation: the server's ``welcome`` frame carries its resolved
:class:`~repro.serving.config.ServingConfig` (``to_dict`` form), so the
client learns the graph spec, batch shaping and cache posture of the
backend it is talking to; :attr:`ClientSession.graph` regenerates the
served graph locally from that spec for workload generation.

Shutdown mirrors the PR-4 resource contract: a :class:`ClientSession`
that is garbage-collected while still connected emits a
:class:`ResourceWarning` naming the endpoint, exactly like an unclosed
``ShardedRoutingService`` names its workers.
"""

from __future__ import annotations

import socket
import warnings
from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from ..graphs.weighted_graph import WeightedGraph
from ..obs.metrics import make_registry, merge_exports
from .cache import ServingStats
from .config import ServingConfig
from .wire import (
    PROTOCOL_VERSION,
    BackpressureError,
    FrameError,
    ProtocolVersionError,
    RemoteError,
    SessionClosedError,
    WireError,
    check_hello,
    decode_answers,
    encode_answers,
    hello_message,
    pack_pairs,
    parse_endpoint,
    read_frame,
    unpack_pairs,
    write_frame,
)

__all__ = ["ServerSession", "ClientSession"]

_Pair = Tuple[Hashable, Hashable]


class ServerSession:
    """One client's lifetime on the server side.

    Parameters
    ----------
    backend:
        The :class:`QueryBackend` answering this session's batches.
    rfile / wfile:
        Blocking binary streams (typically ``socket.makefile``).
    answer:
        Optional override for how a batch is answered — the network
        server passes a callable that serialises access to a shared local
        backend (or rides the sharded front-end's pipelined submit/wait
        path); defaults to calling the backend directly.
    config:
        The resolved :class:`ServingConfig` advertised to the client in
        the ``welcome`` frame (config negotiation).
    peer:
        Label for diagnostics (``"host:port"`` of the client).
    """

    def __init__(self, backend, rfile, wfile, *,
                 answer: Optional[Callable[[str, Sequence[_Pair]], List]] = None,
                 config: Optional[ServingConfig] = None,
                 server_name: str = "repro-serve", peer: str = "?",
                 telemetry: bool = False) -> None:
        self.backend = backend
        self.rfile = rfile
        self.wfile = wfile
        self.config = config
        self.server_name = server_name
        self.peer = peer
        self.metrics = make_registry(telemetry)
        self._answer = answer if answer is not None else self._answer_direct
        #: Queries/batches answered by this session (ride along in every
        #: ``answers`` frame as the incremental ServingStats block).
        self.served_queries = 0
        self.served_batches = 0
        #: True exactly while a batch is being answered — the server's
        #: graceful close waits for busy sessions to finish their batch.
        self.busy = False

    def _answer_direct(self, kind: str, pairs: Sequence[_Pair]) -> List:
        if kind == "route":
            return self.backend.route_batch(pairs)
        return self.backend.distance_batch(pairs)

    def _send(self, message: Dict[str, Any]) -> None:
        write_frame(self.wfile, message, self.metrics)

    def _stats_dict(self) -> Dict[str, Any]:
        stats = self.backend.query_stats()
        return stats.as_dict()

    def handshake(self) -> bool:
        """Run the hello/welcome exchange; False when the client was
        rejected (an ``error`` frame has then already been sent)."""
        hello = read_frame(self.rfile, self.metrics)
        problem = check_hello(hello)
        if problem is not None:
            code = ("protocol-version"
                    if "protocol version" in problem else "bad-hello")
            self._send({"type": "error", "code": code, "message": problem})
            return False
        welcome: Dict[str, Any] = {
            "type": "welcome",
            "protocol": PROTOCOL_VERSION,
            "server": self.server_name,
            "config": self.config.to_dict() if self.config else None,
        }
        self._send(welcome)
        return True

    def serve(self) -> None:
        """Serve until the client closes (``close`` frame or disconnect).

        Bad requests are answered with per-request ``error`` frames and
        the session survives; only transport failures end it.
        """
        if not self.handshake():
            return
        while True:
            try:
                message = read_frame(self.rfile, self.metrics)
            except SessionClosedError:
                return  # client went away without a close frame
            kind = message.get("type")
            if kind == "close":
                self._send({"type": "bye", "stats": self._stats_dict(),
                            "served": {"queries": self.served_queries,
                                       "batches": self.served_batches}})
                return
            if kind == "stats":
                self._send({"type": "stats_reply",
                            "stats": self._stats_dict()})
                continue
            if kind != "query":
                self._send({"type": "error", "code": "bad-request",
                            "message": f"unknown message type {kind!r}"})
                continue
            self._handle_query(message)

    def _handle_query(self, message: Dict[str, Any]) -> None:
        request_id = message.get("id")
        query_kind = message.get("kind")
        if query_kind not in ("route", "distance"):
            self._send({"type": "error", "id": request_id,
                        "code": "bad-request",
                        "message": f"unknown query kind {query_kind!r}"})
            return
        try:
            pairs = unpack_pairs(message.get("pairs", []))
        except FrameError as exc:
            self._send({"type": "error", "id": request_id,
                        "code": "bad-request", "message": str(exc)})
            return
        self.busy = True
        try:
            values = self._answer(query_kind, pairs)
        except BackpressureError as exc:
            self._send({"type": "error", "id": request_id,
                        "code": "backpressure", "message": str(exc)})
            return
        except Exception as exc:
            self._send({"type": "error", "id": request_id, "code": "backend",
                        "message": f"{type(exc).__name__}: {exc}"})
            return
        finally:
            self.busy = False
        self.served_queries += len(pairs)
        self.served_batches += 1
        self._send({"type": "answers", "id": request_id, "kind": query_kind,
                    "values": encode_answers(query_kind, values),
                    "served": {"queries": self.served_queries,
                               "batches": self.served_batches}})


class ClientSession:
    """A remote :class:`QueryBackend` over a byte-stream transport.

    Open one with :meth:`connect` (TCP) or construct directly over any
    stream pair (tests use in-memory pipes).  Satisfies the full backend
    protocol; ``window`` bounds how many query frames may be in flight
    before :meth:`submit` blocks reading answers (``window=1`` degenerates
    to strict request/reply).
    """

    def __init__(self, rfile, wfile, *, endpoint: str = "stream",
                 client_name: str = "repro-client", window: int = 8,
                 telemetry: bool = False,
                 sock: Optional[socket.socket] = None) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.rfile = rfile
        self.wfile = wfile
        self.endpoint = endpoint
        self.window = window
        self.metrics = make_registry(telemetry)
        self._sock = sock
        self._closed = False
        self._next_id = 0
        #: request_id -> query kind, in submission order (the server
        #: answers in arrival order, so the head is always next).
        self._pending: "OrderedDict[int, str]" = OrderedDict()
        self._results: Dict[int, Any] = {}
        self._served: Dict[str, int] = {"queries": 0, "batches": 0}
        self._final_stats: Optional[ServingStats] = None
        self._graph: Optional[WeightedGraph] = None
        self.remote_config: Optional[Dict[str, Any]] = None
        self.protocol = PROTOCOL_VERSION
        self.server_name: Optional[str] = None
        write_frame(self.wfile, hello_message(client_name), self.metrics)
        welcome = self._read_message()
        if welcome.get("type") == "error":
            self._teardown()
            if welcome.get("code") == "protocol-version":
                raise ProtocolVersionError(welcome.get("message", ""))
            raise RemoteError(welcome.get("code", "error"),
                              welcome.get("message", ""))
        if welcome.get("type") != "welcome":
            self._teardown()
            raise FrameError(f"expected welcome, got "
                             f"{welcome.get('type')!r}")
        self.protocol = welcome.get("protocol", PROTOCOL_VERSION)
        self.server_name = welcome.get("server")
        self.remote_config = welcome.get("config")

    # ------------------------------------------------------------------
    # connection management
    # ------------------------------------------------------------------
    @classmethod
    def connect(cls, endpoint: str, *, timeout: float = 10.0,
                reply_timeout: float = 300.0,
                client_name: str = "repro-client", window: int = 8,
                telemetry: bool = False) -> "ClientSession":
        """Open a TCP session to ``"host:port"``.

        ``timeout`` bounds connection establishment; ``reply_timeout``
        bounds any single blocking read afterwards, so a dead server
        raises instead of hanging forever.
        """
        host, port = parse_endpoint(endpoint)
        sock = socket.create_connection((host or "127.0.0.1", port),
                                        timeout=timeout)
        sock.settimeout(reply_timeout)
        try:
            return cls(sock.makefile("rb"), sock.makefile("wb"),
                       endpoint=endpoint, client_name=client_name,
                       window=window, telemetry=telemetry, sock=sock)
        except BaseException:
            sock.close()
            raise

    def _teardown(self) -> None:
        self._closed = True
        for stream in (self.wfile, self.rfile):
            try:
                stream.close()
            except OSError:
                pass
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass

    def close(self) -> None:
        """Graceful end of session (idempotent): drain in-flight answers,
        send ``close``, keep the server's final stats from its ``bye``."""
        if self._closed:
            return
        try:
            while self._pending:
                self._read_answer()
            write_frame(self.wfile, {"type": "close"}, self.metrics)
            bye = self._read_message()
            if bye.get("type") == "bye" and isinstance(bye.get("stats"),
                                                       dict):
                self._final_stats = ServingStats.from_dict(bye["stats"])
        except (WireError, OSError):
            pass  # the peer may already be gone; close is best-effort
        finally:
            self._teardown()

    def __enter__(self) -> "ClientSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:
        # Same contract as an unclosed ShardedRoutingService: implicit
        # teardown of a live session is a caller bug — name the endpoint
        # so the leak is findable.
        try:
            if not self._closed:
                warnings.warn(
                    f"unclosed ClientSession to {self.endpoint}: call "
                    f"close() or use it as a context manager",
                    ResourceWarning, source=self, stacklevel=2)
                self._teardown()
        except BaseException:
            pass

    def __repr__(self) -> str:
        state = "closed" if self._closed else "connected"
        return (f"ClientSession(endpoint={self.endpoint!r}, "
                f"window={self.window}, {state})")

    # ------------------------------------------------------------------
    # wire plumbing
    # ------------------------------------------------------------------
    def _read_message(self) -> Dict[str, Any]:
        try:
            return read_frame(self.rfile, self.metrics)
        except socket.timeout:
            self._teardown()
            raise WireError(f"no reply from {self.endpoint} within the "
                            f"socket timeout") from None
        except SessionClosedError:
            self._teardown()
            raise SessionClosedError(
                f"server at {self.endpoint} closed the connection "
                f"mid-session") from None

    def _read_answer(self) -> None:
        """Consume one reply frame, resolving the oldest pending request."""
        message = self._read_message()
        kind = message.get("type")
        if kind == "answers":
            request_id = message.get("id")
            pending_kind = self._pending.pop(request_id, None)
            if pending_kind is None:
                raise FrameError(f"answers for unknown request "
                                 f"{request_id!r}")
            served = message.get("served")
            if isinstance(served, dict):
                # Incremental ServingStats: the session-so-far counters
                # ride along in every answers frame.
                self._served.update({key: int(value)
                                     for key, value in served.items()})
            self._results[request_id] = decode_answers(
                pending_kind, message.get("values", []))
            return
        if kind == "error":
            request_id = message.get("id")
            code = message.get("code", "error")
            exc: WireError
            if code == "backpressure":
                exc = BackpressureError(message.get("message", ""))
            else:
                exc = RemoteError(code, message.get("message", ""))
            if request_id is not None and request_id in self._pending:
                self._pending.pop(request_id)
                self._results[request_id] = exc
                return
            self._teardown()
            raise exc
        raise FrameError(f"unexpected reply type {kind!r}")

    # ------------------------------------------------------------------
    # pipelined query surface
    # ------------------------------------------------------------------
    def submit(self, kind: str, pairs: Sequence[_Pair]) -> int:
        """Send one query batch; returns its request id without waiting.

        Blocks (reading answers) only when ``window`` requests are
        already in flight — that wait is the ``inflight_wait`` span.
        """
        if self._closed:
            raise SessionClosedError(
                f"session to {self.endpoint} is closed")
        if kind not in ("route", "distance"):
            raise ValueError(f"kind must be route or distance, got {kind!r}")
        with self.metrics.span("inflight_wait"):
            while len(self._pending) >= self.window:
                self._read_answer()
        self._next_id += 1
        request_id = self._next_id
        write_frame(self.wfile, {"type": "query", "id": request_id,
                                 "kind": kind, "pairs": pack_pairs(pairs)},
                    self.metrics)
        self._pending[request_id] = kind
        return request_id

    def gather(self, request_id: int) -> List:
        """Results for one submitted batch (blocking until they arrive)."""
        while request_id not in self._results:
            if self._closed:
                raise SessionClosedError(
                    f"session to {self.endpoint} is closed")
            self._read_answer()
        outcome = self._results.pop(request_id)
        if isinstance(outcome, WireError):
            raise outcome
        return outcome

    # ------------------------------------------------------------------
    # QueryBackend protocol
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Optional[WeightedGraph]:
        """The served graph, regenerated locally from the negotiated
        ``graph_spec`` (``None`` when the server did not advertise one)."""
        if self._graph is None:
            spec = (self.remote_config or {}).get("graph_spec")
            if spec:
                from .specs import parse_graph_spec
                self._graph = parse_graph_spec(spec)
        return self._graph

    def route_batch(self, pairs: Sequence[_Pair]) -> List:
        return self.gather(self.submit("route", pairs))

    def distance_batch(self, pairs: Sequence[_Pair]) -> List[float]:
        return self.gather(self.submit("distance", pairs))

    def query_stats(self) -> ServingStats:
        """The server backend's stats, with this session's wire telemetry
        folded into ``extra`` (``wire`` counters + client-side spans)."""
        if self._closed:
            stats = (self._final_stats if self._final_stats is not None
                     else ServingStats())
        else:
            while self._pending:   # stats_reply follows pending answers
                self._read_answer()
            write_frame(self.wfile, {"type": "stats"}, self.metrics)
            reply = self._read_message()
            if reply.get("type") != "stats_reply":
                raise FrameError(f"expected stats_reply, got "
                                 f"{reply.get('type')!r}")
            stats = ServingStats.from_dict(reply.get("stats", {}))
        wire: Dict[str, Any] = {"endpoint": self.endpoint,
                                "protocol": self.protocol,
                                "window": self.window,
                                "session_queries": self._served["queries"],
                                "session_batches": self._served["batches"]}
        if self.metrics.enabled:
            export = self.metrics.export()
            for name in ("wire_frames_sent", "wire_bytes_sent",
                         "wire_frames_received", "wire_bytes_received"):
                if name in export:
                    wire[name] = export[name]["value"]
            stats.extra["telemetry"] = merge_exports(
                [stats.extra.get("telemetry", {}), export])
        stats.extra["wire"] = wire
        return stats
