"""Message layer: versioned, length-prefixed frames for networked serving.

The transport refactor splits networked serving into three layers; this is
the bottom one.  A *frame* is the unit of transmission::

    +-------+----------------+----------------------------------+
    | magic | payload length |  canonical JSON message payload  |
    |  2 B  |  4 B big-end.  |  (sorted keys, compact, UTF-8)   |
    +-------+----------------+----------------------------------+

Every frame carries one *message*: a JSON object with a ``"type"`` key.
The protocol is a strict request/reply handshake followed by a query
stream (clients may pipeline several ``query`` frames before reading the
matching ``answers`` frames; the server answers in arrival order):

========== ============ ====================================================
type       direction    meaning
========== ============ ====================================================
hello      client→server protocol version + client name (config negotiate)
welcome    server→client negotiated version, resolved ``ServingConfig``
query      client→server one query batch: ``id``, ``kind``, packed pairs
answers    server→client matching results + incremental serving counters
stats      client→server request a full ``ServingStats`` snapshot
stats_reply server→client the snapshot (``ServingStats.as_dict()`` form)
error      server→client typed failure; ``code`` selects the client error
close      client→server end of session (server drains, then replies)
bye        server→client final per-session stats; the stream then closes
========== ============ ====================================================

Serialization is *canonical* — sorted keys, compact separators — so a
message has exactly one byte representation and frames are reproducible
across interpreter runs (tests and trace tooling rely on this).  Node
identifiers survive the JSON round trip exactly: tuples (grid coordinates
and the like) are tagged (:func:`pack_node` / :func:`unpack_node`) rather
than silently becoming lists.  Route answers travel as compact
:class:`~repro.routing.tables.RouteTrace` records and are rebuilt
field-for-field, which is what makes a remote backend's answers
list-for-list identical to a local one's.

Failures are typed, never hangs: a short read mid-frame raises
:class:`FrameError` (truncated), a bad magic or an absurd length prefix
raises :class:`FrameError` (corrupt), a clean EOF *between* frames raises
:class:`SessionClosedError`, and a handshake version mismatch raises
:class:`ProtocolVersionError`.  All derive from :class:`WireError`.

Telemetry rides along: :func:`write_frame` times canonical serialization
(``serialize`` span) separately from the socket write (``wire_send``
span) and counts frames/bytes in both directions, so ``--json`` sessions
report where wire time goes.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, List, Optional, Tuple

from ..obs.metrics import NULL_REGISTRY
from ..routing.tables import RouteTrace

__all__ = [
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "MAX_FRAME_BYTES",
    "WireError",
    "FrameError",
    "ProtocolVersionError",
    "SessionClosedError",
    "BackpressureError",
    "RemoteError",
    "encode_message",
    "decode_payload",
    "encode_frame",
    "write_frame",
    "read_frame",
    "pack_node",
    "unpack_node",
    "pack_pairs",
    "unpack_pairs",
    "encode_answers",
    "decode_answers",
    "parse_endpoint",
    "hello_message",
    "check_hello",
]

#: Current wire protocol version.  Bump on any incompatible change to the
#: frame layout or message schema; ``SUPPORTED_VERSIONS`` lists everything
#: a server will still speak (see the README protocol table).
PROTOCOL_VERSION = 1
SUPPORTED_VERSIONS = (1,)

#: Frame header: 2-byte magic + 4-byte big-endian payload length.  The
#: magic makes a desynchronised or corrupted stream fail fast as a typed
#: :class:`FrameError` instead of a multi-gigabyte bogus read.
_MAGIC = b"RW"
_HEADER = struct.Struct(">2sI")

#: Default upper bound on one frame's payload.  Generous for query batches
#: (a 10k-pair route batch is well under 1 MiB) while keeping a corrupted
#: length prefix from ever looking plausible.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class WireError(RuntimeError):
    """Base class for every transport/session failure."""


class FrameError(WireError):
    """A frame could not be read: truncated payload, bad magic, an absurd
    length prefix, or undecodable message bytes."""


class ProtocolVersionError(WireError):
    """The peers do not share a protocol version."""


class SessionClosedError(WireError):
    """The byte stream ended (or the session was closed) between frames —
    a peer disconnect, not a corrupted frame."""


class BackpressureError(WireError):
    """Admission control rejected new work because queue depth is at its
    bound (``admission="reject"``)."""


class RemoteError(WireError):
    """The server reported a failure; ``code`` is its machine-readable
    class (``"bad-request"``, ``"backend"``, ``"backpressure"``, ...)."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code


# ======================================================================
# canonical (de)serialization
# ======================================================================

def encode_message(message: Dict[str, Any]) -> bytes:
    """Canonical payload bytes: sorted keys, compact separators, UTF-8.

    ``allow_nan`` stays on deliberately: distance estimates are
    legitimately ``inf`` for pairs outside every bunch, and Python's JSON
    codec round-trips ``Infinity`` losslessly.
    """
    return json.dumps(message, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def decode_payload(payload: bytes) -> Dict[str, Any]:
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"undecodable frame payload: {exc}") from None
    if not isinstance(message, dict) or "type" not in message:
        raise FrameError(f"frame payload is not a typed message: "
                         f"{type(message).__name__}")
    return message


def encode_frame(message: Dict[str, Any]) -> bytes:
    payload = encode_message(message)
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(f"message of {len(payload)} bytes exceeds the "
                         f"{MAX_FRAME_BYTES}-byte frame bound")
    return _HEADER.pack(_MAGIC, len(payload)) + payload


def write_frame(stream, message: Dict[str, Any],
                metrics=NULL_REGISTRY) -> int:
    """Serialize and send one frame; returns the bytes written.

    ``stream`` is any blocking binary writer (``socket.makefile("wb")``,
    ``io.BytesIO``).  Serialization cost and wire cost are timed into
    separate spans so sessions can tell encoding from transmission.
    """
    with metrics.span("serialize"):
        frame = encode_frame(message)
    with metrics.span("wire_send"):
        stream.write(frame)
        stream.flush()
    metrics.counter("wire_frames_sent").inc()
    metrics.counter("wire_bytes_sent").inc(len(frame))
    return len(frame)


def _read_exact(stream, n: int) -> bytes:
    chunks: List[bytes] = []
    remaining = n
    while remaining > 0:
        chunk = stream.read(remaining)
        if not chunk:
            got = n - remaining
            raise FrameError(f"stream truncated mid-frame: wanted {n} "
                             f"bytes, got {got}")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(stream, metrics=NULL_REGISTRY,
               max_frame_bytes: int = MAX_FRAME_BYTES) -> Dict[str, Any]:
    """Read one frame; blocks until a full message arrives.

    A clean EOF *before* any header byte is a peer disconnect
    (:class:`SessionClosedError`); anything short after that is a
    truncated frame; a wrong magic or an implausible length is a corrupt
    prefix (:class:`FrameError` either way).  Never hangs beyond the
    stream's own timeout semantics.
    """
    first = stream.read(1)
    if not first:
        raise SessionClosedError("connection closed by peer")
    header = first + _read_exact(stream, _HEADER.size - 1)
    magic, length = _HEADER.unpack(header)
    if magic != _MAGIC:
        raise FrameError(f"bad frame magic {magic!r} (corrupt or "
                         f"desynchronised stream)")
    if length > max_frame_bytes:
        raise FrameError(f"frame length prefix {length} exceeds the "
                         f"{max_frame_bytes}-byte bound (corrupt prefix?)")
    payload = _read_exact(stream, length)
    metrics.counter("wire_frames_received").inc()
    metrics.counter("wire_bytes_received").inc(_HEADER.size + length)
    return decode_payload(payload)


# ======================================================================
# node / answer packing
# ======================================================================

_TUPLE_TAG = "__t"


def pack_node(node: Any) -> Any:
    """JSON-safe encoding of a node id that survives the round trip.

    Ints, floats, strings, bools and ``None`` pass through; tuples (grid
    coordinates etc.) are tagged recursively so :func:`unpack_node` can
    restore them as tuples rather than lists.
    """
    if isinstance(node, tuple):
        return {_TUPLE_TAG: [pack_node(item) for item in node]}
    if isinstance(node, (int, float, str, bool)) or node is None:
        return node
    raise WireError(f"node {node!r} of type {type(node).__name__} is not "
                    f"wire-encodable (int/float/str/bool/tuple only)")


def unpack_node(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value) != {_TUPLE_TAG}:
            raise FrameError(f"malformed packed node {value!r}")
        return tuple(unpack_node(item) for item in value[_TUPLE_TAG])
    return value


def pack_pairs(pairs) -> List[List[Any]]:
    return [[pack_node(s), pack_node(t)] for s, t in pairs]


def unpack_pairs(packed) -> List[Tuple[Any, Any]]:
    try:
        return [(unpack_node(s), unpack_node(t)) for s, t in packed]
    except (TypeError, ValueError) as exc:
        raise FrameError(f"malformed pair list: {exc}") from None


def encode_answers(kind: str, values) -> List[Any]:
    """Pack a batch's answers for the wire (inverse of :func:`decode_answers`)."""
    if kind == "distance":
        return [float(value) for value in values]
    return [{
        "s": pack_node(trace.source),
        "t": pack_node(trace.target),
        "p": [pack_node(node) for node in trace.path],
        "d": trace.delivered,
        "w": trace.weight,
        "f": trace.fallback_hops,
        "e": trace.estimate,
    } for trace in values]


def decode_answers(kind: str, values) -> List[Any]:
    """Rebuild answers from the wire, field-for-field.

    Route answers come back as real :class:`RouteTrace` objects, so remote
    results compare equal (``==``, list-for-list) to local ones.
    """
    if kind == "distance":
        return [float(value) for value in values]
    try:
        return [RouteTrace(source=unpack_node(record["s"]),
                           target=unpack_node(record["t"]),
                           path=[unpack_node(node) for node in record["p"]],
                           delivered=record["d"],
                           weight=record["w"],
                           fallback_hops=record["f"],
                           estimate=record["e"])
                for record in values]
    except (KeyError, TypeError) as exc:
        raise FrameError(f"malformed route answer: {exc}") from None


# ======================================================================
# endpoints
# ======================================================================

def parse_endpoint(endpoint: str) -> Tuple[str, int]:
    """``"host:port"`` → ``(host, port)`` (host may be empty = all
    interfaces for servers, localhost for clients)."""
    host, sep, port_text = endpoint.rpartition(":")
    if not sep:
        raise ValueError(f"endpoint {endpoint!r} is not HOST:PORT")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"endpoint {endpoint!r} has a non-numeric port "
                         f"{port_text!r}") from None
    if not 0 <= port <= 65535:
        raise ValueError(f"endpoint port {port} outside 0..65535")
    return host, port


def hello_message(client_name: str = "repro-client",
                  protocol: int = PROTOCOL_VERSION) -> Dict[str, Any]:
    return {"type": "hello", "protocol": protocol, "client": client_name}


def check_hello(message: Dict[str, Any]) -> Optional[str]:
    """Server-side handshake validation; an error string or ``None``."""
    if message.get("type") != "hello":
        return f"expected hello, got {message.get('type')!r}"
    if message.get("protocol") not in SUPPORTED_VERSIONS:
        return (f"unsupported protocol version {message.get('protocol')!r} "
                f"(server speaks {list(SUPPORTED_VERSIONS)})")
    return None
