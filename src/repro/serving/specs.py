"""Graph generator specs: the ``name:key=value,...`` mini-language.

Shared by the ``repro-serve`` CLI (``--graph``) and by
:func:`~repro.serving.backend.open_service` (``ServingConfig.graph_spec``),
so a serving session is fully reproducible from its config alone::

    er:n=200,p=0.05,seed=3,weights=uniform:1:100
    grid:rows=10,cols=12          ba:n=150,m=2
    geometric:n=120,radius=0.18   tree:n=100        path:n=64
    road:rows=16,cols=16,highway_every=4,shortcut_fraction=0.03
    powerlaw:n=300,exponent=2.3   fattree:k=6,hosts=2

The optional ``weights=...`` key selects a weight distribution: ``unit``,
``uniform:LO:HI``, ``mixed``, or ``heavy``.  Families that own their weight
structure (``road``, ``fattree``) reject ``weights=`` and expose their own
weight knobs instead.

Families dispatch through the :data:`~repro.serving.registry.GRAPH_FAMILIES`
registry, so downstream code can add one::

    from repro.serving import register_graph_family

    @register_graph_family("ring-of-cliques")
    def _ring_of_cliques(want, weights, seed, spec):
        return build_it(want("n", int), want("cliques", int, 4),
                        weights, seed)

A builder receives ``want(key, cast, default=None)`` (consuming parameter
accessor — a missing key without a default raises, and unconsumed keys are
reported after the builder returns), the parsed ``weights`` strategy (or
``None``), the ``seed``, and the raw spec string for error messages.
"""

from __future__ import annotations

from typing import Dict, Optional

from .. import graphs
from ..graphs.weighted_graph import WeightedGraph
from .registry import GRAPH_FAMILIES, register_graph_family

__all__ = ["parse_graph_spec"]


def _parse_weights(spec: Optional[str]):
    if spec is None or spec == "unit":
        return graphs.unit_weights()
    if spec.startswith("uniform"):
        parts = spec.split(":")
        low = int(parts[1]) if len(parts) > 1 else 1
        high = int(parts[2]) if len(parts) > 2 else 100
        return graphs.uniform_weights(low, high)
    if spec == "mixed":
        return graphs.mixed_scale_weights()
    if spec == "heavy":
        return graphs.heavy_tailed_weights()
    raise ValueError(f"unknown weight spec {spec!r}")


@register_graph_family("er")
def _er_family(want, weights, seed, spec):
    return graphs.erdos_renyi_graph(want("n", int), want("p", float),
                                    weights, seed=seed)


@register_graph_family("grid")
def _grid_family(want, weights, seed, spec):
    return graphs.grid_graph(want("rows", int), want("cols", int),
                             weights, seed=seed)


@register_graph_family("ba")
def _ba_family(want, weights, seed, spec):
    return graphs.barabasi_albert_graph(want("n", int), want("m", int, 2),
                                        weights, seed=seed)


@register_graph_family("geometric")
def _geometric_family(want, weights, seed, spec):
    return graphs.random_geometric_graph(want("n", int),
                                         want("radius", float),
                                         weights, seed=seed)


@register_graph_family("road")
def _road_family(want, weights, seed, spec):
    if weights is not None:
        raise ValueError(
            f"the road family owns its weights (highway corridors vs "
            f"local streets); drop 'weights=' from {spec!r} and tune "
            f"highway_weight/street_low/street_high instead")
    return graphs.road_grid_graph(
        want("rows", int), want("cols", int),
        highway_every=want("highway_every", int, 4),
        highway_weight=want("highway_weight", int, 1),
        street_low=want("street_low", int, 5),
        street_high=want("street_high", int, 12),
        shortcut_fraction=want("shortcut_fraction", float, 0.02),
        seed=seed)


@register_graph_family("powerlaw")
def _powerlaw_family(want, weights, seed, spec):
    return graphs.powerlaw_graph(
        want("n", int),
        exponent=want("exponent", float, 2.5),
        min_degree=want("min_degree", int, 1),
        weights=weights, seed=seed)


@register_graph_family("fattree")
def _fattree_family(want, weights, seed, spec):
    if weights is not None:
        raise ValueError(
            f"the fattree family owns its weights (one knob per fabric "
            f"tier); drop 'weights=' from {spec!r} and tune "
            f"core_weight/aggregation_weight/host_weight instead")
    k = want("k", int, 4)
    return graphs.fat_tree_graph(
        k,
        hosts_per_edge=want("hosts", int, max(1, k // 2)),
        core_weight=want("core_weight", int, 1),
        aggregation_weight=want("aggregation_weight", int, 2),
        host_weight=want("host_weight", int, 10),
        seed=seed)


@register_graph_family("tree")
def _tree_family(want, weights, seed, spec):
    return graphs.random_tree(want("n", int), weights, seed=seed)


@register_graph_family("path")
def _path_family(want, weights, seed, spec):
    return graphs.path_graph(want("n", int), weights, seed=seed)


def parse_graph_spec(spec: str) -> WeightedGraph:
    """Build a graph from a ``name:key=value,...`` spec string."""
    name, _, arg_text = spec.partition(":")
    params: Dict[str, str] = {}
    if arg_text:
        for item in arg_text.split(","):
            key, eq, value = item.partition("=")
            if not eq:
                raise ValueError(f"malformed graph spec item {item!r} in {spec!r}")
            params[key.strip()] = value.strip()

    weights = _parse_weights(params.pop("weights", None)) \
        if "weights" in params else None
    seed = int(params.pop("seed", 0))

    def want(key: str, cast, default=None):
        if key in params:
            return cast(params.pop(key))
        if default is None:
            raise ValueError(f"graph spec {spec!r} is missing {key!r}")
        return default

    if name not in GRAPH_FAMILIES:
        raise ValueError(
            f"unknown graph family {name!r} in spec {spec!r}; "
            f"available: {', '.join(GRAPH_FAMILIES.names())}")
    graph = GRAPH_FAMILIES.get(name)(want, weights, seed, spec)
    if params:
        raise ValueError(f"unused graph spec keys {sorted(params)} in {spec!r}")
    return graph
