"""Graph generator specs: the ``name:key=value,...`` mini-language.

Shared by the ``repro-serve`` CLI (``--graph``) and by
:func:`~repro.serving.backend.open_service` (``ServingConfig.graph_spec``),
so a serving session is fully reproducible from its config alone::

    er:n=200,p=0.05,seed=3,weights=uniform:1:100
    grid:rows=10,cols=12          ba:n=150,m=2
    geometric:n=120,radius=0.18   tree:n=100        path:n=64
    road:rows=16,cols=16,highway_every=4,shortcut_fraction=0.03

The optional ``weights=...`` key selects a weight distribution: ``unit``,
``uniform:LO:HI``, ``mixed``, or ``heavy``.
"""

from __future__ import annotations

from typing import Dict, Optional

from .. import graphs
from ..graphs.weighted_graph import WeightedGraph

__all__ = ["parse_graph_spec"]


def _parse_weights(spec: Optional[str]):
    if spec is None or spec == "unit":
        return graphs.unit_weights()
    if spec.startswith("uniform"):
        parts = spec.split(":")
        low = int(parts[1]) if len(parts) > 1 else 1
        high = int(parts[2]) if len(parts) > 2 else 100
        return graphs.uniform_weights(low, high)
    if spec == "mixed":
        return graphs.mixed_scale_weights()
    if spec == "heavy":
        return graphs.heavy_tailed_weights()
    raise ValueError(f"unknown weight spec {spec!r}")


def parse_graph_spec(spec: str) -> WeightedGraph:
    """Build a graph from a ``name:key=value,...`` spec string."""
    name, _, arg_text = spec.partition(":")
    params: Dict[str, str] = {}
    if arg_text:
        for item in arg_text.split(","):
            key, eq, value = item.partition("=")
            if not eq:
                raise ValueError(f"malformed graph spec item {item!r} in {spec!r}")
            params[key.strip()] = value.strip()

    weights = _parse_weights(params.pop("weights", None)) \
        if "weights" in params else None
    seed = int(params.pop("seed", 0))

    def want(key: str, cast, default=None):
        if key in params:
            return cast(params.pop(key))
        if default is None:
            raise ValueError(f"graph spec {spec!r} is missing {key!r}")
        return default

    if name == "er":
        graph = graphs.erdos_renyi_graph(want("n", int), want("p", float),
                                         weights, seed=seed)
    elif name == "grid":
        graph = graphs.grid_graph(want("rows", int), want("cols", int),
                                  weights, seed=seed)
    elif name == "ba":
        graph = graphs.barabasi_albert_graph(want("n", int), want("m", int, 2),
                                             weights, seed=seed)
    elif name == "geometric":
        graph = graphs.random_geometric_graph(want("n", int),
                                              want("radius", float),
                                              weights, seed=seed)
    elif name == "road":
        if weights is not None:
            raise ValueError(
                f"the road family owns its weights (highway corridors vs "
                f"local streets); drop 'weights=' from {spec!r} and tune "
                f"highway_weight/street_low/street_high instead")
        graph = graphs.road_grid_graph(
            want("rows", int), want("cols", int),
            highway_every=want("highway_every", int, 4),
            highway_weight=want("highway_weight", int, 1),
            street_low=want("street_low", int, 5),
            street_high=want("street_high", int, 12),
            shortcut_fraction=want("shortcut_fraction", float, 0.02),
            seed=seed)
    elif name == "tree":
        graph = graphs.random_tree(want("n", int), weights, seed=seed)
    elif name == "path":
        graph = graphs.path_graph(want("n", int), weights, seed=seed)
    else:
        raise ValueError(f"unknown graph family {name!r} in spec {spec!r}")
    if params:
        raise ValueError(f"unused graph spec keys {sorted(params)} in {spec!r}")
    return graph
