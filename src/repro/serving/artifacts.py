"""Persistent, versioned artifacts for built routing structures.

Building a compact-routing hierarchy is the expensive preprocessing phase of
Corollary 4.14; serving queries from it is cheap.  Artifacts decouple the
two: a hierarchy (or a PDE result) is built once, written to disk, and any
number of serving processes load it back and answer queries *identically* to
the in-memory original (the round-trip tests assert bit-for-bit equal query
answers).

Two on-disk formats are readable; format 2 is the default writer.

Format 1 (legacy, still loadable)::

    REPRO-ARTIFACT v1\\n                      <- magic + format version
    {header JSON}\\n                          <- kind, payload size + sha256,
                                                state version, metadata
    <payload bytes>                           <- pickled builtin-only state

The v1 payload is the ``export_state()`` snapshot of the object serialised
with :mod:`pickle` — loading deserialises the *entire* hierarchy up front,
which at scale dominates process start-up and gives every co-located worker
a private copy of every table.

Format 2 (section table, mmap-able)::

    REPRO-ARTIFACT v2\\n                      <- magic + format version
    {header JSON}\\n                          <- kind, state version, metadata,
                                                sections: {name: {offset,
                                                length, sha256}}
    <section bytes, concatenated>             <- offsets relative to payload

The query-hot tables — node intern table, per-node pivot rows, per-(level,
node) bunch rows — are fixed-width binary records (stdlib ``struct``; see
:mod:`repro.routing.tables`) that the loader ``mmap``\\ s and reads by offset
arithmetic: nothing is deserialised until a query touches it, first answers
arrive after reading only the pages they need, and co-located workers
serving the same artifact share the physical pages through the OS page
cache instead of holding N private copies.  Construction-time state
(per-level estimates, destination trees, skeleton structures) lives in
separate pickled sections materialised lazily on first access.

Every section carries its own SHA-256.  Opening a v2 artifact validates the
header and section bounds (truncation and out-of-range offsets fail fast)
and verifies the query-hot record tables' checksums — a sequential hash
over the mapping, no deserialisation — so corrupt records can never answer
queries; lazily-pickled sections are verified when they first materialise,
and :func:`verify_artifact` checks every section of either format on
demand (the CI smoke job and the corruption tests use it).  Artifacts are trusted
local files (pickle is not safe against adversarial bytes — checksums
detect corruption, not tampering).

Per-shard **sub-artifacts** (:func:`write_shard_artifacts`) slice a format-2
artifact by *source node*: shard ``w`` keeps the bunch rows (and the
destination trees they can reach) only for sources with
``stable_node_hash(source) % workers == w``, and drops the construction-time
aux sections entirely.  A sharded front-end whose partitioner routes every
query to its source's shard (``partitioner="hash_source"``) answers
identically to full-artifact serving while each worker maps only its slice.
"""

from __future__ import annotations

import hashlib
import io
import json
import mmap
import os
import pickle
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Dict, List, Optional, Tuple

from ..congest.metrics import CongestMetrics
from ..core.pde import PDEResult
from ..graphs.weighted_graph import WeightedGraph
from ..routing.cluster_trees import TreeFamily
from ..routing.tables import (
    ColumnarQueryKernel,
    InternedBunchLevel,
    InternedPivotView,
    NodeInternTable,
    OffsetRecordTable,
    PivotRowBackend,
    PivotRowTable,
    RecordTableError,
)
from ..routing.tz_hierarchy import CompactRoutingHierarchy, LazyLevelData
from .workloads import stable_node_hash

__all__ = [
    "ArtifactError",
    "ArtifactInfo",
    "ArtifactV2Reader",
    "FORMAT_VERSION",
    "SUPPORTED_FORMATS",
    "KIND_HIERARCHY",
    "KIND_PDE",
    "write_artifact",
    "write_artifact_v2",
    "read_artifact",
    "artifact_info",
    "verify_artifact",
    "save_hierarchy",
    "load_hierarchy",
    "save_pde",
    "load_pde",
    "write_shard_artifacts",
    "shard_artifact_path",
]

MAGIC = b"REPRO-ARTIFACT"

#: The default *writer* format; both listed formats stay loadable.
FORMAT_VERSION = 2
SUPPORTED_FORMATS = (1, 2)

KIND_HIERARCHY = "routing_hierarchy"
KIND_PDE = "pde_result"

#: Pickle protocol pinned for reproducible payload bytes across interpreters.
_PICKLE_PROTOCOL = 4


class ArtifactError(RuntimeError):
    """Raised for malformed, corrupt or mismatching artifact files."""


@dataclass
class ArtifactInfo:
    """Parsed artifact header (everything except the payload).

    For format-2 artifacts ``sections`` maps each section name to its
    ``{"offset", "length", "sha256"}`` entry, ``payload_bytes`` is the total
    section byte count, and ``payload_sha256`` is the SHA-256 over the
    concatenated per-section digests (a stable content identity that can be
    recomputed without hashing the payload twice).
    """

    kind: str
    format_version: int
    state_version: int
    payload_bytes: int
    payload_sha256: str
    metadata: Dict[str, Any] = field(default_factory=dict)
    path: Optional[str] = None
    sections: Optional[Dict[str, Dict[str, Any]]] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "format_version": self.format_version,
            "state_version": self.state_version,
            "payload_bytes": self.payload_bytes,
            "payload_sha256": self.payload_sha256,
            "metadata": dict(self.metadata),
            "path": self.path,
            "sections": (None if self.sections is None
                         else {name: dict(entry)
                               for name, entry in self.sections.items()}),
        }


# ----------------------------------------------------------------------
# header parsing (shared by both formats)
# ----------------------------------------------------------------------
def _parse_magic(magic_line: bytes, path: str) -> int:
    if not magic_line.startswith(MAGIC):
        raise ArtifactError(f"{path}: not a repro artifact (bad magic)")
    suffix = magic_line[len(MAGIC):].strip()
    version: Optional[int] = None
    if suffix.startswith(b"v"):
        try:
            version = int(suffix[1:])
        except ValueError:
            version = None
    if version not in SUPPORTED_FORMATS:
        raise ArtifactError(
            f"{path}: unsupported artifact format {magic_line!r} "
            f"(this build reads versions {list(SUPPORTED_FORMATS)})")
    return version


def _read_header(fh: io.BufferedReader, path: str) -> ArtifactInfo:
    version = _parse_magic(fh.readline(), path)
    header_line = fh.readline()
    try:
        header = json.loads(header_line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ArtifactError(f"{path}: corrupt artifact header: {exc}") from exc
    try:
        sections = None
        if version >= 2:
            sections = {name: dict(entry)
                        for name, entry in header["sections"].items()}
        return ArtifactInfo(
            kind=header["kind"],
            format_version=version,
            state_version=header["state_version"],
            payload_bytes=header["payload_bytes"],
            payload_sha256=header["payload_sha256"],
            metadata=dict(header.get("metadata", {})),
            path=path,
            sections=sections,
        )
    except (KeyError, TypeError, AttributeError) as exc:
        raise ArtifactError(f"{path}: artifact header is missing {exc}") from exc


def artifact_info(path: str) -> ArtifactInfo:
    """Read only the header of an artifact (cheap; payload is not touched)."""
    with open(path, "rb") as fh:
        return _read_header(fh, path)


# ----------------------------------------------------------------------
# format 1: monolithic pickled payload
# ----------------------------------------------------------------------
def write_artifact(path: str, kind: str, state: Dict[str, Any],
                   metadata: Optional[Dict[str, Any]] = None,
                   state_version: int = 1) -> ArtifactInfo:
    """Write ``state`` (a builtin-only snapshot) as a format-1 artifact.

    Returns the :class:`ArtifactInfo` that was written.  The write goes
    through a temporary file in the same directory followed by an atomic
    rename, so readers never observe a half-written artifact.
    """
    payload = pickle.dumps(state, protocol=_PICKLE_PROTOCOL)
    info = ArtifactInfo(
        kind=kind,
        format_version=1,
        state_version=state_version,
        payload_bytes=len(payload),
        payload_sha256=hashlib.sha256(payload).hexdigest(),
        metadata=dict(metadata or {}),
        path=path,
    )
    header = {
        "kind": info.kind,
        "state_version": info.state_version,
        "payload_bytes": info.payload_bytes,
        "payload_sha256": info.payload_sha256,
        "metadata": info.metadata,
    }
    _atomic_write(path, b"".join([
        MAGIC + b" v1\n",
        json.dumps(header, sort_keys=True).encode("utf-8") + b"\n",
        payload,
    ]))
    return info


def read_artifact(path: str, expected_kind: Optional[str] = None
                  ) -> Tuple[Dict[str, Any], ArtifactInfo]:
    """Read a format-1 artifact, verifying integrity; returns ``(state, info)``.

    Raises :class:`ArtifactError` on bad magic, unsupported version, kind
    mismatch, truncation, or checksum failure.  Format-2 artifacts hold a
    section table rather than one pickled state blob — read those through
    :func:`load_hierarchy` / :func:`load_pde` or :class:`ArtifactV2Reader`.
    """
    with open(path, "rb") as fh:
        info = _read_header(fh, path)
        if info.format_version != 1:
            raise ArtifactError(
                f"{path}: format-{info.format_version} artifact has no "
                f"monolithic payload; use load_hierarchy/load_pde or "
                f"ArtifactV2Reader instead of read_artifact")
        if expected_kind is not None and info.kind != expected_kind:
            raise ArtifactError(
                f"{path}: artifact holds a {info.kind!r}, expected "
                f"{expected_kind!r}")
        payload = fh.read()
    if len(payload) != info.payload_bytes:
        raise ArtifactError(
            f"{path}: truncated payload ({len(payload)} bytes, header "
            f"says {info.payload_bytes})")
    digest = hashlib.sha256(payload).hexdigest()
    if digest != info.payload_sha256:
        raise ArtifactError(f"{path}: payload checksum mismatch "
                            f"({digest} != {info.payload_sha256})")
    try:
        state = pickle.loads(payload)
    except Exception as exc:  # pickle raises a zoo of exception types
        raise ArtifactError(f"{path}: payload failed to deserialise: {exc}") from exc
    return state, info


def _atomic_write(path: str, blob: bytes) -> None:
    tmp_path = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp_path, "wb") as fh:
            fh.write(blob)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


# ----------------------------------------------------------------------
# format 2: offset-indexed section table
# ----------------------------------------------------------------------
def write_artifact_v2(path: str, kind: str, sections: Dict[str, bytes],
                      metadata: Optional[Dict[str, Any]] = None,
                      state_version: int = 1) -> ArtifactInfo:
    """Write named byte sections as a format-2 artifact (atomically).

    Section order is preserved; offsets are relative to the payload start
    (the byte after the header line), so the header can be built before any
    payload byte is written.
    """
    section_table: Dict[str, Dict[str, Any]] = {}
    identity = hashlib.sha256()
    offset = 0
    for name, blob in sections.items():
        digest = hashlib.sha256(blob).hexdigest()
        section_table[name] = {"offset": offset, "length": len(blob),
                               "sha256": digest}
        identity.update(digest.encode("ascii"))
        offset += len(blob)
    info = ArtifactInfo(
        kind=kind,
        format_version=2,
        state_version=state_version,
        payload_bytes=offset,
        payload_sha256=identity.hexdigest(),
        metadata=dict(metadata or {}),
        path=path,
        sections=section_table,
    )
    header = {
        "kind": info.kind,
        "state_version": info.state_version,
        "payload_bytes": info.payload_bytes,
        "payload_sha256": info.payload_sha256,
        "metadata": info.metadata,
        "sections": section_table,
    }
    _atomic_write(path, b"".join(
        [MAGIC + b" v2\n",
         json.dumps(header, sort_keys=True).encode("utf-8") + b"\n"]
        + list(sections.values())))
    return info


class ArtifactV2Reader:
    """mmap-backed reader for one format-2 artifact.

    Opening validates the header and that every section lies within the
    mapped payload (truncated files and out-of-range offsets raise
    immediately).  Section *bytes* are then served as zero-copy memoryviews
    over the mapping: :meth:`section_view` for the fixed-width record
    tables that are read incrementally by the query path, and
    :meth:`section_bytes` (checksum verified on first materialisation) for
    sections that are decoded whole.  :meth:`verify` checks every
    section's checksum.

    The reader must outlive any views handed out; the lazy hierarchy keeps
    a reference for exactly that reason.
    """

    def __init__(self, path: str, expected_kind: Optional[str] = None) -> None:
        self.path = path
        with open(path, "rb") as fh:
            self.info = _read_header(fh, path)
            if self.info.format_version != 2:
                raise ArtifactError(
                    f"{path}: expected a format-2 artifact, found format "
                    f"{self.info.format_version}")
            if expected_kind is not None and self.info.kind != expected_kind:
                raise ArtifactError(
                    f"{path}: artifact holds a {self.info.kind!r}, expected "
                    f"{expected_kind!r}")
            self._payload_start = fh.tell()
            available = os.fstat(fh.fileno()).st_size - self._payload_start
            if available < self.info.payload_bytes:
                raise ArtifactError(
                    f"{path}: truncated payload ({available} bytes, header "
                    f"says {self.info.payload_bytes})")
            for name, entry in self.info.sections.items():
                offset, length = entry["offset"], entry["length"]
                if (not isinstance(offset, int) or not isinstance(length, int)
                        or offset < 0 or length < 0
                        or offset + length > self.info.payload_bytes):
                    raise ArtifactError(
                        f"{path}: section {name!r} is out of bounds "
                        f"(offset {offset}, length {length}, payload "
                        f"{self.info.payload_bytes} bytes)")
            self._mmap = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        self._view = memoryview(self._mmap)
        self._verified: set = set()
        self._closed = False

    # -- sections -------------------------------------------------------
    def section_names(self) -> Tuple[str, ...]:
        return tuple(self.info.sections)

    def has_section(self, name: str) -> bool:
        return name in self.info.sections

    def _entry(self, name: str) -> Dict[str, Any]:
        try:
            return self.info.sections[name]
        except KeyError:
            raise ArtifactError(
                f"{self.path}: artifact has no section {name!r}; available: "
                f"{', '.join(self.info.sections)}") from None

    def section_view(self, name: str):
        """Zero-copy view of a section (no checksum; used for the record
        tables the query path reads incrementally — :func:`verify_artifact`
        covers them on demand)."""
        entry = self._entry(name)
        start = self._payload_start + entry["offset"]
        return self._view[start:start + entry["length"]]

    def section_bytes(self, name: str):
        """Section view with its checksum verified (once per section)."""
        view = self.section_view(name)
        if name not in self._verified:
            self.verify_section(name)
        return view

    #: Advice names accepted by :meth:`advise`, mapped to mmap flag names.
    _ADVICE_FLAGS = {"willneed": "MADV_WILLNEED",
                     "sequential": "MADV_SEQUENTIAL",
                     "random": "MADV_RANDOM"}

    def advise(self, name: str, advice: str = "willneed") -> bool:
        """Readahead hint for one section's pages; ``True`` if applied.

        Bulk kernel scans walk the record sections front to back, so the
        loader issues ``WILLNEED`` on them at open.  Strictly a hint: on
        platforms without ``mmap.madvise`` (or without the requested flag)
        this is a no-op returning ``False``, and failures of the syscall
        itself are swallowed — answers never depend on it.
        """
        try:
            flag_name = self._ADVICE_FLAGS[advice]
        except KeyError:
            raise ValueError(f"unknown madvise advice {advice!r}; expected "
                             f"one of {sorted(self._ADVICE_FLAGS)}") from None
        flag = getattr(mmap, flag_name, None)
        if flag is None or not hasattr(self._mmap, "madvise"):
            return False
        entry = self._entry(name)
        start = self._payload_start + entry["offset"]
        # madvise requires a page-aligned start: round down and widen the
        # length by the same delta, clamped to the mapping.
        page = mmap.PAGESIZE
        aligned = start - (start % page)
        length = min(entry["length"] + (start - aligned),
                     len(self._mmap) - aligned)
        if length <= 0:
            return False
        try:
            self._mmap.madvise(flag, aligned, length)
        except (OSError, ValueError):
            return False
        return True

    def verify_section(self, name: str) -> None:
        entry = self._entry(name)
        digest = hashlib.sha256(self.section_view(name)).hexdigest()
        if digest != entry["sha256"]:
            raise ArtifactError(
                f"{self.path}: section {name!r} checksum mismatch "
                f"({digest} != {entry['sha256']})")
        self._verified.add(name)

    def verify(self) -> ArtifactInfo:
        """Verify every section's checksum; returns the header info."""
        for name in self.info.sections:
            self.verify_section(name)
        return self.info

    def load_pickle(self, name: str) -> Any:
        try:
            return pickle.loads(self.section_bytes(name))
        except ArtifactError:
            raise
        except Exception as exc:
            raise ArtifactError(
                f"{self.path}: section {name!r} failed to deserialise: "
                f"{exc}") from exc

    def load_json(self, name: str) -> Any:
        try:
            return json.loads(bytes(self.section_bytes(name)).decode("utf-8"))
        except ArtifactError:
            raise
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ArtifactError(
                f"{self.path}: section {name!r} is not valid JSON: "
                f"{exc}") from exc

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._view.release()
            try:
                self._mmap.close()
            except BufferError:
                # A section view handed out earlier is still alive; the
                # mapping is released when the last view is garbage
                # collected instead.
                pass


def verify_artifact(path: str) -> ArtifactInfo:
    """Full integrity check of either format; returns the header info.

    Format 1: payload length + checksum.  Format 2: every section's bounds
    and SHA-256.  Raises :class:`ArtifactError` on any mismatch.
    """
    info = artifact_info(path)
    if info.format_version == 1:
        with open(path, "rb") as fh:
            _read_header(fh, path)
            payload = fh.read()
        if len(payload) != info.payload_bytes:
            raise ArtifactError(
                f"{path}: truncated payload ({len(payload)} bytes, header "
                f"says {info.payload_bytes})")
        digest = hashlib.sha256(payload).hexdigest()
        if digest != info.payload_sha256:
            raise ArtifactError(f"{path}: payload checksum mismatch "
                                f"({digest} != {info.payload_sha256})")
        return info
    reader = ArtifactV2Reader(path)
    try:
        return reader.verify()
    finally:
        reader.close()


# ----------------------------------------------------------------------
# hierarchy <-> v2 sections
# ----------------------------------------------------------------------
def _dumps(state: Any) -> bytes:
    return pickle.dumps(state, protocol=_PICKLE_PROTOCOL)


def _hierarchy_meta(hierarchy: CompactRoutingHierarchy,
                    num_nodes: int) -> Dict[str, Any]:
    return {
        "state_version": hierarchy.STATE_VERSION,
        "k": hierarchy.k,
        "epsilon": hierarchy.epsilon,
        "mode": hierarchy.mode,
        "l0": hierarchy.l0,
        "num_nodes": num_nodes,
        "level_meta": [
            {"h": data.h, "sigma": data.sigma,
             "skeleton_level": data.skeleton_level,
             "overflow_count": data.overflow_count}
            for data in hierarchy.level_data
        ],
        "build_params": dict(hierarchy.build_params),
        "sub_artifact": None,
    }


def _hierarchy_sections(hierarchy: CompactRoutingHierarchy,
                        compress_node_table: bool = False) -> Dict[str, bytes]:
    """Encode a built hierarchy as the format-2 section family."""
    graph_nodes = hierarchy.graph.nodes()
    intern = NodeInternTable(graph_nodes)
    index_of = intern.index_of
    k = hierarchy.k
    n = len(graph_nodes)

    pivot_rows: List[List[Tuple[int, float]]] = []
    for node in graph_nodes:
        row = []
        for level in range(1, k):
            pivot = hierarchy.pivots[level][node]
            dist = hierarchy.pivot_dists[level][node]
            row.append((PivotRowTable.NO_PIVOT if pivot is None
                        else index_of(pivot), float(dist)))
        pivot_rows.append(row)

    bunch_rows: List[Optional[List[Tuple[int, float]]]] = []
    for level in range(k):
        bunches = hierarchy.level_data[level].bunches
        for node in graph_nodes:
            row = bunches.get(node)
            if row is None:
                bunch_rows.append(None)
            else:
                bunch_rows.append([(index_of(s), float(est))
                                   for s, est in row.items()])

    sections: Dict[str, bytes] = {}
    sections["meta"] = json.dumps(_hierarchy_meta(hierarchy, n),
                                  sort_keys=True).encode("utf-8")
    sections["nodes"] = intern.encode(compress=compress_node_table)
    sections["pivots"] = PivotRowTable.encode(n, k - 1, pivot_rows)
    sections["bunches"] = OffsetRecordTable.encode(bunch_rows)
    sections["graph"] = _dumps(hierarchy.graph.export_state())
    sections["levels"] = _dumps({
        "levels": dict(hierarchy.levels),
        "level_sets": [sorted(s, key=repr) for s in hierarchy.level_sets],
    })
    for level in range(k):
        data = hierarchy.level_data[level]
        sections[f"level_aux_{level}"] = _dumps({
            "sources": sorted(data.sources, key=repr),
            "estimates": {v: dict(row) for v, row in data.estimates.items()},
            "next_pivot": dict(data.next_pivot),
            "next_pivot_dist": dict(data.next_pivot_dist),
        })
        trees = data.trees
        sections[f"level_trees_{level}"] = _dumps(
            None if trees is None else trees.export_state())
    sections["skeleton"] = _dumps({
        "pde_skel": (hierarchy.pde_skel.export_state()
                     if hierarchy.pde_skel is not None else None),
        "skeleton_graph": (hierarchy.skeleton_graph.export_state()
                           if hierarchy.skeleton_graph is not None else None),
        "attach_trees": (hierarchy.attach_trees.export_state()
                         if hierarchy.attach_trees is not None else None),
        "skeleton_trees": {level: trees.export_state()
                           for level, trees in hierarchy.skeleton_trees.items()},
    })
    sections["metrics"] = _dumps(hierarchy.metrics.export_state())
    return sections


class _LazyHierarchy(CompactRoutingHierarchy):
    """A hierarchy whose heavy sections materialise on first access.

    Bunches and pivot rows are mmap-backed mapping views (zero-copy; the
    query hot path reads fixed-width records straight from the page
    cache); per-level aux/tree sections and the skeleton-mode structures
    unpickle lazily.  Query answers are identical to the eagerly-loaded
    hierarchy — the views implement the exact mapping contract the query
    code already uses.
    """

    _SKELETON_ATTRS = ("pde_skel", "skeleton_graph", "attach_trees",
                       "skeleton_trees")

    def __init__(self, reader: ArtifactV2Reader, **kwargs) -> None:
        super().__init__(pde_skel=None, skeleton_graph=None, attach_trees=None,
                         skeleton_trees={}, **kwargs)
        # The skeleton attributes come back through __getattr__, which only
        # fires for *missing* instance attributes — drop the placeholders.
        for name in self._SKELETON_ATTRS:
            del self.__dict__[name]
        self._artifact_reader = reader

    def __getattr__(self, name: str):
        if name in type(self)._SKELETON_ATTRS:
            self._materialise_skeleton()
            return self.__dict__[name]
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}")

    def _materialise_skeleton(self) -> None:
        state = self._artifact_reader.load_pickle("skeleton")
        self.__dict__["pde_skel"] = (
            PDEResult.from_state(state["pde_skel"])
            if state["pde_skel"] is not None else None)
        self.__dict__["skeleton_graph"] = (
            WeightedGraph.from_state(state["skeleton_graph"])
            if state["skeleton_graph"] is not None else None)
        self.__dict__["attach_trees"] = (
            TreeFamily.from_state(state["attach_trees"])
            if state["attach_trees"] is not None else None)
        self.__dict__["skeleton_trees"] = {
            level: TreeFamily.from_state(tree_state)
            for level, tree_state in state["skeleton_trees"].items()}


def _load_level_aux(reader: ArtifactV2Reader, level: int) -> Dict[str, Any]:
    name = f"level_aux_{level}"
    if not reader.has_section(name):
        raise ArtifactError(
            f"{reader.path}: section {name!r} is not present — per-shard "
            f"sub-artifacts drop construction-time aux sections; load the "
            f"full artifact to export or report on this hierarchy")
    state = reader.load_pickle(name)
    return {
        "sources": set(state["sources"]),
        "estimates": {v: dict(row) for v, row in state["estimates"].items()},
        "next_pivot": dict(state["next_pivot"]),
        "next_pivot_dist": dict(state["next_pivot_dist"]),
    }


def _load_level_trees(reader: ArtifactV2Reader, level: int
                      ) -> Optional[TreeFamily]:
    state = reader.load_pickle(f"level_trees_{level}")
    return None if state is None else TreeFamily.from_state(state)


def _load_hierarchy_v2(path: str) -> Tuple[CompactRoutingHierarchy, ArtifactInfo]:
    reader = ArtifactV2Reader(path, expected_kind=KIND_HIERARCHY)
    try:
        meta = reader.load_json("meta")
        version = meta.get("state_version")
        if version != CompactRoutingHierarchy.STATE_VERSION:
            raise ArtifactError(
                f"{path}: unsupported hierarchy state version {version!r} "
                f"(expected {CompactRoutingHierarchy.STATE_VERSION})")
        intern = NodeInternTable.decode(reader.section_bytes("nodes"))
        # section_bytes (not section_view): the record tables are verified
        # once at open — a sequential hash over the mapping, no
        # deserialisation — so a flipped byte cannot silently answer
        # queries; afterwards the views stay zero-copy.
        pivot_table = PivotRowTable(reader.section_bytes("pivots"))
        bunch_table = OffsetRecordTable(reader.section_bytes("bunches"))
        k = meta["k"]
        n = meta["num_nodes"]
        if len(intern) != n:
            raise ArtifactError(
                f"{path}: intern table holds {len(intern)} nodes, meta "
                f"says {n}")
        if pivot_table.num_nodes != n or pivot_table.num_levels != k - 1:
            raise ArtifactError(
                f"{path}: pivot table shape {pivot_table.num_nodes}x"
                f"{pivot_table.num_levels} does not match n={n}, k={k}")
        if bunch_table.num_rows != k * n:
            raise ArtifactError(
                f"{path}: bunch table has {bunch_table.num_rows} rows, "
                f"expected {k * n}")
        graph = WeightedGraph.from_state(reader.load_pickle("graph"))
        levels_state = reader.load_pickle("levels")
        metrics = CongestMetrics.from_state(reader.load_pickle("metrics"))

        level_data = [
            LazyLevelData(
                bunches=InternedBunchLevel(bunch_table, intern, level, n),
                h=entry["h"],
                sigma=entry["sigma"],
                skeleton_level=entry["skeleton_level"],
                overflow_count=entry["overflow_count"],
                aux_loader=partial(_load_level_aux, reader, level),
                trees_loader=partial(_load_level_trees, reader, level),
            )
            for level, entry in enumerate(meta["level_meta"])
        ]
        pivots = {level: InternedPivotView.pivots(pivot_table, intern, level - 1)
                  for level in range(1, k)}
        pivot_dists = {
            level: InternedPivotView.distances(pivot_table, intern, level - 1)
            for level in range(1, k)}

        hierarchy = _LazyHierarchy(
            reader,
            graph=graph, k=k, epsilon=meta["epsilon"], mode=meta["mode"],
            l0=meta["l0"], levels=dict(levels_state["levels"]),
            level_sets=[set(s) for s in levels_state["level_sets"]],
            level_data=level_data, pivots=pivots, pivot_dists=pivot_dists,
            metrics=metrics)
        hierarchy.build_params = dict(meta["build_params"])
        hierarchy._pivot_backend = PivotRowBackend(pivot_table, intern)
        hierarchy._columnar_kernel = ColumnarQueryKernel(
            intern, pivot_table, bunch_table, k)
        # Bulk kernel scans walk the record sections front to back; hint
        # the kernel so readahead stages the pages before the first batch.
        hierarchy._madvise_sections = tuple(
            name for name in ("nodes", "pivots", "bunches")
            if reader.advise(name, "willneed"))
        return hierarchy, reader.info
    except RecordTableError as exc:
        reader.close()
        raise ArtifactError(f"{path}: corrupt record table: {exc}") from exc
    except (KeyError, TypeError, ValueError) as exc:
        reader.close()
        raise ArtifactError(f"{path}: invalid hierarchy sections: {exc}") from exc
    except BaseException:
        reader.close()
        raise


# ----------------------------------------------------------------------
# typed entry points
# ----------------------------------------------------------------------
def save_hierarchy(hierarchy: CompactRoutingHierarchy, path: str,
                   metadata: Optional[Dict[str, Any]] = None,
                   format: int = FORMAT_VERSION,
                   compress_node_table: bool = False) -> ArtifactInfo:
    """Persist a built compact-routing hierarchy.

    ``format=2`` (the default) writes the mmap-able section-table layout;
    ``format=1`` writes the legacy monolithic pickle.  Build parameters
    (k, epsilon, mode, l0, seed, engine, ...) are merged into the header
    metadata either way, so :func:`artifact_info` answers "what is this
    file?" without touching the payload.

    ``compress_node_table=True`` (format 2 only) front-codes the node
    intern table — string labels store shared-prefix lengths plus
    suffixes — and records ``node_table_encoding: "front_coded"`` in the
    header.  Current readers auto-detect either encoding; readers
    predating front coding reject a compressed table with a typed
    error rather than misreading it.  Query answers never depend on the
    encoding.
    """
    if format not in SUPPORTED_FORMATS:
        raise ValueError(f"format must be one of {list(SUPPORTED_FORMATS)}, "
                         f"got {format!r}")
    if compress_node_table and format == 1:
        raise ValueError("compress_node_table requires the format-2 "
                         "section layout (format=2)")
    merged = {"n": hierarchy.graph.num_nodes, "m": hierarchy.graph.num_edges}
    merged.update(hierarchy.build_params)
    merged.update(metadata or {})
    if format == 1:
        return write_artifact(path, KIND_HIERARCHY, hierarchy.export_state(),
                              metadata=merged,
                              state_version=hierarchy.STATE_VERSION)
    merged["node_table_encoding"] = ("front_coded" if compress_node_table
                                     else "tagged")
    return write_artifact_v2(path, KIND_HIERARCHY,
                             _hierarchy_sections(
                                 hierarchy,
                                 compress_node_table=compress_node_table),
                             metadata=merged,
                             state_version=hierarchy.STATE_VERSION)


def load_hierarchy(path: str) -> Tuple[CompactRoutingHierarchy, ArtifactInfo]:
    """Load a hierarchy artifact; returns ``(hierarchy, info)``.

    Format is auto-detected: format-1 artifacts deserialise eagerly (the
    legacy behaviour), format-2 artifacts come back as an mmap-backed lazy
    hierarchy whose query answers are identical but whose tables page in
    on demand.
    """
    info = artifact_info(path)
    if info.format_version == 1:
        state, info = read_artifact(path, expected_kind=KIND_HIERARCHY)
        try:
            hierarchy = CompactRoutingHierarchy.from_state(state)
        except (KeyError, TypeError, ValueError) as exc:
            raise ArtifactError(f"{path}: invalid hierarchy state: {exc}") from exc
        return hierarchy, info
    return _load_hierarchy_v2(path)


def save_pde(pde: PDEResult, path: str,
             metadata: Optional[Dict[str, Any]] = None,
             format: int = FORMAT_VERSION) -> ArtifactInfo:
    """Persist a PDE result (estimates, lists, next hops, accounting)."""
    if format not in SUPPORTED_FORMATS:
        raise ValueError(f"format must be one of {list(SUPPORTED_FORMATS)}, "
                         f"got {format!r}")
    merged = {"sources": len(pde.sources), "h": pde.h, "sigma": pde.sigma,
              "epsilon": pde.epsilon}
    merged.update(metadata or {})
    if format == 1:
        return write_artifact(path, KIND_PDE, pde.export_state(),
                              metadata=merged)
    meta = {"h": pde.h, "sigma": pde.sigma, "epsilon": pde.epsilon,
            "sources": len(pde.sources)}
    sections = {
        "meta": json.dumps(meta, sort_keys=True).encode("utf-8"),
        "state": _dumps(pde.export_state()),
    }
    return write_artifact_v2(path, KIND_PDE, sections, metadata=merged)


def load_pde(path: str) -> Tuple[PDEResult, ArtifactInfo]:
    """Load a PDE artifact (either format); returns ``(pde, info)``."""
    info = artifact_info(path)
    if info.format_version == 1:
        state, info = read_artifact(path, expected_kind=KIND_PDE)
    else:
        reader = ArtifactV2Reader(path, expected_kind=KIND_PDE)
        try:
            state = reader.load_pickle("state")
            info = reader.info
        finally:
            reader.close()
    try:
        pde = PDEResult.from_state(state)
    except (KeyError, TypeError, ValueError) as exc:
        raise ArtifactError(f"{path}: invalid PDE state: {exc}") from exc
    return pde, info


# ----------------------------------------------------------------------
# per-shard sub-artifacts
# ----------------------------------------------------------------------
def shard_artifact_path(artifact_path: str, shard: int, workers: int) -> str:
    """Canonical path of one shard's sub-artifact."""
    return f"{artifact_path}.shard{shard}of{workers}"


def _decode_slicing_state(reader, num_workers: int) -> Dict[str, Any]:
    """Decode everything shard slicing needs from an open v2 reader."""
    meta = reader.load_json("meta")
    intern = NodeInternTable.decode(reader.section_bytes("nodes"))
    # Copy the bunch section out of the mapping: the slicer reads every
    # row anyway, and holding no view lets the reader close cleanly.
    bunch_table = OffsetRecordTable(bytes(reader.section_bytes("bunches")))
    k = meta["k"]
    return {
        "meta": meta,
        "intern": intern,
        "bunch_table": bunch_table,
        "k": k,
        "n": meta["num_nodes"],
        "owner": [stable_node_hash(node) % num_workers
                  for node in intern.nodes()],
        "tree_states": [reader.load_pickle(f"level_trees_{level}")
                        for level in range(k)],
        "copied": {name: bytes(reader.section_bytes(name))
                   for name in ("nodes", "pivots", "graph", "levels",
                                "skeleton", "metrics")},
        "metadata": dict(reader.info.metadata),
        "state_version": reader.info.state_version,
    }


def _write_one_shard_slice(state: Dict[str, Any], artifact_path: str,
                           shard: int, num_workers: int,
                           partitioner: str) -> str:
    """Slice and write one shard's sub-artifact from decoded parent state."""
    meta, intern = state["meta"], state["intern"]
    bunch_table, k, n = state["bunch_table"], state["k"], state["n"]
    owner, tree_states, copied = (state["owner"], state["tree_states"],
                                  state["copied"])

    bunch_rows: List[Optional[List[Tuple[int, float]]]] = []
    keep_roots: List[set] = [set() for _ in range(k)]
    for level in range(k):
        base = level * n
        for index in range(n):
            row_index = base + index
            if owner[index] == shard and bunch_table.has_row(row_index):
                items = bunch_table.row_items(row_index)
                bunch_rows.append(items)
                keep_roots[level].update(src for src, _ in items)
            else:
                bunch_rows.append(None)

    provenance = {"shard": shard, "workers": num_workers,
                  "partitioner": partitioner}
    sub_meta = dict(meta)
    sub_meta["sub_artifact"] = provenance

    sections: Dict[str, bytes] = {}
    sections["meta"] = json.dumps(sub_meta, sort_keys=True).encode("utf-8")
    sections["nodes"] = copied["nodes"]
    sections["pivots"] = copied["pivots"]
    sections["bunches"] = OffsetRecordTable.encode(bunch_rows)
    sections["graph"] = copied["graph"]
    sections["levels"] = copied["levels"]
    for level in range(k):
        tree_state = tree_states[level]
        if tree_state is None:
            kept = None
        else:
            roots = {intern.node_at(i) for i in keep_roots[level]}
            kept = [entry for entry in tree_state if entry["root"] in roots]
        sections[f"level_trees_{level}"] = _dumps(kept)
        # level_aux_<level> deliberately absent: construction-time
        # state a serving worker never reads.
    sections["skeleton"] = copied["skeleton"]
    sections["metrics"] = copied["metrics"]

    out_path = shard_artifact_path(artifact_path, shard, num_workers)
    metadata = dict(state["metadata"])
    metadata["sub_artifact"] = provenance
    write_artifact_v2(out_path, KIND_HIERARCHY, sections, metadata=metadata,
                      state_version=state["state_version"])
    return out_path


def _shard_slice_job(artifact_path: str, shard: int, num_workers: int,
                     partitioner: str) -> str:
    """Slice one shard in a worker process (opens its own reader)."""
    reader = ArtifactV2Reader(artifact_path, expected_kind=KIND_HIERARCHY)
    try:
        state = _decode_slicing_state(reader, num_workers)
        return _write_one_shard_slice(state, artifact_path, shard,
                                      num_workers, partitioner)
    finally:
        reader.close()


def write_shard_artifacts(artifact_path: str, num_workers: int,
                          partitioner: str = "hash_source",
                          build_workers: int = 1) -> List[str]:
    """Materialise per-shard sub-artifacts of a format-2 hierarchy artifact.

    Shard ``w`` owns the source nodes with ``stable_node_hash(node) %
    num_workers == w`` (exactly the assignment of the ``hash_source``
    partitioner, which is why it is the only supported ``partitioner``):
    its sub-artifact keeps the full intern/pivot tables, graph and
    skeleton sections (they are read per *target*, which can be any node),
    slices the bunch table down to the owned sources' rows, keeps only the
    destination trees those rows can select, and drops the
    construction-time aux sections entirely.  A worker serving only
    queries whose source it owns answers identically to full-artifact
    serving while loading a fraction of the table bytes.

    ``build_workers > 1`` fans the per-shard slicing across a spawn-based
    process pool (each worker opens the parent artifact by path — nothing
    heavy is pickled); the fleet respawn path uses this so regenerating a
    missing slice does not serialise on one core while siblings cover.
    Slice contents are identical either way.

    Returns the sub-artifact paths in shard order (written atomically,
    overwriting earlier slices).
    """
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    if build_workers < 1:
        raise ValueError(f"build_workers must be >= 1, got {build_workers}")
    if partitioner != "hash_source":
        raise ValueError(
            f"sub-artifact slicing is defined for the source-hash "
            f"assignment only (partitioner='hash_source'), got "
            f"{partitioner!r}")
    info = artifact_info(artifact_path)
    if info.format_version != 2:
        raise ArtifactError(
            f"{artifact_path}: sub-artifacts require a format-2 artifact; "
            f"delete this file and rebuild it with artifact_format=2 (the "
            f"default) — an existing artifact is served as-is regardless "
            f"of the requested format, so changing the config alone does "
            f"not rewrite it")
    if build_workers > 1 and num_workers > 1:
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool
        from multiprocessing import get_context

        from ..routing.parallel_build import ParallelBuildError

        with ProcessPoolExecutor(max_workers=min(build_workers, num_workers),
                                 mp_context=get_context("spawn")) as pool:
            futures = [pool.submit(_shard_slice_job, artifact_path, shard,
                                   num_workers, partitioner)
                       for shard in range(num_workers)]
            try:
                return [future.result() for future in futures]
            except BrokenProcessPool as exc:
                raise ParallelBuildError(
                    "a shard-slicing worker died before completing its "
                    "sub-artifact") from exc
    reader = ArtifactV2Reader(artifact_path, expected_kind=KIND_HIERARCHY)
    try:
        state = _decode_slicing_state(reader, num_workers)
        return [_write_one_shard_slice(state, artifact_path, shard,
                                       num_workers, partitioner)
                for shard in range(num_workers)]
    finally:
        reader.close()
