"""Persistent, versioned artifacts for built routing structures.

Building a compact-routing hierarchy is the expensive preprocessing phase of
Corollary 4.14; serving queries from it is cheap.  Artifacts decouple the
two: a hierarchy (or a PDE result) is built once, written to disk, and any
number of serving processes load it back and answer queries *identically* to
the in-memory original (the round-trip tests assert bit-for-bit equal query
answers).

On-disk layout (format version 1)::

    REPRO-ARTIFACT v1\\n                      <- magic + format version
    {header JSON}\\n                          <- kind, payload size + sha256,
                                                state version, metadata
    <payload bytes>                           <- pickled builtin-only state

The payload is the ``export_state()`` snapshot of the object — plain dicts /
lists / tuples / scalars, never ``repro`` classes — serialised with
:mod:`pickle`.  Keeping classes out of the payload means old artifacts stay
loadable across refactors of the in-memory types; the pickle is merely a
container for builtins.  Integrity is checked on load: magic, format
version, payload length and SHA-256 checksum must all match, and the header
``kind`` must equal what the caller expects.  Artifacts are trusted local
files (pickle is not safe against adversarial bytes — the checksum detects
corruption, not tampering).
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..core.pde import PDEResult
from ..routing.tz_hierarchy import CompactRoutingHierarchy

__all__ = [
    "ArtifactError",
    "ArtifactInfo",
    "FORMAT_VERSION",
    "KIND_HIERARCHY",
    "KIND_PDE",
    "write_artifact",
    "read_artifact",
    "artifact_info",
    "save_hierarchy",
    "load_hierarchy",
    "save_pde",
    "load_pde",
]

MAGIC = b"REPRO-ARTIFACT"
FORMAT_VERSION = 1

KIND_HIERARCHY = "routing_hierarchy"
KIND_PDE = "pde_result"

#: Pickle protocol pinned for reproducible payload bytes across interpreters.
_PICKLE_PROTOCOL = 4


class ArtifactError(RuntimeError):
    """Raised for malformed, corrupt or mismatching artifact files."""


@dataclass
class ArtifactInfo:
    """Parsed artifact header (everything except the payload)."""

    kind: str
    format_version: int
    state_version: int
    payload_bytes: int
    payload_sha256: str
    metadata: Dict[str, Any] = field(default_factory=dict)
    path: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "format_version": self.format_version,
            "state_version": self.state_version,
            "payload_bytes": self.payload_bytes,
            "payload_sha256": self.payload_sha256,
            "metadata": dict(self.metadata),
            "path": self.path,
        }


# ----------------------------------------------------------------------
# generic read / write
# ----------------------------------------------------------------------
def write_artifact(path: str, kind: str, state: Dict[str, Any],
                   metadata: Optional[Dict[str, Any]] = None,
                   state_version: int = 1) -> ArtifactInfo:
    """Write ``state`` (a builtin-only snapshot) as a versioned artifact.

    Returns the :class:`ArtifactInfo` that was written.  The write goes
    through a temporary file in the same directory followed by an atomic
    rename, so readers never observe a half-written artifact.
    """
    payload = pickle.dumps(state, protocol=_PICKLE_PROTOCOL)
    info = ArtifactInfo(
        kind=kind,
        format_version=FORMAT_VERSION,
        state_version=state_version,
        payload_bytes=len(payload),
        payload_sha256=hashlib.sha256(payload).hexdigest(),
        metadata=dict(metadata or {}),
        path=path,
    )
    header = {
        "kind": info.kind,
        "state_version": info.state_version,
        "payload_bytes": info.payload_bytes,
        "payload_sha256": info.payload_sha256,
        "metadata": info.metadata,
    }
    tmp_path = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp_path, "wb") as fh:
            fh.write(MAGIC + b" v%d\n" % FORMAT_VERSION)
            fh.write(json.dumps(header, sort_keys=True).encode("utf-8") + b"\n")
            fh.write(payload)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return info


def _read_header(fh: io.BufferedReader, path: str) -> ArtifactInfo:
    magic_line = fh.readline()
    expected = MAGIC + b" v%d\n" % FORMAT_VERSION
    if not magic_line.startswith(MAGIC):
        raise ArtifactError(f"{path}: not a repro artifact (bad magic)")
    if magic_line != expected:
        raise ArtifactError(
            f"{path}: unsupported artifact format {magic_line!r} "
            f"(this build reads {expected!r})")
    header_line = fh.readline()
    try:
        header = json.loads(header_line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ArtifactError(f"{path}: corrupt artifact header: {exc}") from exc
    try:
        return ArtifactInfo(
            kind=header["kind"],
            format_version=FORMAT_VERSION,
            state_version=header["state_version"],
            payload_bytes=header["payload_bytes"],
            payload_sha256=header["payload_sha256"],
            metadata=dict(header.get("metadata", {})),
            path=path,
        )
    except KeyError as exc:
        raise ArtifactError(f"{path}: artifact header is missing {exc}") from exc


def artifact_info(path: str) -> ArtifactInfo:
    """Read only the header of an artifact (cheap; payload is not touched)."""
    with open(path, "rb") as fh:
        return _read_header(fh, path)


def read_artifact(path: str, expected_kind: Optional[str] = None
                  ) -> Tuple[Dict[str, Any], ArtifactInfo]:
    """Read an artifact, verifying integrity; returns ``(state, info)``.

    Raises :class:`ArtifactError` on bad magic, unsupported version, kind
    mismatch, truncation, or checksum failure.
    """
    with open(path, "rb") as fh:
        info = _read_header(fh, path)
        if expected_kind is not None and info.kind != expected_kind:
            raise ArtifactError(
                f"{path}: artifact holds a {info.kind!r}, expected "
                f"{expected_kind!r}")
        payload = fh.read()
    if len(payload) != info.payload_bytes:
        raise ArtifactError(
            f"{path}: truncated payload ({len(payload)} bytes, header "
            f"says {info.payload_bytes})")
    digest = hashlib.sha256(payload).hexdigest()
    if digest != info.payload_sha256:
        raise ArtifactError(f"{path}: payload checksum mismatch "
                            f"({digest} != {info.payload_sha256})")
    try:
        state = pickle.loads(payload)
    except Exception as exc:  # pickle raises a zoo of exception types
        raise ArtifactError(f"{path}: payload failed to deserialise: {exc}") from exc
    return state, info


# ----------------------------------------------------------------------
# typed entry points
# ----------------------------------------------------------------------
def save_hierarchy(hierarchy: CompactRoutingHierarchy, path: str,
                   metadata: Optional[Dict[str, Any]] = None) -> ArtifactInfo:
    """Persist a built compact-routing hierarchy.

    Build parameters (k, epsilon, mode, l0, seed, engine, ...) are merged
    into the header metadata so :func:`artifact_info` answers "what is this
    file?" without deserialising the payload.
    """
    merged = {"n": hierarchy.graph.num_nodes, "m": hierarchy.graph.num_edges}
    merged.update(hierarchy.build_params)
    merged.update(metadata or {})
    return write_artifact(path, KIND_HIERARCHY, hierarchy.export_state(),
                          metadata=merged,
                          state_version=hierarchy.STATE_VERSION)


def load_hierarchy(path: str) -> Tuple[CompactRoutingHierarchy, ArtifactInfo]:
    """Load a hierarchy artifact; returns ``(hierarchy, info)``."""
    state, info = read_artifact(path, expected_kind=KIND_HIERARCHY)
    try:
        hierarchy = CompactRoutingHierarchy.from_state(state)
    except (KeyError, TypeError, ValueError) as exc:
        raise ArtifactError(f"{path}: invalid hierarchy state: {exc}") from exc
    return hierarchy, info


def save_pde(pde: PDEResult, path: str,
             metadata: Optional[Dict[str, Any]] = None) -> ArtifactInfo:
    """Persist a PDE result (estimates, lists, next hops, accounting)."""
    merged = {"sources": len(pde.sources), "h": pde.h, "sigma": pde.sigma,
              "epsilon": pde.epsilon}
    merged.update(metadata or {})
    return write_artifact(path, KIND_PDE, pde.export_state(), metadata=merged)


def load_pde(path: str) -> Tuple[PDEResult, ArtifactInfo]:
    """Load a PDE artifact; returns ``(pde, info)``."""
    state, info = read_artifact(path, expected_kind=KIND_PDE)
    try:
        pde = PDEResult.from_state(state)
    except (KeyError, TypeError, ValueError) as exc:
        raise ArtifactError(f"{path}: invalid PDE state: {exc}") from exc
    return pde, info
