"""Partitioners: who decides which shard answers which query.

The sharded front-end scatters each batch across its workers and reassembles
the answers in input order, so partitioning can never change an answer —
only *where* it is computed and therefore which worker's cache warms up.
That makes the partitioner a pure policy decision, and v2 turns it into a
named plug-point (:data:`~repro.serving.registry.PARTITIONERS`):

* ``"round_robin"`` — query ``i`` goes to shard ``i % N``; balances load
  exactly regardless of content (:class:`RoundRobinPartitioner`);
* ``"hash_pair"``   — shard by a stable hash of the pair, so every
  occurrence of a hot pair warms exactly one shard's cache
  (:class:`HashPairPartitioner`);
* ``"adaptive"``    — start from the stable hash and *migrate* pairs away
  from shards whose observed cache hit rate lags the best shard
  (:class:`AdaptivePartitioner`), the ROADMAP's "adaptive partitioning
  driven by observed per-shard hit rates".

Stateful partitioners receive feedback: when a partitioner sets
``wants_feedback``, the sharded front-end calls :meth:`Partitioner.observe`
with fresh per-worker :class:`~repro.serving.cache.ServingStats` snapshots
every ``feedback_every`` batches.  Everything is deterministic — the same
query stream and the same observed stats produce the same shard assignment —
so sharded serving stays reproducible.

Custom partitioners register a factory ``(num_shards, **params) ->
Partitioner``.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from .cache import ServingStats
from .registry import register_partitioner
from .workloads import _stable_pair_hash, partition_pairs

__all__ = [
    "Partitioner",
    "RoundRobinPartitioner",
    "HashPairPartitioner",
    "HashSourcePartitioner",
    "AdaptivePartitioner",
    "HitRateWindow",
    "make_partitioner",
]

_Pair = Tuple[Hashable, Hashable]
_Shards = List[List[Tuple[int, _Pair]]]


class HitRateWindow:
    """Per-shard cache hit rates over the window since the last evaluation.

    The windowed-feedback core shared by :class:`AdaptivePartitioner` and
    the fleet supervisor's rebalancer: given fresh per-worker
    :class:`~repro.serving.cache.ServingStats` snapshots, compute each
    shard's hit rate over the *delta* since the last evaluated window.
    Sub-threshold windows (fewer than ``min_window`` probes in total)
    return ``None`` without advancing the baseline, so small windows
    accumulate across observations instead of being consumed and
    discarded.  Hot-store hits count as hits — a promoted pair is the
    cache working as intended, not a sign of overload.
    """

    __slots__ = ("num_shards", "min_window", "_last_hits", "_last_misses")

    def __init__(self, num_shards: int, min_window: int = 64) -> None:
        self.num_shards = num_shards
        self.min_window = min_window
        self._last_hits = [0] * num_shards
        self._last_misses = [0] * num_shards

    def resize(self, num_shards: int) -> None:
        """Grow the baseline for newly added shards (fleet scale-up)."""
        while len(self._last_hits) < num_shards:
            self._last_hits.append(0)
            self._last_misses.append(0)
        self.num_shards = num_shards

    def reset_shard(self, shard: int) -> None:
        """Zero one shard's baseline (its worker restarted from scratch)."""
        if 0 <= shard < len(self._last_hits):
            self._last_hits[shard] = 0
            self._last_misses[shard] = 0

    def rates(self, worker_stats: Sequence[ServingStats],
              ) -> Optional[List[float]]:
        """Windowed hit rates, or ``None`` when the window is too small."""
        if len(worker_stats) != self.num_shards:
            return None
        total_hits = [stats.cache_hits + stats.hot_hits
                      for stats in worker_stats]
        total_misses = [stats.cache_misses for stats in worker_stats]
        deltas = []
        for shard in range(self.num_shards):
            d_hits = total_hits[shard] - self._last_hits[shard]
            d_misses = total_misses[shard] - self._last_misses[shard]
            if d_hits < 0 or d_misses < 0:
                # The worker restarted (counters reset); its lifetime totals
                # ARE the window.
                d_hits, d_misses = total_hits[shard], total_misses[shard]
            deltas.append((d_hits, d_misses))
        if sum(d_hits + d_misses for d_hits, d_misses in deltas) \
                < self.min_window:
            return None
        self._last_hits = total_hits
        self._last_misses = total_misses
        return [d_hits / (d_hits + d_misses) if d_hits + d_misses else 1.0
                for d_hits, d_misses in deltas]


class Partitioner:
    """Base partitioner: split an indexed stream across ``num_shards``.

    ``partition`` returns ``num_shards`` lists of ``(original_index, pair)``
    preserving stream order within each shard (the contract of
    :func:`~repro.serving.workloads.partition_pairs`).
    """

    name = "base"
    #: Whether the front-end should feed observed per-worker stats back.
    wants_feedback = False
    #: How often (in scatter batches) feedback is delivered, when wanted.
    feedback_every = 1
    #: Whether every query is routed to a shard determined by its *source*
    #: node alone (and never migrated).  Per-shard sub-artifacts slice
    #: their tables by source, so the sharded front-end requires a
    #: source-partitioning strategy before it will serve from slices.
    partitions_by_source = False

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = num_shards

    def partition(self, pairs: Sequence[_Pair]) -> _Shards:
        raise NotImplementedError

    def observe(self, worker_stats: Sequence[ServingStats]) -> None:
        """Feedback hook; stateless partitioners ignore it."""

    def describe(self) -> Dict[str, object]:
        """Provenance extras folded into the merged stats."""
        return {}

    def __repr__(self) -> str:
        return f"{type(self).__name__}(num_shards={self.num_shards})"


class RoundRobinPartitioner(Partitioner):
    name = "round_robin"

    def partition(self, pairs: Sequence[_Pair]) -> _Shards:
        return partition_pairs(pairs, self.num_shards, strategy="round_robin")


class HashPairPartitioner(Partitioner):
    name = "hash_pair"

    def partition(self, pairs: Sequence[_Pair]) -> _Shards:
        return partition_pairs(pairs, self.num_shards, strategy="hash_pair")


class HashSourcePartitioner(Partitioner):
    """Shard by a stable hash of the query's *source* node.

    The shard of ``(s, t)`` depends on ``s`` alone, using the same
    :func:`~repro.serving.workloads.stable_node_hash` assignment that
    :func:`~repro.serving.artifacts.write_shard_artifacts` slices bunch
    tables by — so a worker holding only its shard's sub-artifact is
    never handed a query whose source rows it lacks.  Like ``hash_pair``,
    every occurrence of a pair lands on one shard (a source's repeats warm
    exactly one cache).
    """

    name = "hash_source"
    partitions_by_source = True

    def partition(self, pairs: Sequence[_Pair]) -> _Shards:
        return partition_pairs(pairs, self.num_shards, strategy="hash_source")


class AdaptivePartitioner(Partitioner):
    """Hash-affine partitioning that rebalances on observed hit rates.

    Each pair starts on its stable-hash shard (so, like ``hash_pair``, every
    occurrence of a pair lands on one shard and warms one cache).  After
    every ``feedback_every`` batches the front-end hands over per-worker
    stats; the partitioner computes each shard's hit rate over the *window
    since the last observation* and, when the worst shard lags the best by
    more than ``min_gap``, migrates ``migrate_fraction`` of the worst
    shard's assigned pairs to the best shard.

    The rationale: a persistently low hit rate means that shard's assigned
    working set overflows its cache (or is colder than its peers), while a
    high hit rate means headroom; shedding distinct pairs from the former
    to the latter raises the aggregate hit rate without any coordination
    inside the workers.  Migration changes future *placement* only — answers
    are computed from the same shared artifact everywhere, so the sharded
    identity invariant is untouched.

    Migration order is deterministic (pairs sorted by stable hash), so a
    replayed session partitions identically.
    """

    name = "adaptive"
    wants_feedback = True

    def __init__(self, num_shards: int, feedback_every: int = 4,
                 min_gap: float = 0.1, migrate_fraction: float = 0.25,
                 min_window: int = 64) -> None:
        super().__init__(num_shards)
        if feedback_every < 1:
            raise ValueError(f"feedback_every must be >= 1, "
                             f"got {feedback_every}")
        if not 0.0 <= min_gap <= 1.0:
            raise ValueError(f"min_gap must be in [0, 1], got {min_gap}")
        if not 0.0 < migrate_fraction <= 1.0:
            raise ValueError(f"migrate_fraction must be in (0, 1], "
                             f"got {migrate_fraction}")
        self.feedback_every = feedback_every
        self.min_gap = min_gap
        self.migrate_fraction = migrate_fraction
        self.min_window = min_window
        self.migrations = 0
        self.rebalances = 0
        self._assigned: Dict[_Pair, int] = {}
        self._window = HitRateWindow(num_shards, min_window=min_window)

    def shard_of(self, pair: _Pair) -> int:
        """Current shard assignment for ``pair`` (assigning it if new)."""
        shard = self._assigned.get(pair)
        if shard is None:
            shard = _stable_pair_hash(pair) % self.num_shards
            self._assigned[pair] = shard
        return shard

    def partition(self, pairs: Sequence[_Pair]) -> _Shards:
        shards: _Shards = [[] for _ in range(self.num_shards)]
        for index, pair in enumerate(pairs):
            shards[self.shard_of(pair)].append((index, pair))
        return shards

    def observe(self, worker_stats: Sequence[ServingStats]) -> None:
        if len(worker_stats) != self.num_shards or self.num_shards < 2:
            return
        window_rates = self._window.rates(worker_stats)
        if window_rates is None:
            return
        worst = min(range(self.num_shards), key=lambda s: window_rates[s])
        best = max(range(self.num_shards), key=lambda s: window_rates[s])
        if worst == best or window_rates[best] - window_rates[worst] < self.min_gap:
            return
        resident = sorted(
            (pair for pair, shard in self._assigned.items()
             if shard == worst),
            key=_stable_pair_hash)
        quota = max(1, int(len(resident) * self.migrate_fraction)) \
            if resident else 0
        for pair in resident[:quota]:
            self._assigned[pair] = best
        if quota:
            self.migrations += quota
            self.rebalances += 1

    def describe(self) -> Dict[str, object]:
        return {"partitioner_migrations": self.migrations,
                "partitioner_rebalances": self.rebalances}


register_partitioner("round_robin", RoundRobinPartitioner)
register_partitioner("hash_pair", HashPairPartitioner)
register_partitioner("hash_source", HashSourcePartitioner)
register_partitioner("adaptive", AdaptivePartitioner)


def make_partitioner(name: str, num_shards: int, **params) -> Partitioner:
    """Instantiate a registered partitioner by name."""
    from .registry import get_partitioner

    return get_partitioner(name)(num_shards, **params)
