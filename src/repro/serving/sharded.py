"""Multi-process sharded serving: fan one query stream across worker processes.

:class:`~repro.serving.service.RoutingService` is bound to a single Python
process, so the GIL caps its route throughput no matter how good the cache
hit rate is.  The artifact layer already makes a built hierarchy shareable
across processes — versioned, checksummed, query-identical on reload — which
makes the multi-process step cheap: build once in the parent, ``save``, and
let every worker ``load`` the same artifact and answer its slice of the
stream with a local :class:`RoutingService`.

:class:`ShardedRoutingService` keeps one hard invariant: its answers are
list-for-list identical to a single-process :class:`RoutingService` on the
same workload.  Sharding changes *where* a query is answered, never *what*
the answer is.  Partitioning is deterministic
(:func:`~repro.serving.workloads.partition_pairs`): ``round_robin`` balances
load exactly, ``hash_pair`` sends every occurrence of a pair to the same
shard so hot pairs warm exactly one shard's cache.

Sharding buys two things:

* **CPU parallelism** — N workers route on N cores (processes, not threads,
  so the GIL is out of the picture);
* **aggregate cache capacity** — N workers with per-worker LRU capacity C
  hold N·C results; a stream whose distinct-pair set thrashes one bounded
  cache can fit entirely in the sharded caches
  (``benchmarks/bench_shard_scaling.py`` measures exactly this regime).

Scatter/gather is **pipelined** (the PR-8 transport refactor): the
front-end may keep several batches in flight at once.  :meth:`submit_batch`
partitions a batch, applies admission control, and enqueues the shards
without waiting; a background *collector* thread multiplexes the
per-worker reply pipes (kill-safe by construction: no cross-process lock a
dying worker could poison) and completes tickets as workers answer;
:meth:`wait_batch` blocks on one ticket.  ``route_batch`` / ``distance_batch`` stay strictly synchronous
(submit + wait), so sequential callers see exactly the old behaviour, while
pipelined drivers (the network server's concurrent sessions, the
benchmarks) overlap batch serialization with worker compute and keep every
worker's task queue non-empty.  Two knobs bound the pipeline:
``pipeline_depth`` caps front-end-wide outstanding batches and
``max_inflight`` caps per-worker outstanding batches; at either bound
``admission="block"`` delays the submitter (the ``inflight_wait`` telemetry
span) and ``admission="reject"`` raises
:class:`~repro.serving.wire.BackpressureError` instead.

Worker lifecycle: spawn → warm (load the artifact, signal ready) → serve
query batches (order-preserving scatter/gather) → drain and shut down, each
worker returning its final :class:`~repro.serving.cache.ServingStats`, which
:meth:`ServingStats.merge` folds into one aggregate.  Workers are daemonic;
an unexpected worker exception fail-stops the whole front-end (all workers
are shut down, every in-flight ticket completes with a
:class:`ShardError`).
"""

from __future__ import annotations

import collections
import dataclasses
import multiprocessing
import os
import pickle
import select
import threading
import time
import traceback
import warnings
import weakref
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..graphs.weighted_graph import WeightedGraph
from ..obs.metrics import make_registry, merge_exports
from .cache import ServingStats
from .config import BuildConfig, CacheConfig
from .partitioners import make_partitioner
from .service import RoutingService, answer_batch, build_or_load_service
from .wire import BackpressureError
from .workloads import stable_node_hash

__all__ = ["ShardedRoutingService", "ShardError", "BackpressureError"]

_Pair = Tuple[Hashable, Hashable]


class ShardError(RuntimeError):
    """A shard worker failed to warm up, answer, or reply in time.

    ``worker_traceback`` carries the remote traceback text when the failure
    originated from an exception inside a worker (empty otherwise).
    ``pending_request_ids`` records which submitted batches (the
    ``request_id`` of their tickets) were still in flight when the failure
    latched, so callers — and the fleet supervisor — can retry precisely
    instead of guessing which answers were lost.
    """

    def __init__(self, message: str, worker_traceback: str = "",
                 pending_request_ids: Sequence[int] = ()) -> None:
        if worker_traceback:
            message = (f"{message}\n--- worker traceback ---\n"
                       f"{worker_traceback.rstrip()}")
        super().__init__(message)
        self.worker_traceback = worker_traceback
        self.pending_request_ids: Tuple[int, ...] = tuple(pending_request_ids)


class _ResultWriter:
    """Worker end of its private result pipe: length-framed pickles.

    Each worker owns one pipe to the parent, written only by the worker's
    main thread — there is no lock to poison.  A shared
    ``multiprocessing.Queue`` is *not* kill-safe here: a SIGKILL landing
    while a worker's queue-feeder thread holds the queue's cross-process
    write lock leaves that lock acquired forever, silently wedging every
    sibling's replies — the exact failure mode the fleet supervisor
    exists to survive.  With one single-writer pipe per worker, a kill
    mid-write can only truncate that worker's own final frame, which the
    parent discards along with the dead worker's channel.
    """

    __slots__ = ("_conn",)

    def __init__(self, conn) -> None:
        self._conn = conn

    def put(self, message) -> None:
        payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        data = len(payload).to_bytes(4, "big") + payload
        fd = self._conn.fileno()
        view = memoryview(data)
        while view:
            view = view[os.write(fd, view):]


class _ResultChannel:
    """Parent end of one worker's result pipe (single reader, no locks).

    ``read_ready`` drains whatever bytes the pipe holds *without ever
    blocking* (it is only called after ``select`` reports readability) and
    returns the complete messages parsed from them; a partial frame — a
    worker killed mid-write — just stays in the buffer until the channel
    is discarded with its dead worker.
    """

    __slots__ = ("_conn", "_buffer", "exhausted")

    def __init__(self, conn) -> None:
        self._conn = conn
        self._buffer = bytearray()
        self.exhausted = False

    def fileno(self) -> int:
        return self._conn.fileno()

    def read_ready(self) -> List:
        messages: List = []
        try:
            chunk = os.read(self._conn.fileno(), 1 << 16)
        except (OSError, ValueError):
            self.exhausted = True
            return messages
        if not chunk:
            # EOF: every copy of the write end is gone; nothing more can
            # arrive, so drop the channel from the select set.
            self.exhausted = True
        self._buffer.extend(chunk)
        while len(self._buffer) >= 4:
            size = int.from_bytes(self._buffer[:4], "big")
            if len(self._buffer) - 4 < size:
                break
            payload = bytes(self._buffer[4:4 + size])
            del self._buffer[:4 + size]
            messages.append(pickle.loads(payload))
        return messages

    def close(self) -> None:
        self.exhausted = True
        try:
            self._conn.close()
        except OSError:
            pass


def _poll_channels(channels, backlog, timeout: float):
    """The next message from ``channels`` into/out of ``backlog``, or None.

    Module-level on purpose: the collector thread blocks here holding
    only the channel list and the backlog deque — never the service —
    so dropping the last external service reference still triggers
    ``__del__`` promptly (the unclosed-service ``ResourceWarning``
    contract).  Multiplexes with ``select`` and parses frames without
    ever blocking on a single pipe, so a worker killed mid-write can
    never wedge the caller (complete messages parse; its half-written
    frame dies with its channel).
    """
    if backlog:
        return backlog.popleft()
    if not channels:
        time.sleep(min(timeout, 0.05))
        return None
    try:
        ready, _, _ = select.select(channels, [], [], timeout)
    except (OSError, ValueError):
        # A channel was closed under us (worker respawn swapped it
        # out); the caller retries against a fresh snapshot.
        return None
    for channel in ready:
        backlog.extend(channel.read_ready())
    if backlog:
        return backlog.popleft()
    return None


def _shard_worker(worker_id: int, artifact_path: str,
                  cache_config: CacheConfig, kernel: str, telemetry: bool,
                  task_queue, result_conn,
                  cover_artifact_path: Optional[str] = None,
                  slice_spec: Optional[Tuple[int, int]] = None) -> None:
    """Worker main loop (module-level so it stays picklable under spawn).

    Each worker applies the :class:`CacheConfig` locally — cache policy,
    capacity, and the (per-worker by construction) online hot-set policy;
    explicit hot sets are rejected by the front-end, since every worker
    would pin every pair while serving only its own partition.  The query
    ``kernel`` selector is likewise applied per worker against its own
    loaded artifact (``auto`` resolves to ``columnar`` on v2 artifacts).

    Protocol (all messages are tuples; the first element is the tag):

    * in  ``("query", request_id, kind, [(index, pair), ...])``
      out ``("ok", worker_id, request_id, [(index, result), ...])`` or
      ``("error", worker_id, request_id, summary, traceback_text)``
    * in  ``("stats",)``    → out ``("stats", worker_id, ServingStats)``
    * in  ``("ping", seq)`` → out ``("pong", worker_id, seq)``
    * in  ``("shutdown",)`` → out ``("bye", worker_id, ServingStats)``, exit

    The task queue is FIFO, so several ``query`` messages may be queued at
    once (the front-end's per-worker in-flight window); the worker simply
    answers them in order — pipelining needs no worker-side changes, and
    the front-end relies on the FIFO order to know *which* queries a dead
    worker had not yet answered.

    ``slice_spec = (shard, workers)`` says ``artifact_path`` is the
    sub-artifact slice covering sources whose stable hash maps to
    ``shard`` of ``workers``.  Queries outside that slice (possible only
    in fleet mode, where siblings cover a dead worker's partition) are
    answered from ``cover_artifact_path`` — the full parent artifact,
    loaded lazily on the first out-of-slice query so the common all-alive
    path never pays for it.  Both services share one artifact build, so a
    covered answer is bit-identical to the home shard's.

    Warm-up emits ``("ready", worker_id, load_seconds)`` on success or
    ``("failed", worker_id, summary)`` if the artifact cannot be loaded.
    Replies travel over ``result_conn``, this worker's private pipe to the
    parent (see :class:`_ResultWriter` for why it is not a shared queue).
    """
    result_queue = _ResultWriter(result_conn)
    try:
        service = RoutingService.load(artifact_path,
                                      cache_config=cache_config,
                                      kernel=kernel, telemetry=telemetry)
    except BaseException as exc:
        result_queue.put(("failed", worker_id,
                          f"{type(exc).__name__}: {exc}"))
        return
    service.stats.extra["worker_id"] = worker_id
    cover_service: Optional[RoutingService] = None
    own_shard, own_workers = slice_spec if slice_spec else (None, None)

    def split(indexed_pairs):
        """(own, other) — other is non-empty only for out-of-slice sources."""
        if own_shard is None or cover_artifact_path is None:
            return indexed_pairs, []
        own, other = [], []
        for item in indexed_pairs:
            if stable_node_hash(item[1][0]) % own_workers == own_shard:
                own.append(item)
            else:
                other.append(item)
        return own, other

    def snapshot() -> ServingStats:
        stats = service.query_stats()
        if cover_service is None:
            return stats
        # Fold the cover service's counters into a copy (never the live
        # stats object — repeated snapshots must not compound).
        cover = cover_service.query_stats()
        merged = dataclasses.replace(stats, extra=dict(stats.extra))
        for name in ("queries", "route_queries", "distance_queries",
                     "batches", "batched_queries", "cache_hits",
                     "cache_misses", "hot_hits"):
            setattr(merged, name, getattr(merged, name)
                    + getattr(cover, name))
        merged.extra["cover_queries"] = cover.queries
        if telemetry:
            merged.extra["telemetry"] = merge_exports(
                [stats.extra.get("telemetry", {}),
                 cover.extra.get("telemetry", {})])
        return merged

    result_queue.put(("ready", worker_id, service.stats.load_seconds))
    while True:
        message = task_queue.get()
        tag = message[0]
        if tag == "shutdown":
            # query_stats() refreshes the hierarchy-level snapshots (pivot
            # cache, kernel groups) so the merged stats see final values.
            result_queue.put(("bye", worker_id, snapshot()))
            return
        if tag == "stats":
            result_queue.put(("stats", worker_id, snapshot()))
            continue
        if tag == "ping":
            result_queue.put(("pong", worker_id, message[1]))
            continue
        if tag != "query":
            result_queue.put(("error", worker_id, None,
                              f"unknown command {tag!r}", ""))
            continue
        _, request_id, kind, indexed_pairs = message
        try:
            own, other = split(indexed_pairs)
            indexed_values = []
            if own:
                values = answer_batch(service, kind,
                                      [pair for _, pair in own])
                indexed_values.extend(
                    (index, value) for (index, _), value in zip(own, values))
            if other:
                if cover_service is None:
                    cover_service = RoutingService.load(
                        cover_artifact_path, cache_config=cache_config,
                        kernel=kernel, telemetry=telemetry)
                values = answer_batch(cover_service, kind,
                                      [pair for _, pair in other])
                indexed_values.extend(
                    (index, value) for (index, _), value
                    in zip(other, values))
        except Exception as exc:
            result_queue.put(("error", worker_id, request_id,
                              f"{type(exc).__name__}: {exc}",
                              traceback.format_exc()))
            continue
        result_queue.put(("ok", worker_id, request_id, indexed_values))


def _collector_main(service_ref, stop: threading.Event) -> None:
    """Collector thread body (module-level, weakref-based on purpose).

    The thread must not pin the front-end alive: a bound-method target
    would hold a strong reference forever and ``__del__`` — the unclosed-
    service ``ResourceWarning`` contract — could never fire.  The service
    is re-derefed only for the microseconds a snapshot is taken or a
    message dispatched; while blocked in ``select`` the thread holds
    nothing but the channel list and the backlog deque.
    """
    while not stop.is_set():
        service = service_ref()
        if service is None:
            return
        backlog = service._result_backlog
        with service._lock:
            channels = [h.channel for h in service._workers
                        if h.channel is not None and not h.channel.exhausted]
        del service
        message = _poll_channels(channels, backlog, timeout=0.1)
        service = service_ref()
        if service is None:
            return
        if message is None:
            service._check_liveness()
        else:
            service._dispatch(message)
        del service


class _WorkerHandle:
    """Parent-side record of one worker: its process, private task queue,
    and the parent end of its private result pipe (``channel``).

    ``state`` is the supervisor's slot lifecycle (always ``"alive"``
    outside fleet mode): ``alive`` → serving; ``warming`` → respawned,
    loading its artifact; ``dead`` → exited unexpectedly, awaiting respawn;
    ``parked`` → scaled down deliberately (its final stats survive in
    ``final_stats``).
    """

    __slots__ = ("worker_id", "process", "task_queue", "channel", "state",
                 "final_stats")

    def __init__(self, worker_id, process, task_queue, channel=None):
        self.worker_id = worker_id
        self.process = process
        self.task_queue = task_queue
        self.channel: Optional[_ResultChannel] = channel
        self.state = "alive"
        self.final_stats: Optional[ServingStats] = None


#: Pseudo worker id holding shards that could not be routed because no
#: worker was alive at retry time; the supervisor re-dispatches them when
#: a respawn completes.  Never collides with real ids (always >= 0).
_DEFERRED_SLOT = -1


class _BatchTicket:
    """One in-flight batch: filled in by the collector, awaited by callers.

    ``outstanding`` maps ``worker_id -> [shard, ...]`` where each shard is
    the ``[(index, pair), ...]`` list sent in one ``("query", ...)``
    message, oldest first.  Workers answer their queue in FIFO order, so
    an ``"ok"`` always retires the *first* shard in its worker's list —
    and on worker death the shards still listed are exactly the
    unanswered ones, ready to be re-scattered verbatim to siblings.
    """

    __slots__ = ("request_id", "kind", "results", "outstanding",
                 "done", "error")

    def __init__(self, request_id: int, kind: str, size: int,
                 outstanding: Optional[Dict[int, List]] = None) -> None:
        self.request_id = request_id
        self.kind = kind
        self.results: List = [None] * size
        self.outstanding: Dict[int, List] = outstanding or {}
        self.done = threading.Event()
        self.error: Optional[ShardError] = None
        if not self.outstanding:
            self.done.set()


class ShardedRoutingService:
    """Serve batched queries by scattering them across N worker processes.

    Parameters
    ----------
    artifact_path:
        Persisted hierarchy every worker loads (must already exist; use
        :meth:`build_or_load` to create it from a graph first).
    num_workers:
        Worker process count (>= 1).
    partitioner:
        A name from the partitioner registry (``round_robin`` /
        ``hash_pair`` / ``adaptive`` built in — see
        :mod:`repro.serving.partitioners`); ``partitioner_params`` are
        forwarded to the partitioner factory.  A partitioner that declares
        ``wants_feedback`` is handed fresh per-worker stats every
        ``feedback_every`` completed batches so it can rebalance on
        observed hit rates.
    cache_size:
        Per-worker LRU result-cache capacity (each worker caches only its
        own partition, so aggregate capacity is ``num_workers * cache_size``).
        Ignored when ``cache_config`` is given.
    cache_config:
        Full per-worker cache behaviour (policy, capacity, hot-set policy)
        as a :class:`~repro.serving.config.CacheConfig`.
    sub_artifact_paths:
        Optional per-shard sub-artifact paths (one per worker, shard
        order — see
        :func:`~repro.serving.artifacts.write_shard_artifacts`): worker
        ``w`` loads ``sub_artifact_paths[w]`` instead of the shared
        artifact, holding only its partition's tables.  Requires a
        partitioner that routes every query to its source's shard
        (``partitions_by_source``, e.g. ``"hash_source"``) — the slices
        are only complete for those queries, and the identity invariant
        would otherwise break.
    pipeline_depth:
        Maximum batches in flight front-end-wide; :meth:`submit_batch`
        past this bound blocks or rejects per ``admission``.
    max_inflight:
        Maximum outstanding batches per worker (the in-flight window that
        overlaps batch serialization with worker compute).
    admission:
        ``"block"`` delays submitters at the bounds (recorded in the
        ``inflight_wait`` span); ``"reject"`` raises
        :class:`~repro.serving.wire.BackpressureError` immediately.
    start_method:
        ``multiprocessing`` start method (``None`` = platform default).
    graph:
        Optional graph handle kept for workload generation; queries are
        *not* validated against it in the parent — an invalid node raises in
        the owning worker and surfaces as :class:`ShardError`.
    stats:
        Front-end counters (scatter batches, query volumes).  Per-worker
        serving stats live in the workers; see :meth:`merged_stats`.
    """

    def __init__(self, artifact_path: str, num_workers: int = 2,
                 partitioner: str = "round_robin", cache_size: int = 4096,
                 cache_config: Optional[CacheConfig] = None,
                 partitioner_params: Optional[Dict[str, object]] = None,
                 sub_artifact_paths: Optional[Sequence[str]] = None,
                 pipeline_depth: int = 8, max_inflight: int = 4,
                 admission: str = "block",
                 start_method: Optional[str] = None,
                 warm_timeout: float = 120.0, reply_timeout: float = 300.0,
                 graph: Optional[WeightedGraph] = None,
                 stats: Optional[ServingStats] = None,
                 kernel: str = "auto", telemetry: bool = False,
                 fleet=None, build_workers: int = 1) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if build_workers < 1:
            raise ValueError(f"build_workers must be >= 1, "
                             f"got {build_workers}")
        if pipeline_depth < 1:
            raise ValueError(f"pipeline_depth must be >= 1, "
                             f"got {pipeline_depth}")
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, "
                             f"got {max_inflight}")
        if admission not in ("block", "reject"):
            raise ValueError(f"admission must be 'block' or 'reject', "
                             f"got {admission!r}")
        # Resolving the partitioner up front also validates the name (the
        # registry raises "unknown partition strategy ..." for typos).
        self._partitioner = make_partitioner(partitioner, num_workers,
                                             **(partitioner_params or {}))
        if not os.path.exists(artifact_path):
            raise FileNotFoundError(
                f"artifact {artifact_path!r} does not exist; build it first "
                f"(e.g. via repro.serving.open_service)")
        if sub_artifact_paths is not None:
            sub_artifact_paths = list(sub_artifact_paths)
            if len(sub_artifact_paths) != num_workers:
                raise ValueError(
                    f"got {len(sub_artifact_paths)} sub-artifact paths for "
                    f"{num_workers} workers (need exactly one per worker, "
                    f"in shard order)")
            if not getattr(self._partitioner, "partitions_by_source", False):
                raise ValueError(
                    f"sub-artifacts slice tables by source node, so the "
                    f"partitioner must route every query to its source's "
                    f"shard (partitions_by_source, e.g. 'hash_source'); "
                    f"got {partitioner!r}")
            self._validate_sub_artifacts(artifact_path, sub_artifact_paths)
        if cache_config is None:
            cache_config = CacheConfig(capacity=cache_size)
        if cache_config.hot_set == "explicit":
            # Workers apply the cache config independently, so an explicit
            # pair list would be recomputed and pinned N times while each
            # pair is only ever routed to one shard — reject it rather than
            # silently multiply warm-up cost and memory by the worker count.
            # Online promotion is per-worker by construction and stays
            # allowed.
            raise ValueError(
                "explicit hot sets are not supported for sharded serving "
                "(every worker would pin every pair); pin per worker via a "
                "custom policy or use hot_set='online'")
        self.artifact_path = artifact_path
        self.num_workers = num_workers
        self.partitioner = partitioner
        self.cache_config = cache_config
        self.cache_size = cache_config.capacity
        self.sub_artifact_paths = sub_artifact_paths
        self.pipeline_depth = pipeline_depth
        self.max_inflight = max_inflight
        self.admission = admission
        self.kernel = kernel
        self.telemetry = telemetry
        #: Process-pool width for sub-artifact slice regeneration (the
        #: fleet respawn path); never affects query answers.
        self.build_workers = build_workers
        #: Front-end registry: scatter/gather/inflight_wait spans and the
        #: queue-depth histogram live here; per-worker span histograms live
        #: in the workers and merge through ``ServingStats.merge`` (see
        #: :meth:`merged_stats`).  Recording happens under ``_lock`` — the
        #: registry itself is not thread-safe, the pipeline is.
        self.metrics = make_registry(telemetry)
        self.graph = graph
        self.stats = stats if stats is not None else ServingStats()
        self.stats.extra.setdefault("workers", num_workers)
        self.stats.extra.setdefault("partitioner", partitioner)
        self.stats.extra.setdefault("kernel_requested", kernel)
        self.stats.extra.setdefault("artifact_path", artifact_path)
        self.stats.extra.setdefault("sub_artifacts",
                                    sub_artifact_paths is not None)
        self._ctx = multiprocessing.get_context(start_method)
        self._warm_timeout = warm_timeout
        self._reply_timeout = reply_timeout
        self._workers: List[_WorkerHandle] = []
        # Parsed-but-undelivered worker messages; consumed by exactly one
        # thread at a time (warm-up, then the collector, then the drain).
        self._result_backlog: collections.deque = collections.deque()
        # Channels of respawn-replaced workers: kept open (but out of the
        # select set) until close(), so their fd numbers cannot be reused
        # while the collector might still hold a stale reference.
        self._retired_channels: List[_ResultChannel] = []
        self._request_counter = 0
        self._started = False
        self._closed = False
        self._final_worker_stats: List[ServingStats] = []
        self._undrained_workers: List[int] = []
        # Pipeline state: one lock/condition guards tickets, per-worker
        # in-flight counts, stats waiters, the partitioner and the metrics
        # registry; the collector thread completes tickets and notifies.
        self._lock = threading.RLock()
        self._can_submit = threading.Condition(self._lock)
        self._tickets: Dict[int, _BatchTicket] = {}
        self._inflight: Dict[int, int] = {}
        self._stats_waiters: List[Dict] = []
        self._collector: Optional[threading.Thread] = None
        self._collector_stop = threading.Event()
        self._failure: Optional[ShardError] = None
        self._completed_batches = 0
        self._next_feedback = self._partitioner.feedback_every
        self._close_lock = threading.Lock()
        # Fleet mode: a FleetSupervisor owns the worker set — liveness,
        # respawn, rebalancing and scaling — and replaces the static
        # partitioner with its epoch-versioned routing table.  Imported
        # lazily so the base sharded path never touches the fleet module.
        self._fleet = None
        if fleet is not None:
            from .fleet import FleetConfig, FleetSupervisor
            if fleet is True:
                fleet = FleetConfig()
            if not isinstance(fleet, FleetConfig):
                raise ValueError(f"fleet must be a FleetConfig (or True for "
                                 f"defaults), got {fleet!r}")
            if num_workers < 2:
                raise ValueError(
                    f"fleet mode needs num_workers >= 2 (siblings cover a "
                    f"dead worker's partition), got {num_workers}")
            if not getattr(self._partitioner, "partitions_by_source", False):
                raise ValueError(
                    f"fleet mode routes by source hash (the epoch table "
                    f"must agree with sub-artifact slicing), so the "
                    f"partitioner must partition by source "
                    f"(e.g. 'hash_source'); got {partitioner!r}")
            self._fleet = FleetSupervisor(self, fleet)
            self.stats.extra.setdefault("fleet", True)

    @staticmethod
    def _validate_sub_artifacts(artifact_path: str,
                                sub_artifact_paths: List[str]) -> None:
        """Header-only provenance check of caller-supplied slices.

        Each slice must exist, declare the expected ``{shard, workers}``
        provenance, and *derive from this artifact*: the slicer copies the
        pivot and intern sections verbatim, so their header checksums must
        match the parent's.  This catches the silent-staleness trap — an
        artifact rebuilt in place while old slices linger on disk would
        otherwise serve the previous hierarchy's tables without any error.
        """
        from .artifacts import artifact_info

        workers = len(sub_artifact_paths)
        parent = artifact_info(artifact_path)
        if parent.sections is None:
            raise ValueError(
                f"sub-artifacts require a format-2 parent artifact; "
                f"{artifact_path!r} is format {parent.format_version}")
        for shard, sub_path in enumerate(sub_artifact_paths):
            if not os.path.exists(sub_path):
                raise FileNotFoundError(
                    f"sub-artifact {sub_path!r} does not exist; "
                    f"materialise the slices first (repro.serving."
                    f"write_shard_artifacts)")
            info = artifact_info(sub_path)
            provenance = info.metadata.get("sub_artifact")
            if (not isinstance(provenance, dict)
                    or provenance.get("shard") != shard
                    or provenance.get("workers") != workers):
                raise ValueError(
                    f"{sub_path!r} is not the shard-{shard}-of-{workers} "
                    f"sub-artifact its position implies (header says "
                    f"{provenance!r}); pass write_shard_artifacts' paths "
                    f"in shard order")
            for section in ("nodes", "pivots"):
                if (info.sections[section]["sha256"]
                        != parent.sections[section]["sha256"]):
                    raise ValueError(
                        f"{sub_path!r} was sliced from a different build "
                        f"of {artifact_path!r} (section {section!r} "
                        f"differs); re-run write_shard_artifacts — stale "
                        f"slices would silently serve the old tables")

    # ==================================================================
    # construction
    # ==================================================================
    @classmethod
    def build_or_load(cls, path: str, graph: Optional[WeightedGraph] = None,
                      k: int = 3, epsilon: float = 0.25, seed: int = 0,
                      mode: str = "auto", engine: str = "batched",
                      num_workers: int = 2, partitioner: str = "round_robin",
                      cache_size: int = 4096,
                      start_method: Optional[str] = None,
                      **build_kwargs) -> "ShardedRoutingService":
        """Deprecated kwargs shim; use ``open_service(ServingConfig(...))``.

        The v2 factory covers this exactly: ``open_service`` with
        ``workers > 1`` builds (or freshness-checks) the artifact in the
        parent and returns a sharded front-end over it.  This wrapper only
        repackages the kwargs chain and will be removed after a deprecation
        period.
        """
        warnings.warn(
            "ShardedRoutingService.build_or_load(...) is deprecated; use "
            "repro.serving.open_service(ServingConfig(artifact_path=..., "
            "workers=N))",
            DeprecationWarning, stacklevel=2)
        parent = build_or_load_service(
            path, graph=graph,
            build=BuildConfig(k=k, epsilon=epsilon, seed=seed, mode=mode,
                              engine=engine),
            cache=CacheConfig(capacity=0), save=True, **build_kwargs)
        stats = ServingStats(build_seconds=parent.stats.build_seconds,
                             load_seconds=parent.stats.load_seconds,
                             artifact_bytes=parent.stats.artifact_bytes,
                             extra=dict(parent.stats.extra))
        return cls(path, num_workers=num_workers, partitioner=partitioner,
                   cache_size=cache_size, start_method=start_method,
                   graph=parent.hierarchy.graph, stats=stats)

    # ==================================================================
    # worker lifecycle
    # ==================================================================
    def _spawn_worker(self, worker_id: int) -> _WorkerHandle:
        """Spawn one worker process; the caller installs the handle.

        Slot ``worker_id`` loads its sub-artifact slice when one exists for
        it (dynamic fleet slots past the base set always load the full
        artifact).  In fleet mode a sliced worker also gets the parent
        artifact as its cover path, so it can answer out-of-slice queries
        while a sibling is down.
        """
        task_queue = self._ctx.Queue()
        reader, writer = self._ctx.Pipe(duplex=False)
        if (self.sub_artifact_paths is not None
                and worker_id < len(self.sub_artifact_paths)):
            worker_artifact = self.sub_artifact_paths[worker_id]
            slice_spec = (worker_id, len(self.sub_artifact_paths))
            cover = self.artifact_path if self._fleet is not None else None
        else:
            worker_artifact = self.artifact_path
            slice_spec = None
            cover = None
        process = self._ctx.Process(
            target=_shard_worker,
            args=(worker_id, worker_artifact, self.cache_config,
                  self.kernel, self.telemetry, task_queue,
                  writer, cover, slice_spec),
            daemon=True, name=f"repro-shard-{worker_id}")
        process.start()
        # The child owns the write end now; dropping the parent's copy
        # keeps the fd table bounded across respawns.
        writer.close()
        return _WorkerHandle(worker_id, process, task_queue,
                             channel=_ResultChannel(reader))

    def start(self) -> "ShardedRoutingService":
        """Spawn the workers and block until every one has warmed up."""
        if self._closed:
            raise ShardError("sharded service is closed")
        if self._started:
            return self
        for worker_id in range(self.num_workers):
            self._workers.append(self._spawn_worker(worker_id))
        ready = 0
        load_seconds: List[float] = []
        deadline = time.monotonic() + self._warm_timeout
        while ready < self.num_workers:
            message = self._next_message(
                timeout=min(0.1, max(0.01, deadline - time.monotonic())))
            if message is None:
                if time.monotonic() >= deadline:
                    self._abort()
                    raise ShardError(
                        f"only {ready}/{self.num_workers} workers warmed "
                        f"up within {self._warm_timeout}s")
                continue
            if message[0] == "failed":
                self._abort()
                raise ShardError(
                    f"worker {message[1]} failed to load "
                    f"{self.artifact_path!r}: {message[2]}")
            if message[0] == "ready":
                ready += 1
                if message[2] is not None:
                    load_seconds.append(message[2])
        if load_seconds:
            self.stats.extra["worker_load_seconds_max"] = max(load_seconds)
        self._inflight = {h.worker_id: 0 for h in self._workers}
        self._collector_stop.clear()
        self._collector = threading.Thread(
            target=_collector_main,
            args=(weakref.ref(self), self._collector_stop),
            name="repro-shard-collector", daemon=True)
        self._collector.start()
        self._started = True
        if self._fleet is not None:
            self._fleet.start()
        return self

    def close(self, drain: bool = True,
              timeout: float = 30.0) -> List[ServingStats]:
        """Shut the workers down; returns their final stats when drained.

        With ``drain=True`` the front-end first waits for every in-flight
        ticket to complete (no submitted batch is abandoned), then each
        live worker finishes its queued work, sends a final stats
        snapshot, and exits; stragglers past ``timeout`` are terminated.
        ``drain=False`` terminates immediately (the fail-stop path).
        Idempotent; after closing, queries raise :class:`ShardError`.
        """
        with self._close_lock:
            if self._closed:
                return list(self._final_worker_stats)
            self._closed = True
            if not self._started:
                return []
            if self._fleet is not None:
                # Stop the supervisor first: no respawn or scale decision
                # may race the teardown below.
                self._fleet.stop()
            deadline = time.monotonic() + timeout
            if drain:
                # In-flight tickets complete through the collector before
                # any worker is asked to exit.
                with self._can_submit:
                    while (self._tickets and self._failure is None
                           and time.monotonic() < deadline):
                        self._can_submit.wait(timeout=0.1)
            self._stop_collector()
            final_stats: List[ServingStats] = []
            if drain:
                expecting = set()
                for handle in self._workers:
                    if handle.process.is_alive():
                        try:
                            handle.task_queue.put(("shutdown",))
                            expecting.add(handle.worker_id)
                        except (OSError, ValueError):
                            pass
                while expecting and time.monotonic() < deadline:
                    message = self._next_message(timeout=0.05)
                    if message is None:
                        continue
                    # Late "ok"/"stats" replies from interrupted requests
                    # are skipped; only the final per-worker snapshot is
                    # kept.
                    if message[0] == "bye":
                        final_stats.append(message[2])
                        expecting.discard(message[1])
                # Stragglers past the deadline get terminated below and
                # their final snapshots are lost; record who, so
                # merged_stats can say its totals are incomplete instead
                # of silently under-counting.  Workers the fleet already
                # retired carry their snapshot on the handle (parked
                # workers sent "bye" when scaled down) — fold those in;
                # dead slots never made it into ``expecting`` (their
                # process was gone) and are expected to be missing.
                for handle in self._workers:
                    if handle.final_stats is not None:
                        final_stats.append(handle.final_stats)
                self._undrained_workers = sorted(expecting)
            if not drain:
                # Fail-stop path: nobody was asked to exit, so don't wait.
                for handle in self._workers:
                    if handle.process.is_alive():
                        handle.process.terminate()
            for handle in self._workers:
                handle.process.join(timeout=5.0)
                if handle.process.is_alive():
                    handle.process.terminate()
                    handle.process.join(timeout=5.0)
            self._final_worker_stats = final_stats
            for handle in self._workers:
                handle.task_queue.close()
                if handle.channel is not None:
                    handle.channel.close()
            for channel in self._retired_channels:
                channel.close()
            self._retired_channels = []
            # Wake anyone still blocked in submit/wait with a clear error.
            with self._can_submit:
                if self._tickets and self._failure is None:
                    self._failure = ShardError(
                        "sharded service closed with batches in flight",
                        pending_request_ids=tuple(sorted(self._tickets)))
                for ticket in self._tickets.values():
                    ticket.error = self._failure
                    ticket.done.set()
                self._tickets.clear()
                self._can_submit.notify_all()
            return list(final_stats)

    def _stop_collector(self) -> None:
        self._collector_stop.set()
        if (self._collector is not None
                and self._collector is not threading.current_thread()):
            self._collector.join(timeout=5.0)
        self._collector = None

    def _abort(self) -> None:
        """Fail-stop: kill every worker without draining."""
        self.close(drain=False)

    def __enter__(self) -> "ShardedRoutingService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    def __del__(self) -> None:
        # Implicit teardown of a still-running front-end is a bug in the
        # caller (worker processes and their final stats are silently
        # discarded), so say so instead of swallowing it — the same
        # contract as an unclosed file or socket.
        try:
            if self._started and not self._closed:
                warnings.warn(f"unclosed {self!r}: ShardedRoutingService "
                              f"was garbage-collected while its workers "
                              f"were still running; call close() or use it "
                              f"as a context manager",
                              ResourceWarning, source=self, stacklevel=2)
                self.close(drain=False)
        except BaseException:
            pass

    @property
    def is_running(self) -> bool:
        if not self._started or self._closed:
            return False
        if self._fleet is not None:
            # Fleet mode survives individual deaths: running means at
            # least one routable worker (the supervisor is respawning the
            # rest, or has latched a FleetError if it cannot).
            return self._failure is None and any(
                h.state == "alive" and h.process.is_alive()
                for h in self._workers)
        return all(h.process.is_alive() for h in self._workers)

    # ==================================================================
    # collector: completes tickets from the per-worker reply pipes
    # ==================================================================
    def _next_message(self, timeout: float):
        """The next worker→parent message, or ``None`` after ``timeout``.

        Thin wrapper over :func:`_poll_channels` against a fresh channel
        snapshot.  Consumed by one thread at a time: ``start()`` during
        warm-up, the collector while serving, and ``close()`` during the
        drain (the collector itself snapshots and polls directly so it
        never holds the service while blocked).
        """
        with self._lock:
            channels = [h.channel for h in self._workers
                        if h.channel is not None and not h.channel.exhausted]
        return _poll_channels(channels, self._result_backlog, timeout)

    def _check_liveness(self) -> None:
        """Notice workers that died without replying (OOM kill, segfault)."""
        if self._fleet is not None:
            # The supervisor recovers instead of latching: re-scatter the
            # dead slot's unanswered shards to siblings now (the collector
            # calls this between replies, well inside the heartbeat) and
            # leave respawn to the beat thread.
            self._fleet.poll_liveness()
            return
        with self._lock:
            waiting = bool(self._tickets) or bool(self._stats_waiters)
        if not waiting:
            return
        dead = [h.worker_id for h in self._workers
                if not h.process.is_alive()]
        if not dead:
            return
        # Grace read: the worker may have replied just before dying and
        # the bytes may still be sitting in its pipe.
        message = self._next_message(timeout=0.5)
        if message is None:
            self._latch_failure(ShardError(
                f"worker(s) {dead} died without replying"))
            return
        self._dispatch(message)

    def _dispatch(self, message) -> None:
        tag = message[0]
        if tag == "ok":
            _, worker_id, request_id, indexed = message
            with self._can_submit:
                ticket = self._tickets.get(request_id)
                if ticket is None:
                    return  # late reply from an aborted request
                shards = ticket.outstanding.get(worker_id)
                if not shards:
                    # Late reply from a worker whose shard was already
                    # re-scattered to a sibling after its (apparent)
                    # death; the sibling's answers are identical, so
                    # dropping this one is safe either way.
                    return
                for index, value in indexed:
                    ticket.results[index] = value
                # Workers answer their task queue in FIFO order, so this
                # reply retires the oldest outstanding shard.
                shards.pop(0)
                if not shards:
                    del ticket.outstanding[worker_id]
                self._inflight[worker_id] = max(
                    0, self._inflight.get(worker_id, 0) - 1)
                if not ticket.outstanding:
                    del self._tickets[request_id]
                    self._completed_batches += 1
                    ticket.done.set()
                self._can_submit.notify_all()
            return
        if self._fleet is not None and tag in ("pong", "ready", "failed",
                                               "bye"):
            # Supervisor traffic: heartbeat replies and the lifecycle of
            # respawned / scaled workers (initial warm-up "ready"s are
            # consumed directly by start(), before the collector runs).
            self._fleet.on_message(message)
            return
        if tag == "error":
            _, worker_id, request_id, summary, worker_tb = message
            self._latch_failure(ShardError(
                f"worker {worker_id} failed answering batch: {summary}",
                worker_traceback=worker_tb))
            return
        if tag == "stats":
            _, worker_id, snapshot = message
            with self._can_submit:
                # Stats requests enqueue one ("stats",) per worker and
                # workers reply FIFO, so a reply belongs to the oldest
                # waiter still missing this worker.
                for waiter in self._stats_waiters:
                    if worker_id in waiter["remaining"]:
                        waiter["remaining"].discard(worker_id)
                        waiter["snapshots"][worker_id] = snapshot
                        if not waiter["remaining"]:
                            self._stats_waiters.remove(waiter)
                            waiter["done"].set()
                        break
            return
        # "ready"/"failed" replays or stray "bye" frames: nothing to do.

    def _latch_failure(self, error: ShardError) -> None:
        """Fail-stop latch: every current and future caller sees ``error``."""
        with self._can_submit:
            if self._failure is None:
                if not error.pending_request_ids:
                    # Record which submitted batches were lost so callers
                    # can retry precisely instead of replaying everything.
                    error.pending_request_ids = tuple(sorted(self._tickets))
                self._failure = error
            for ticket in self._tickets.values():
                ticket.error = self._failure
                ticket.done.set()
            self._tickets.clear()
            for waiter in self._stats_waiters:
                waiter["error"] = self._failure
                waiter["done"].set()
            self._stats_waiters.clear()
            self._can_submit.notify_all()

    # ==================================================================
    # queries (order-preserving scatter/gather, pipelined)
    # ==================================================================
    def route_batch(self, pairs: Sequence[_Pair]) -> List:
        """Route a batch; answers come back in input order."""
        return self.wait_batch(self.submit_batch("route", pairs))

    def distance_batch(self, pairs: Sequence[_Pair]) -> List[float]:
        """Distance estimates for a batch; answers in input order."""
        return self.wait_batch(self.submit_batch("distance", pairs))

    def submit_batch(self, kind: str, pairs: Sequence[_Pair]) -> _BatchTicket:
        """Scatter one batch without waiting for its answers.

        Returns a ticket for :meth:`wait_batch`.  Applies admission
        control first: when ``pipeline_depth`` batches are already in
        flight, or any target worker is at its ``max_inflight`` window,
        the call blocks (``admission="block"``, timed into the
        ``inflight_wait`` span) or raises
        :class:`~repro.serving.wire.BackpressureError`
        (``admission="reject"``).  Thread-safe: the network server's
        sessions submit concurrently.
        """
        if self._closed:
            raise ShardError("sharded service is closed")
        if not self._started:
            self.start()
        pairs = list(pairs)
        deadline = time.monotonic() + self._reply_timeout
        with self._can_submit:
            if self._failure is not None:
                raise self._failure
            self.stats.queries += len(pairs)
            if kind == "route":
                self.stats.route_queries += len(pairs)
            else:
                self.stats.distance_queries += len(pairs)
            self.stats.batches += 1
            self.stats.batched_queries += len(pairs)
            if not pairs:
                self._completed_batches += 1
                return _BatchTicket(0, kind, 0)
            scatter_start = time.perf_counter()
            epoch = None
            assignments: List[Tuple[int, List]] = []
            if self._fleet is None:
                shards = self._partitioner.partition(pairs)
                assignments = [(handle.worker_id, shard)
                               for handle, shard
                               in zip(self._workers, shards) if shard]
            elif self._fleet.has_routable:
                epoch, assignments = self._fleet.partition(pairs)
            partition_seconds = time.perf_counter() - scatter_start
            wait_start = time.perf_counter()
            while True:
                if self._failure is not None:
                    raise self._failure
                if self._closed:
                    raise ShardError("sharded service is closed")
                if self._fleet is not None:
                    # Never race a migration or a death: the routing table
                    # is epoch-versioned and partitioning happens under
                    # the same lock that publishes it, so re-partition if
                    # the epoch moved while this submitter waited.  (The
                    # static-partitioner path partitions exactly once —
                    # round_robin is stateful — and its worker set never
                    # changes.)
                    routable = self._fleet.has_routable
                    if routable and epoch != self._fleet.epoch:
                        epoch, assignments = self._fleet.partition(pairs)
                else:
                    routable = True
                targets = [worker_id for worker_id, _ in assignments]
                depth_ok = len(self._tickets) < self.pipeline_depth
                window_ok = all(self._inflight.get(w, 0) < self.max_inflight
                                for w in targets)
                if routable and depth_ok and window_ok:
                    break
                if self.admission == "reject":
                    raise BackpressureError(
                        f"pipeline full ({len(self._tickets)}/"
                        f"{self.pipeline_depth} batches in flight, "
                        f"per-worker window {self.max_inflight}); retry "
                        f"later or use admission='block'")
                if not self._can_submit.wait(timeout=0.2) \
                        and time.monotonic() >= deadline:
                    raise ShardError(
                        f"admission control made no progress within "
                        f"{self._reply_timeout}s")
            waited = time.perf_counter() - wait_start
            self._request_counter += 1
            request_id = self._request_counter
            ticket = _BatchTicket(request_id, kind, len(pairs),
                                  {worker_id: [shard]
                                   for worker_id, shard in assignments})
            self._tickets[request_id] = ticket
            enqueue_start = time.perf_counter()
            for worker_id, shard in assignments:
                self._inflight[worker_id] = \
                    self._inflight.get(worker_id, 0) + 1
                self._workers[worker_id].task_queue.put(
                    ("query", request_id, kind, shard))
            if self.metrics.enabled:
                # scatter = partition + enqueue; the admission wait is its
                # own span so backpressure is visible, not folded in.
                self.metrics.histogram("scatter").observe(
                    partition_seconds
                    + (time.perf_counter() - enqueue_start))
                self.metrics.histogram("inflight_wait").observe(waited)
                self.metrics.histogram("queue_depth", lo=1.0,
                                       hi=4096.0).observe(len(self._tickets))
        return ticket

    def wait_batch(self, ticket: _BatchTicket) -> List:
        """Block until one submitted batch completes; results in input
        order.  Worker failures and reply timeouts fail-stop the service,
        exactly as on the sequential path."""
        deadline = time.monotonic() + self._reply_timeout
        gather_start = time.perf_counter()
        while not ticket.done.wait(timeout=0.2):
            if time.monotonic() >= deadline:
                self._latch_failure(ShardError(
                    f"no worker reply within {self._reply_timeout}s"))
                self._abort()
                raise self._failure
        if ticket.error is not None:
            error = ticket.error
            self._abort()
            raise error
        if self.metrics.enabled:
            with self._lock:
                self.metrics.histogram("gather").observe(
                    time.perf_counter() - gather_start)
        if self._partitioner.wants_feedback:
            with self._lock:
                due = self._completed_batches >= self._next_feedback
                if due:
                    self._next_feedback = (self._completed_batches
                                           + self._partitioner.feedback_every)
            if due and not self._closed:
                # Adaptive partitioners rebalance on observed per-worker
                # hit rates; the stats round trip is only paid when asked
                # for.
                self._partitioner.observe(self.worker_stats())
        return ticket.results

    # ==================================================================
    # stats
    # ==================================================================
    def worker_stats(self) -> List[ServingStats]:
        """Per-worker stats snapshots (final snapshots once closed).

        Safe while batches are in flight: the request is tagged through
        the collector, so replies cannot be confused with query answers.
        """
        if self._closed or not self._started:
            return list(self._final_worker_stats)
        with self._can_submit:
            if self._failure is not None:
                raise self._failure
            # Only alive workers are asked; dead/warming/parked slots get
            # placeholders below so the list stays aligned with the slot
            # order (the adaptive partitioner and the fleet rebalancer
            # index it by shard).  The fleet death handler scrubs waiters
            # for workers that die mid-request, so this cannot hang on a
            # slot that will never answer.
            queried = [h for h in self._workers
                       if h.state == "alive" and h.process.is_alive()]
            waiter = {"remaining": {h.worker_id for h in queried},
                      "snapshots": {}, "done": threading.Event(),
                      "error": None}
            if waiter["remaining"]:
                self._stats_waiters.append(waiter)
            else:
                waiter["done"].set()
        for handle in queried:
            try:
                handle.task_queue.put(("stats",))
            except (OSError, ValueError):
                pass
        deadline = time.monotonic() + self._reply_timeout
        while not waiter["done"].wait(timeout=0.2):
            if time.monotonic() >= deadline:
                self._latch_failure(ShardError(
                    f"no stats reply within {self._reply_timeout}s"))
                self._abort()
                raise self._failure
        if waiter["error"] is not None:
            error = waiter["error"]
            self._abort()
            raise error
        out: List[ServingStats] = []
        for handle in self._workers:
            snapshot = waiter["snapshots"].get(handle.worker_id)
            if snapshot is None:
                snapshot = (handle.final_stats
                            if handle.final_stats is not None
                            else ServingStats())
            out.append(snapshot)
        return out

    def merged_stats(self) -> ServingStats:
        """One aggregate :class:`ServingStats` over all workers.

        Counters are the sums of the per-worker counters
        (:meth:`ServingStats.merge`); ``build_seconds`` is the parent's (the
        workers only ever load), and the front-end provenance (worker count,
        partitioner, artifact path, pipeline knobs) is folded into
        ``extra``.
        """
        merged = ServingStats.merge(self.worker_stats())
        if merged.build_seconds is None:
            merged.build_seconds = self.stats.build_seconds
        if merged.artifact_bytes is None:
            merged.artifact_bytes = self.stats.artifact_bytes
        merged.extra["workers"] = self.num_workers
        merged.extra["partitioner"] = self.partitioner
        merged.extra["artifact_path"] = self.artifact_path
        merged.extra["sub_artifacts"] = self.sub_artifact_paths is not None
        merged.extra["scatter_batches"] = self.stats.batches
        merged.extra["pipeline"] = {"depth": self.pipeline_depth,
                                    "max_inflight": self.max_inflight,
                                    "admission": self.admission}
        if self.metrics.enabled:
            # Fold the front-end's own spans (scatter/gather/inflight_wait
            # and the queue-depth histogram) into the per-worker telemetry
            # the merge already summed.
            with self._lock:
                front_end = self.metrics.export()
            merged.extra["telemetry"] = merge_exports(
                [merged.extra.get("telemetry", {}), front_end])
        merged.extra.update(self._partitioner.describe())
        if self._fleet is not None:
            merged.extra["fleet"] = self._fleet.status()
        if self._undrained_workers:
            merged.extra["undrained_workers"] = list(self._undrained_workers)
        return merged

    def query_stats(self) -> ServingStats:
        """Aggregate stats over all workers (the QueryBackend accessor)."""
        return self.merged_stats()

    def describe(self) -> str:
        return self.merged_stats().describe()

    def __repr__(self) -> str:
        state = ("running" if self.is_running
                 else "closed" if self._closed else "cold")
        return (f"ShardedRoutingService(workers={self.num_workers}, "
                f"partitioner={self.partitioner!r}, "
                f"artifact={self.artifact_path!r}, {state})")
