"""Multi-process sharded serving: fan one query stream across worker processes.

:class:`~repro.serving.service.RoutingService` is bound to a single Python
process, so the GIL caps its route throughput no matter how good the cache
hit rate is.  The artifact layer already makes a built hierarchy shareable
across processes — versioned, checksummed, query-identical on reload — which
makes the multi-process step cheap: build once in the parent, ``save``, and
let every worker ``load`` the same artifact and answer its slice of the
stream with a local :class:`RoutingService`.

:class:`ShardedRoutingService` keeps one hard invariant: its answers are
list-for-list identical to a single-process :class:`RoutingService` on the
same workload.  Sharding changes *where* a query is answered, never *what*
the answer is.  Partitioning is deterministic
(:func:`~repro.serving.workloads.partition_pairs`): ``round_robin`` balances
load exactly, ``hash_pair`` sends every occurrence of a pair to the same
shard so hot pairs warm exactly one shard's cache.

Sharding buys two things:

* **CPU parallelism** — N workers route on N cores (processes, not threads,
  so the GIL is out of the picture);
* **aggregate cache capacity** — N workers with per-worker LRU capacity C
  hold N·C results; a stream whose distinct-pair set thrashes one bounded
  cache can fit entirely in the sharded caches
  (``benchmarks/bench_shard_scaling.py`` measures exactly this regime).

Worker lifecycle: spawn → warm (load the artifact, signal ready) → serve
query batches (order-preserving scatter/gather) → drain and shut down, each
worker returning its final :class:`~repro.serving.cache.ServingStats`, which
:meth:`ServingStats.merge` folds into one aggregate.  Workers are daemonic;
an unexpected worker exception fail-stops the whole front-end (all workers
are shut down, the caller gets a :class:`ShardError`).
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import time
import traceback
import warnings
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..graphs.weighted_graph import WeightedGraph
from ..obs.metrics import make_registry, merge_exports
from .cache import ServingStats
from .config import BuildConfig, CacheConfig
from .partitioners import make_partitioner
from .service import RoutingService, answer_batch, build_or_load_service

__all__ = ["ShardedRoutingService", "ShardError"]

_Pair = Tuple[Hashable, Hashable]


class ShardError(RuntimeError):
    """A shard worker failed to warm up, answer, or reply in time.

    ``worker_traceback`` carries the remote traceback text when the failure
    originated from an exception inside a worker (empty otherwise).
    """

    def __init__(self, message: str, worker_traceback: str = "") -> None:
        if worker_traceback:
            message = (f"{message}\n--- worker traceback ---\n"
                       f"{worker_traceback.rstrip()}")
        super().__init__(message)
        self.worker_traceback = worker_traceback


def _shard_worker(worker_id: int, artifact_path: str,
                  cache_config: CacheConfig, kernel: str, telemetry: bool,
                  task_queue, result_queue) -> None:
    """Worker main loop (module-level so it stays picklable under spawn).

    Each worker applies the :class:`CacheConfig` locally — cache policy,
    capacity, and the (per-worker by construction) online hot-set policy;
    explicit hot sets are rejected by the front-end, since every worker
    would pin every pair while serving only its own partition.  The query
    ``kernel`` selector is likewise applied per worker against its own
    loaded artifact (``auto`` resolves to ``columnar`` on v2 artifacts).

    Protocol (all messages are tuples; the first element is the tag):

    * in  ``("query", request_id, kind, [(index, pair), ...])``
      out ``("ok", worker_id, request_id, [(index, result), ...])`` or
      ``("error", worker_id, request_id, summary, traceback_text)``
    * in  ``("stats",)``    → out ``("stats", worker_id, ServingStats)``
    * in  ``("shutdown",)`` → out ``("bye", worker_id, ServingStats)``, exit

    Warm-up emits ``("ready", worker_id, load_seconds)`` on success or
    ``("failed", worker_id, summary)`` if the artifact cannot be loaded.
    """
    try:
        service = RoutingService.load(artifact_path,
                                      cache_config=cache_config,
                                      kernel=kernel, telemetry=telemetry)
    except BaseException as exc:
        result_queue.put(("failed", worker_id,
                          f"{type(exc).__name__}: {exc}"))
        return
    service.stats.extra["worker_id"] = worker_id
    result_queue.put(("ready", worker_id, service.stats.load_seconds))
    while True:
        message = task_queue.get()
        tag = message[0]
        if tag == "shutdown":
            # query_stats() refreshes the hierarchy-level snapshots (pivot
            # cache, kernel groups) so the merged stats see final values.
            result_queue.put(("bye", worker_id, service.query_stats()))
            return
        if tag == "stats":
            result_queue.put(("stats", worker_id, service.query_stats()))
            continue
        if tag != "query":
            result_queue.put(("error", worker_id, None,
                              f"unknown command {tag!r}", ""))
            continue
        _, request_id, kind, indexed_pairs = message
        try:
            values = answer_batch(service, kind,
                                  [pair for _, pair in indexed_pairs])
        except Exception as exc:
            result_queue.put(("error", worker_id, request_id,
                              f"{type(exc).__name__}: {exc}",
                              traceback.format_exc()))
            continue
        result_queue.put(("ok", worker_id, request_id,
                          [(index, value) for (index, _), value
                           in zip(indexed_pairs, values)]))


class _WorkerHandle:
    """Parent-side record of one worker: its process and private task queue."""

    __slots__ = ("worker_id", "process", "task_queue")

    def __init__(self, worker_id, process, task_queue):
        self.worker_id = worker_id
        self.process = process
        self.task_queue = task_queue


class ShardedRoutingService:
    """Serve batched queries by scattering them across N worker processes.

    Parameters
    ----------
    artifact_path:
        Persisted hierarchy every worker loads (must already exist; use
        :meth:`build_or_load` to create it from a graph first).
    num_workers:
        Worker process count (>= 1).
    partitioner:
        A name from the partitioner registry (``round_robin`` /
        ``hash_pair`` / ``adaptive`` built in — see
        :mod:`repro.serving.partitioners`); ``partitioner_params`` are
        forwarded to the partitioner factory.  A partitioner that declares
        ``wants_feedback`` is handed fresh per-worker stats every
        ``feedback_every`` batches so it can rebalance on observed hit
        rates.
    cache_size:
        Per-worker LRU result-cache capacity (each worker caches only its
        own partition, so aggregate capacity is ``num_workers * cache_size``).
        Ignored when ``cache_config`` is given.
    cache_config:
        Full per-worker cache behaviour (policy, capacity, hot-set policy)
        as a :class:`~repro.serving.config.CacheConfig`.
    sub_artifact_paths:
        Optional per-shard sub-artifact paths (one per worker, shard
        order — see
        :func:`~repro.serving.artifacts.write_shard_artifacts`): worker
        ``w`` loads ``sub_artifact_paths[w]`` instead of the shared
        artifact, holding only its partition's tables.  Requires a
        partitioner that routes every query to its source's shard
        (``partitions_by_source``, e.g. ``"hash_source"``) — the slices
        are only complete for those queries, and the identity invariant
        would otherwise break.
    start_method:
        ``multiprocessing`` start method (``None`` = platform default).
    graph:
        Optional graph handle kept for workload generation; queries are
        *not* validated against it in the parent — an invalid node raises in
        the owning worker and surfaces as :class:`ShardError`.
    stats:
        Front-end counters (scatter batches, query volumes).  Per-worker
        serving stats live in the workers; see :meth:`merged_stats`.
    """

    def __init__(self, artifact_path: str, num_workers: int = 2,
                 partitioner: str = "round_robin", cache_size: int = 4096,
                 cache_config: Optional[CacheConfig] = None,
                 partitioner_params: Optional[Dict[str, object]] = None,
                 sub_artifact_paths: Optional[Sequence[str]] = None,
                 start_method: Optional[str] = None,
                 warm_timeout: float = 120.0, reply_timeout: float = 300.0,
                 graph: Optional[WeightedGraph] = None,
                 stats: Optional[ServingStats] = None,
                 kernel: str = "auto", telemetry: bool = False) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        # Resolving the partitioner up front also validates the name (the
        # registry raises "unknown partition strategy ..." for typos).
        self._partitioner = make_partitioner(partitioner, num_workers,
                                             **(partitioner_params or {}))
        if not os.path.exists(artifact_path):
            raise FileNotFoundError(
                f"artifact {artifact_path!r} does not exist; build it first "
                f"(e.g. via repro.serving.open_service)")
        if sub_artifact_paths is not None:
            sub_artifact_paths = list(sub_artifact_paths)
            if len(sub_artifact_paths) != num_workers:
                raise ValueError(
                    f"got {len(sub_artifact_paths)} sub-artifact paths for "
                    f"{num_workers} workers (need exactly one per worker, "
                    f"in shard order)")
            if not getattr(self._partitioner, "partitions_by_source", False):
                raise ValueError(
                    f"sub-artifacts slice tables by source node, so the "
                    f"partitioner must route every query to its source's "
                    f"shard (partitions_by_source, e.g. 'hash_source'); "
                    f"got {partitioner!r}")
            self._validate_sub_artifacts(artifact_path, sub_artifact_paths)
        if cache_config is None:
            cache_config = CacheConfig(capacity=cache_size)
        if cache_config.hot_set == "explicit":
            # Workers apply the cache config independently, so an explicit
            # pair list would be recomputed and pinned N times while each
            # pair is only ever routed to one shard — reject it rather than
            # silently multiply warm-up cost and memory by the worker count.
            # Online promotion is per-worker by construction and stays
            # allowed.
            raise ValueError(
                "explicit hot sets are not supported for sharded serving "
                "(every worker would pin every pair); pin per worker via a "
                "custom policy or use hot_set='online'")
        self.artifact_path = artifact_path
        self.num_workers = num_workers
        self.partitioner = partitioner
        self.cache_config = cache_config
        self.cache_size = cache_config.capacity
        self.sub_artifact_paths = sub_artifact_paths
        self.kernel = kernel
        self.telemetry = telemetry
        #: Front-end registry: scatter/gather spans live here; per-worker
        #: span histograms live in the workers and merge through
        #: ``ServingStats.merge`` (see :meth:`merged_stats`).
        self.metrics = make_registry(telemetry)
        self.graph = graph
        self.stats = stats if stats is not None else ServingStats()
        self.stats.extra.setdefault("workers", num_workers)
        self.stats.extra.setdefault("partitioner", partitioner)
        self.stats.extra.setdefault("kernel_requested", kernel)
        self.stats.extra.setdefault("artifact_path", artifact_path)
        self.stats.extra.setdefault("sub_artifacts",
                                    sub_artifact_paths is not None)
        self._ctx = multiprocessing.get_context(start_method)
        self._warm_timeout = warm_timeout
        self._reply_timeout = reply_timeout
        self._workers: List[_WorkerHandle] = []
        self._result_queue = None
        self._request_counter = 0
        self._started = False
        self._closed = False
        self._final_worker_stats: List[ServingStats] = []
        self._undrained_workers: List[int] = []

    @staticmethod
    def _validate_sub_artifacts(artifact_path: str,
                                sub_artifact_paths: List[str]) -> None:
        """Header-only provenance check of caller-supplied slices.

        Each slice must exist, declare the expected ``{shard, workers}``
        provenance, and *derive from this artifact*: the slicer copies the
        pivot and intern sections verbatim, so their header checksums must
        match the parent's.  This catches the silent-staleness trap — an
        artifact rebuilt in place while old slices linger on disk would
        otherwise serve the previous hierarchy's tables without any error.
        """
        from .artifacts import artifact_info

        workers = len(sub_artifact_paths)
        parent = artifact_info(artifact_path)
        if parent.sections is None:
            raise ValueError(
                f"sub-artifacts require a format-2 parent artifact; "
                f"{artifact_path!r} is format {parent.format_version}")
        for shard, sub_path in enumerate(sub_artifact_paths):
            if not os.path.exists(sub_path):
                raise FileNotFoundError(
                    f"sub-artifact {sub_path!r} does not exist; "
                    f"materialise the slices first (repro.serving."
                    f"write_shard_artifacts)")
            info = artifact_info(sub_path)
            provenance = info.metadata.get("sub_artifact")
            if (not isinstance(provenance, dict)
                    or provenance.get("shard") != shard
                    or provenance.get("workers") != workers):
                raise ValueError(
                    f"{sub_path!r} is not the shard-{shard}-of-{workers} "
                    f"sub-artifact its position implies (header says "
                    f"{provenance!r}); pass write_shard_artifacts' paths "
                    f"in shard order")
            for section in ("nodes", "pivots"):
                if (info.sections[section]["sha256"]
                        != parent.sections[section]["sha256"]):
                    raise ValueError(
                        f"{sub_path!r} was sliced from a different build "
                        f"of {artifact_path!r} (section {section!r} "
                        f"differs); re-run write_shard_artifacts — stale "
                        f"slices would silently serve the old tables")

    # ==================================================================
    # construction
    # ==================================================================
    @classmethod
    def build_or_load(cls, path: str, graph: Optional[WeightedGraph] = None,
                      k: int = 3, epsilon: float = 0.25, seed: int = 0,
                      mode: str = "auto", engine: str = "batched",
                      num_workers: int = 2, partitioner: str = "round_robin",
                      cache_size: int = 4096,
                      start_method: Optional[str] = None,
                      **build_kwargs) -> "ShardedRoutingService":
        """Deprecated kwargs shim; use ``open_service(ServingConfig(...))``.

        The v2 factory covers this exactly: ``open_service`` with
        ``workers > 1`` builds (or freshness-checks) the artifact in the
        parent and returns a sharded front-end over it.  This wrapper only
        repackages the kwargs chain and will be removed after a deprecation
        period.
        """
        warnings.warn(
            "ShardedRoutingService.build_or_load(...) is deprecated; use "
            "repro.serving.open_service(ServingConfig(artifact_path=..., "
            "workers=N))",
            DeprecationWarning, stacklevel=2)
        parent = build_or_load_service(
            path, graph=graph,
            build=BuildConfig(k=k, epsilon=epsilon, seed=seed, mode=mode,
                              engine=engine),
            cache=CacheConfig(capacity=0), save=True, **build_kwargs)
        stats = ServingStats(build_seconds=parent.stats.build_seconds,
                             load_seconds=parent.stats.load_seconds,
                             artifact_bytes=parent.stats.artifact_bytes,
                             extra=dict(parent.stats.extra))
        return cls(path, num_workers=num_workers, partitioner=partitioner,
                   cache_size=cache_size, start_method=start_method,
                   graph=parent.hierarchy.graph, stats=stats)

    # ==================================================================
    # worker lifecycle
    # ==================================================================
    def start(self) -> "ShardedRoutingService":
        """Spawn the workers and block until every one has warmed up."""
        if self._closed:
            raise ShardError("sharded service is closed")
        if self._started:
            return self
        self._result_queue = self._ctx.Queue()
        for worker_id in range(self.num_workers):
            task_queue = self._ctx.Queue()
            worker_artifact = (self.sub_artifact_paths[worker_id]
                               if self.sub_artifact_paths is not None
                               else self.artifact_path)
            process = self._ctx.Process(
                target=_shard_worker,
                args=(worker_id, worker_artifact, self.cache_config,
                      self.kernel, self.telemetry, task_queue,
                      self._result_queue),
                daemon=True, name=f"repro-shard-{worker_id}")
            process.start()
            self._workers.append(_WorkerHandle(worker_id, process, task_queue))
        ready = 0
        load_seconds: List[float] = []
        deadline = time.monotonic() + self._warm_timeout
        while ready < self.num_workers:
            try:
                message = self._result_queue.get(
                    timeout=max(0.01, deadline - time.monotonic()))
            except queue_module.Empty:
                self._abort()
                raise ShardError(
                    f"only {ready}/{self.num_workers} workers warmed up "
                    f"within {self._warm_timeout}s")
            if message[0] == "failed":
                self._abort()
                raise ShardError(
                    f"worker {message[1]} failed to load "
                    f"{self.artifact_path!r}: {message[2]}")
            if message[0] == "ready":
                ready += 1
                if message[2] is not None:
                    load_seconds.append(message[2])
        if load_seconds:
            self.stats.extra["worker_load_seconds_max"] = max(load_seconds)
        self._started = True
        return self

    def close(self, drain: bool = True,
              timeout: float = 30.0) -> List[ServingStats]:
        """Shut the workers down; returns their final stats when drained.

        With ``drain=True`` each live worker finishes its queued work, sends
        a final stats snapshot, and exits; stragglers past ``timeout`` are
        terminated.  ``drain=False`` terminates immediately (the fail-stop
        path).  Idempotent; after closing, queries raise :class:`ShardError`.
        """
        if self._closed:
            return list(self._final_worker_stats)
        self._closed = True
        if not self._started:
            return []
        final_stats: List[ServingStats] = []
        if drain:
            expecting = set()
            for handle in self._workers:
                if handle.process.is_alive():
                    try:
                        handle.task_queue.put(("shutdown",))
                        expecting.add(handle.worker_id)
                    except (OSError, ValueError):
                        pass
            deadline = time.monotonic() + timeout
            while expecting and time.monotonic() < deadline:
                try:
                    message = self._result_queue.get(timeout=0.05)
                except queue_module.Empty:
                    continue
                # Late "ok"/"stats" replies from interrupted requests are
                # skipped; only the final per-worker snapshot is kept.
                if message[0] == "bye":
                    final_stats.append(message[2])
                    expecting.discard(message[1])
            # Stragglers past the deadline get terminated below and their
            # final snapshots are lost; record who, so merged_stats can say
            # its totals are incomplete instead of silently under-counting.
            self._undrained_workers = sorted(expecting)
        if not drain:
            # Fail-stop path: nobody was asked to exit, so don't wait for it.
            for handle in self._workers:
                if handle.process.is_alive():
                    handle.process.terminate()
        for handle in self._workers:
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=5.0)
        self._final_worker_stats = final_stats
        for handle in self._workers:
            handle.task_queue.close()
        if self._result_queue is not None:
            self._result_queue.close()
        return list(final_stats)

    def _abort(self) -> None:
        """Fail-stop: kill every worker without draining."""
        self.close(drain=False)

    def __enter__(self) -> "ShardedRoutingService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    def __del__(self) -> None:
        # Implicit teardown of a still-running front-end is a bug in the
        # caller (worker processes and their final stats are silently
        # discarded), so say so instead of swallowing it — the same
        # contract as an unclosed file or socket.
        try:
            if self._started and not self._closed:
                warnings.warn(f"unclosed {self!r}: ShardedRoutingService "
                              f"was garbage-collected while its workers "
                              f"were still running; call close() or use it "
                              f"as a context manager",
                              ResourceWarning, source=self, stacklevel=2)
                self.close(drain=False)
        except BaseException:
            pass

    @property
    def is_running(self) -> bool:
        return (self._started and not self._closed
                and all(h.process.is_alive() for h in self._workers))

    # ==================================================================
    # queries (order-preserving scatter/gather)
    # ==================================================================
    def route_batch(self, pairs: Sequence[_Pair]) -> List:
        """Route a batch; answers come back in input order."""
        return self._query_batch("route", pairs)

    def distance_batch(self, pairs: Sequence[_Pair]) -> List[float]:
        """Distance estimates for a batch; answers in input order."""
        return self._query_batch("distance", pairs)

    def _query_batch(self, kind: str, pairs: Sequence[_Pair]) -> List:
        if self._closed:
            raise ShardError("sharded service is closed")
        if not self._started:
            self.start()
        pairs = list(pairs)
        self.stats.queries += len(pairs)
        if kind == "route":
            self.stats.route_queries += len(pairs)
        else:
            self.stats.distance_queries += len(pairs)
        self.stats.batches += 1
        self.stats.batched_queries += len(pairs)
        if not pairs:
            return []
        with self.metrics.span("scatter"):
            shards = self._partitioner.partition(pairs)
            self._request_counter += 1
            request_id = self._request_counter
            pending = set()
            for handle, shard in zip(self._workers, shards):
                if shard:
                    handle.task_queue.put(("query", request_id, kind, shard))
                    pending.add(handle.worker_id)
        results: List = [None] * len(pairs)
        with self.metrics.span("gather"):
            while pending:
                message = self._collect()
                tag = message[0]
                if tag == "error":
                    summary, worker_traceback = message[3], message[4]
                    self._abort()
                    raise ShardError(
                        f"worker {message[1]} failed answering {kind} batch: "
                        f"{summary}", worker_traceback=worker_traceback)
                if tag == "ok" and message[2] == request_id:
                    for index, value in message[3]:
                        results[index] = value
                    pending.discard(message[1])
        if (self._partitioner.wants_feedback
                and self.stats.batches % self._partitioner.feedback_every == 0):
            # Adaptive partitioners rebalance on observed per-worker hit
            # rates; the stats round trip is only paid when asked for.
            self._partitioner.observe(self.worker_stats())
        return results

    def _collect(self):
        # Poll in short slices so a worker that died without replying (OOM
        # kill, segfault) is noticed immediately, not after reply_timeout.
        deadline = time.monotonic() + self._reply_timeout
        while True:
            try:
                return self._result_queue.get(timeout=0.2)
            except queue_module.Empty:
                pass
            dead = [h.worker_id for h in self._workers
                    if not h.process.is_alive()]
            if dead:
                # Grace read: the worker may have replied just before dying
                # and the message may still be in flight through the pipe.
                try:
                    return self._result_queue.get(timeout=0.5)
                except queue_module.Empty:
                    self._abort()
                    raise ShardError(
                        f"worker(s) {dead} died without replying")
            if time.monotonic() >= deadline:
                self._abort()
                raise ShardError(
                    f"no worker reply within {self._reply_timeout}s")

    # ==================================================================
    # stats
    # ==================================================================
    def worker_stats(self) -> List[ServingStats]:
        """Per-worker stats snapshots (final snapshots once closed)."""
        if self._closed or not self._started:
            return list(self._final_worker_stats)
        for handle in self._workers:
            handle.task_queue.put(("stats",))
        snapshots = {}
        while len(snapshots) < len(self._workers):
            message = self._collect()
            if message[0] == "stats":
                snapshots[message[1]] = message[2]
        return [snapshots[h.worker_id] for h in self._workers]

    def merged_stats(self) -> ServingStats:
        """One aggregate :class:`ServingStats` over all workers.

        Counters are the sums of the per-worker counters
        (:meth:`ServingStats.merge`); ``build_seconds`` is the parent's (the
        workers only ever load), and the front-end provenance (worker count,
        partitioner, artifact path) is folded into ``extra``.
        """
        merged = ServingStats.merge(self.worker_stats())
        if merged.build_seconds is None:
            merged.build_seconds = self.stats.build_seconds
        if merged.artifact_bytes is None:
            merged.artifact_bytes = self.stats.artifact_bytes
        merged.extra["workers"] = self.num_workers
        merged.extra["partitioner"] = self.partitioner
        merged.extra["artifact_path"] = self.artifact_path
        merged.extra["sub_artifacts"] = self.sub_artifact_paths is not None
        merged.extra["scatter_batches"] = self.stats.batches
        if self.metrics.enabled:
            # Fold the front-end's own spans (scatter/gather) into the
            # per-worker telemetry the merge already summed.
            merged.extra["telemetry"] = merge_exports(
                [merged.extra.get("telemetry", {}), self.metrics.export()])
        merged.extra.update(self._partitioner.describe())
        if self._undrained_workers:
            merged.extra["undrained_workers"] = list(self._undrained_workers)
        return merged

    def query_stats(self) -> ServingStats:
        """Aggregate stats over all workers (the QueryBackend accessor)."""
        return self.merged_stats()

    def describe(self) -> str:
        return self.merged_stats().describe()

    def __repr__(self) -> str:
        state = ("running" if self.is_running
                 else "closed" if self._closed else "cold")
        return (f"ShardedRoutingService(workers={self.num_workers}, "
                f"partitioner={self.partitioner!r}, "
                f"artifact={self.artifact_path!r}, {state})")
