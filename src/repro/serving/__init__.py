"""Serving subsystem: persisted artifacts, cached query serving, workloads.

This package turns built routing structures into a servable product — the
bridge from the paper's preprocessing theorems to a query-serving system:

* :mod:`repro.serving.artifacts` — versioned save/load of built hierarchies
  and PDE results with integrity checking and lossless round-trips;
* :mod:`repro.serving.service`   — the :class:`RoutingService` facade:
  build-or-load, single and batched ``route`` / ``distance_estimate`` /
  full-path queries;
* :mod:`repro.serving.sharded`   — the :class:`ShardedRoutingService`
  front-end: one query stream scattered across N worker processes, each
  serving its partition from the same artifact;
* :mod:`repro.serving.cache`     — LRU result caching, hot-pair
  precomputation and the :class:`ServingStats` counters;
* :mod:`repro.serving.workloads` — reproducible uniform / Zipf / locality
  query-stream generators plus the deterministic shard partitioner;
* :mod:`repro.serving.cli`       — the ``repro-serve`` console entry point.
"""

from .artifacts import (
    ArtifactError,
    ArtifactInfo,
    artifact_info,
    load_hierarchy,
    load_pde,
    read_artifact,
    save_hierarchy,
    save_pde,
    write_artifact,
)
from .cache import LRUCache, ServingStats
from .service import RoutingService, answer_batch, execute_query_shard
from .sharded import ShardError, ShardedRoutingService
from .workloads import (
    PARTITION_STRATEGIES,
    QueryWorkload,
    WORKLOAD_NAMES,
    locality_workload,
    make_workload,
    partition_pairs,
    uniform_workload,
    zipf_workload,
)

__all__ = [
    "ArtifactError",
    "ArtifactInfo",
    "artifact_info",
    "read_artifact",
    "write_artifact",
    "save_hierarchy",
    "load_hierarchy",
    "save_pde",
    "load_pde",
    "LRUCache",
    "ServingStats",
    "RoutingService",
    "answer_batch",
    "execute_query_shard",
    "ShardedRoutingService",
    "ShardError",
    "QueryWorkload",
    "WORKLOAD_NAMES",
    "uniform_workload",
    "zipf_workload",
    "locality_workload",
    "make_workload",
    "PARTITION_STRATEGIES",
    "partition_pairs",
]
