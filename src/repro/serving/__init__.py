"""Serving subsystem: persisted artifacts, cached query serving, workloads.

This package turns built routing structures into a servable product — the
bridge from the paper's preprocessing theorems to a query-serving system.
The public surface (API v2) is one typed, policy-pluggable contract:

* :mod:`repro.serving.backend`   — the :class:`QueryBackend` protocol and
  the :func:`open_service` factory that returns a local or sharded backend
  from one :class:`ServingConfig`;
* :mod:`repro.serving.config`    — the frozen config family
  (:class:`BuildConfig`, :class:`CacheConfig`, :class:`WorkloadConfig`,
  :class:`ServingConfig`) with lossless ``to_dict``/``from_dict``
  round-trips and artifact-header provenance;
* :mod:`repro.serving.registry`  — string-keyed registries for
  partitioners, cache policies, hot-set policies and workloads
  (``register_*`` to extend, names resolve everywhere configs are used);
* :mod:`repro.serving.artifacts` — versioned save/load of built hierarchies
  and PDE results with integrity checking and lossless round-trips;
* :mod:`repro.serving.service`   — the :class:`RoutingService` local
  backend: build-or-load, single and batched ``route`` /
  ``distance_estimate`` / full-path queries;
* :mod:`repro.serving.sharded`   — the :class:`ShardedRoutingService`
  backend: one query stream scattered across N worker processes, each
  serving its partition from the same artifact;
* :mod:`repro.serving.fleet`     — the :class:`FleetSupervisor` elastic
  layer over the sharded backend (``ServingConfig.fleet``): heartbeat
  liveness, worker respawn with sibling cover, windowed load rebalancing
  through an epoch-versioned routing table, and queue-depth-driven
  scaling between ``min_workers`` and ``max_workers``;
* :mod:`repro.serving.cache`     — LRU result caching and the
  :class:`ServingStats` counters;
* :mod:`repro.serving.policies`  — hot-set policies (explicit
  precomputation and online promotion from LRU hit counts);
* :mod:`repro.serving.partitioners` — shard partitioners (round-robin,
  stable-hash, and hit-rate-adaptive);
* :mod:`repro.serving.workloads` — reproducible uniform / Zipf / locality /
  bursty query-stream generators;
* :mod:`repro.serving.wire`      — the framed message layer for networked
  serving (versioned frames, canonical JSON, typed wire errors);
* :mod:`repro.serving.session`   — :class:`ServerSession` /
  :class:`ClientSession`: the :class:`QueryBackend` protocol spoken over
  any byte stream, with a pipelined client window;
* :mod:`repro.serving.server`    — :class:`RoutingServer`, the long-lived
  TCP front-end behind ``repro-serve --serve``;
* :mod:`repro.serving.cli`       — the ``repro-serve`` console entry point.

Telemetry (:mod:`repro.obs`) threads through the whole stack behind
``ServingConfig.telemetry``: per-stage span histograms ride along in
``ServingStats.extra["telemetry"]`` and merge additively across shard
workers; trace capture/replay and the ``repro-experiment`` harness build
on the same backends via :class:`~repro.obs.trace.TraceRecorder` and the
registered ``trace`` workload.
"""

from .artifacts import (
    ArtifactError,
    ArtifactInfo,
    ArtifactV2Reader,
    artifact_info,
    load_hierarchy,
    load_pde,
    read_artifact,
    save_hierarchy,
    save_pde,
    shard_artifact_path,
    verify_artifact,
    write_artifact,
    write_artifact_v2,
    write_shard_artifacts,
)
from .cache import LFUCache, LRUCache, ServingStats
from .config import BuildConfig, CacheConfig, ServingConfig, WorkloadConfig
from .registry import (
    CACHE_POLICIES,
    GRAPH_FAMILIES,
    HOT_SET_POLICIES,
    PARTITIONERS,
    QUERY_KERNELS,
    WORKLOADS,
    Registry,
    get_cache_policy,
    get_graph_family,
    get_hot_set_policy,
    get_partitioner,
    get_query_kernel,
    get_workload,
    register_cache_policy,
    register_graph_family,
    register_hot_set_policy,
    register_partitioner,
    register_query_kernel,
    register_workload,
)
from .policies import ExplicitHotSet, HotSetPolicy, OnlineHotSet
from .service import (
    RoutingService,
    answer_batch,
    build_or_load_service,
    execute_query_shard,
    resolve_query_kernel,
)
from .sharded import ShardError, ShardedRoutingService
from .fleet import FleetConfig, FleetError, FleetSupervisor, RoutingEpoch
from .partitioners import (
    AdaptivePartitioner,
    HashPairPartitioner,
    HashSourcePartitioner,
    HitRateWindow,
    Partitioner,
    RoundRobinPartitioner,
    make_partitioner,
)
from .backend import QueryBackend, open_service
from .wire import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    BackpressureError,
    FrameError,
    ProtocolVersionError,
    RemoteError,
    SessionClosedError,
    WireError,
    parse_endpoint,
    read_frame,
    write_frame,
)
from .session import ClientSession, ServerSession
from .server import RoutingServer
from .specs import parse_graph_spec
from .workloads import (
    PARTITION_STRATEGIES,
    QueryWorkload,
    WORKLOAD_NAMES,
    bursty_workload,
    locality_workload,
    make_workload,
    partition_pairs,
    stable_node_hash,
    uniform_workload,
    workload_names,
    zipf_workload,
)

__all__ = [
    # artifacts
    "ArtifactError",
    "ArtifactInfo",
    "ArtifactV2Reader",
    "artifact_info",
    "read_artifact",
    "write_artifact",
    "write_artifact_v2",
    "verify_artifact",
    "save_hierarchy",
    "load_hierarchy",
    "save_pde",
    "load_pde",
    "write_shard_artifacts",
    "shard_artifact_path",
    # API v2: protocol, factory, configs
    "QueryBackend",
    "open_service",
    "BuildConfig",
    "CacheConfig",
    "WorkloadConfig",
    "ServingConfig",
    "parse_graph_spec",
    # registries
    "Registry",
    "PARTITIONERS",
    "CACHE_POLICIES",
    "HOT_SET_POLICIES",
    "WORKLOADS",
    "QUERY_KERNELS",
    "GRAPH_FAMILIES",
    "register_partitioner",
    "register_cache_policy",
    "register_hot_set_policy",
    "register_workload",
    "register_query_kernel",
    "register_graph_family",
    "get_partitioner",
    "get_cache_policy",
    "get_hot_set_policy",
    "get_workload",
    "get_query_kernel",
    "get_graph_family",
    "resolve_query_kernel",
    # policies and partitioners
    "HotSetPolicy",
    "ExplicitHotSet",
    "OnlineHotSet",
    "Partitioner",
    "RoundRobinPartitioner",
    "HashPairPartitioner",
    "HashSourcePartitioner",
    "AdaptivePartitioner",
    "HitRateWindow",
    "make_partitioner",
    # backends
    "LRUCache",
    "LFUCache",
    "ServingStats",
    "RoutingService",
    "build_or_load_service",
    "answer_batch",
    "execute_query_shard",
    "ShardedRoutingService",
    "ShardError",
    "FleetConfig",
    "FleetError",
    "FleetSupervisor",
    "RoutingEpoch",
    # transport: wire protocol, sessions, server
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "MAX_FRAME_BYTES",
    "WireError",
    "FrameError",
    "ProtocolVersionError",
    "SessionClosedError",
    "BackpressureError",
    "RemoteError",
    "read_frame",
    "write_frame",
    "parse_endpoint",
    "ServerSession",
    "ClientSession",
    "RoutingServer",
    # workloads
    "QueryWorkload",
    "WORKLOAD_NAMES",
    "workload_names",
    "uniform_workload",
    "zipf_workload",
    "locality_workload",
    "bursty_workload",
    "make_workload",
    "PARTITION_STRATEGIES",
    "partition_pairs",
    "stable_node_hash",
]
