"""Elastic shard fleet: supervise, respawn, rebalance and scale workers.

:class:`~repro.serving.sharded.ShardedRoutingService` on its own is
fail-stop: one worker death latches a :class:`ShardError` and the whole
front-end goes down.  That is the right contract for a batch benchmark, but
a long-lived serving session wants the opposite — worker processes *will*
die (OOM kills, node maintenance, plain bugs) and the session should keep
answering, identically, while the fleet heals.

:class:`FleetSupervisor` owns the worker set of a sharded front-end and
adds three behaviours, all without ever changing an answer:

* **failure recovery** — liveness is watched two ways (``Process.is_alive``
  polling plus a heartbeat ``ping``/``pong`` over the existing task/result
  queues, catching hung-but-alive workers).  On a death the supervisor
  immediately re-scatters the dead slot's unanswered shards to sibling
  workers — every worker can answer any query, from its own slice or from
  the lazily-loaded full-artifact *cover* — and respawns the worker in the
  background, regenerating its sub-artifact slice from the parent artifact
  if the file vanished.  In-flight and subsequent batches stay
  list-for-list identical to single-process serving; only latency spikes.
* **load rebalancing** — the source-hash partition map is adjusted against
  observed per-shard load using the same windowed hit-rate feedback as
  :class:`~repro.serving.partitioners.AdaptivePartitioner`
  (:class:`~repro.serving.partitioners.HitRateWindow`): cold sources are
  migrated first, so warm cache entries stay where they are.
* **elastic scaling** — sustained front-end queue depth (the
  ``pipeline_depth`` admission signal) scales the worker count up or down
  between configured bounds; scaled-down workers drain and park, scale-ups
  prefer unparking before spawning fresh dynamic slots.

Routing goes through an **epoch-versioned table** (:class:`RoutingEpoch`):
every source's base slot is ``stable_node_hash(source) % base_slots`` —
the same assignment as the ``hash_source`` partitioner and the
sub-artifact slicer — with an ``overrides`` map for migrations and a
deterministic fallback over the currently routable slots for dead ones.
Tables are immutable and published under the service lock; the scatter
path re-partitions whenever the epoch moved while it waited, so a scatter
can never race a migration.

When the respawn budget (``respawn_limit``) is exhausted, the next death
latches a typed :class:`FleetError` carrying the in-flight request ids —
the session degrades loudly instead of hanging.

Telemetry (when the service's registry is enabled): supervisor spans
``respawn``/``rebalance``/``scale``, counters ``fleet_worker_deaths`` /
``fleet_respawns`` / ``fleet_migrated_pairs``, and the
``fleet_queue_depth`` gauge.  The same counters are always available —
telemetry on or off — through :meth:`FleetSupervisor.status`, which
:meth:`~repro.serving.sharded.ShardedRoutingService.merged_stats` folds
into ``extra["fleet"]``.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
import weakref
from typing import Dict, List, Optional, Tuple

from .cache import ServingStats
from .partitioners import HitRateWindow
from .sharded import ShardError, _DEFERRED_SLOT
from .workloads import stable_node_hash

__all__ = ["FleetConfig", "FleetError", "FleetSupervisor", "RoutingEpoch"]


class FleetError(ShardError):
    """The fleet could not keep the session alive (budget exhausted).

    Raised through the front-end's failure latch, so every in-flight and
    future caller sees it; ``pending_request_ids`` names the batches that
    were lost, exactly as on the base :class:`ShardError`.
    """


@dataclasses.dataclass(frozen=True)
class FleetConfig:
    """Supervisor knobs; validation happens on construction.

    ``max_workers=None`` means "the initial worker count" (no growth);
    ``scale_up_depth``/``scale_down_depth`` are fractions of
    ``pipeline_depth`` that must be sustained for ``sustain_beats``
    consecutive heartbeats before the fleet scales.
    """

    min_workers: int = 1
    max_workers: Optional[int] = None
    heartbeat_interval: float = 0.5
    respawn_limit: int = 3
    hang_timeout: float = 30.0
    scale_up_depth: float = 0.75
    scale_down_depth: float = 0.25
    sustain_beats: int = 4
    feedback_every: int = 4
    migrate_fraction: float = 0.25
    min_window: int = 64

    def __post_init__(self) -> None:
        if self.min_workers < 1:
            raise ValueError(f"min_workers must be >= 1, "
                             f"got {self.min_workers}")
        if self.max_workers is not None \
                and self.max_workers < self.min_workers:
            raise ValueError(
                f"max_workers ({self.max_workers}) must be >= min_workers "
                f"({self.min_workers})")
        if self.heartbeat_interval <= 0:
            raise ValueError(f"heartbeat_interval must be > 0, "
                             f"got {self.heartbeat_interval}")
        if self.respawn_limit < 0:
            raise ValueError(f"respawn_limit must be >= 0, "
                             f"got {self.respawn_limit}")
        if self.hang_timeout <= 0:
            raise ValueError(f"hang_timeout must be > 0, "
                             f"got {self.hang_timeout}")
        if not 0 < self.scale_down_depth < self.scale_up_depth:
            raise ValueError(
                f"need 0 < scale_down_depth < scale_up_depth, got "
                f"{self.scale_down_depth} / {self.scale_up_depth}")
        if self.sustain_beats < 1:
            raise ValueError(f"sustain_beats must be >= 1, "
                             f"got {self.sustain_beats}")
        if self.feedback_every < 1:
            raise ValueError(f"feedback_every must be >= 1, "
                             f"got {self.feedback_every}")
        if not 0 < self.migrate_fraction <= 1:
            raise ValueError(f"migrate_fraction must be in (0, 1], "
                             f"got {self.migrate_fraction}")
        if self.min_window < 1:
            raise ValueError(f"min_window must be >= 1, "
                             f"got {self.min_window}")

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


class RoutingEpoch:
    """One immutable published routing table.

    ``slot_of`` is deterministic given the table: the base slot is
    ``stable_node_hash(source) % base_slots`` (``base_slots`` is pinned to
    the *initial* worker count forever, matching the sub-artifact
    slicing), an override redirects a migrated source, and a non-routable
    result falls back to ``routable[hash % len(routable)]`` — stable for
    the table's lifetime, so one batch is never split mid-scatter.
    """

    __slots__ = ("epoch", "base_slots", "overrides", "routable",
                 "_routable_set")

    def __init__(self, epoch: int, base_slots: int,
                 overrides: Dict[object, int],
                 routable: Tuple[int, ...]) -> None:
        self.epoch = epoch
        self.base_slots = base_slots
        self.overrides = overrides
        self.routable = tuple(sorted(routable))
        self._routable_set = frozenset(self.routable)

    def slot_of(self, source) -> int:
        slot = self.overrides.get(source)
        if slot is None:
            slot = stable_node_hash(source) % self.base_slots
        if slot in self._routable_set:
            return slot
        if not self.routable:
            raise FleetError("no routable workers (all slots dead or "
                             "parked)")
        return self.routable[stable_node_hash(source) % len(self.routable)]

    def __repr__(self) -> str:
        return (f"RoutingEpoch(epoch={self.epoch}, "
                f"base_slots={self.base_slots}, "
                f"overrides={len(self.overrides)}, "
                f"routable={list(self.routable)})")


def _supervisor_main(supervisor: "FleetSupervisor",
                     stop: threading.Event) -> None:
    """Beat thread body: one :meth:`FleetSupervisor.beat` per interval.

    Module-level so the thread pins only the supervisor, which holds the
    service weakly — a garbage-collected front-end still gets its
    unclosed-service warning, exactly like the collector thread.
    """
    interval = supervisor.config.heartbeat_interval
    while not stop.wait(interval):
        try:
            if not supervisor.beat():
                return
        except Exception:
            # A supervisor bug must not kill the heartbeat: liveness
            # detection is the one thing that has to outlive everything.
            continue


class FleetSupervisor:
    """Owns the worker set of one sharded front-end (see module docstring).

    All mutable routing state — the published table, per-source counts,
    the respawn queue, worker slot states — is guarded by the *service's*
    lock: the scatter path, the collector and the beat thread already
    synchronise on it, so the supervisor adds no second lock order.
    """

    def __init__(self, service, config: FleetConfig) -> None:
        self.config = config
        self._service_ref = weakref.ref(service)
        self.base_slots = service.num_workers
        self.min_workers = config.min_workers
        self.max_workers = (config.max_workers
                            if config.max_workers is not None
                            else max(service.num_workers,
                                     config.min_workers))
        if self.min_workers > service.num_workers:
            raise ValueError(
                f"min_workers ({self.min_workers}) must be <= the initial "
                f"worker count ({service.num_workers})")
        self._table = RoutingEpoch(0, self.base_slots, {}, ())
        self._window = HitRateWindow(service.num_workers,
                                     min_window=config.min_window)
        # Monotonic counters, exposed via status() whether or not the
        # metrics registry is enabled.
        self.worker_deaths = 0
        self.respawns = 0
        self.migrated_pairs = 0
        self.scale_ups = 0
        self.scale_downs = 0
        self._respawns_started = 0
        self._source_counts: Dict[object, int] = {}
        self._respawn_queue: List[Tuple[int, str]] = []
        self._spawn_reason: Dict[int, str] = {}
        self._death_time: Dict[int, float] = {}
        self._spawn_time: Dict[int, float] = {}
        self._last_pong: Dict[int, float] = {}
        self._ping_seq = 0
        self._beats = 0
        self._high_beats = 0
        self._low_beats = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- service access -------------------------------------------------
    def _service(self):
        return self._service_ref()

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        """Publish the initial table and start the heartbeat thread."""
        service = self._service()
        now = time.monotonic()
        with service._can_submit:
            for handle in service._workers:
                self._last_pong[handle.worker_id] = now
            self._publish(service)
        self._stop.clear()
        self._thread = threading.Thread(
            target=_supervisor_main, args=(self, self._stop),
            name="repro-fleet-supervisor", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if (self._thread is not None
                and self._thread is not threading.current_thread()):
            self._thread.join(timeout=5.0)
        self._thread = None

    # -- routing --------------------------------------------------------
    @property
    def epoch(self) -> int:
        return self._table.epoch

    @property
    def has_routable(self) -> bool:
        return bool(self._table.routable)

    def partition(self, pairs) -> Tuple[int, List[Tuple[int, List]]]:
        """Scatter assignment under the current table (service lock held).

        Returns ``(epoch, [(worker_id, [(index, pair), ...]), ...])``; the
        caller re-partitions if the epoch moved while it waited for
        admission.  Observed source frequencies feed the rebalancer's
        cold-first migration order.
        """
        table = self._table
        shards: Dict[int, List] = {}
        counts = self._source_counts
        for index, pair in enumerate(pairs):
            source = pair[0]
            shards.setdefault(table.slot_of(source), []).append(
                (index, pair))
            counts[source] = counts.get(source, 0) + 1
        if len(counts) > 131072:
            # Bound the frequency map on huge keyspaces: drop the cold
            # half (they were the migration candidates anyway; losing
            # their counts only delays, never corrupts, a migration).
            keep = sorted(counts.items(), key=lambda kv: kv[1],
                          reverse=True)[:65536]
            self._source_counts = dict(keep)
        return table.epoch, sorted(shards.items())

    def _publish(self, service,
                 overrides: Optional[Dict[object, int]] = None) -> None:
        """Publish a new epoch (service lock held by the caller)."""
        routable = tuple(h.worker_id for h in service._workers
                         if h.state == "alive")
        if overrides is None:
            overrides = self._table.overrides
        self._table = RoutingEpoch(self._table.epoch + 1, self.base_slots,
                                   dict(overrides), routable)

    # -- collector-routed worker messages -------------------------------
    def on_message(self, message) -> None:
        tag = message[0]
        if tag == "pong":
            self._last_pong[message[1]] = time.monotonic()
        elif tag == "ready":
            self.on_worker_ready(message[1])
        elif tag == "failed":
            self.on_worker_failed(message[1], message[2])
        elif tag == "bye":
            self.on_worker_bye(message[1], message[2])

    def on_worker_ready(self, worker_id: int) -> None:
        """A respawned or scaled-up worker finished warming: route to it."""
        service = self._service()
        if service is None:
            return
        with service._can_submit:
            if service._closed:
                return
            handle = service._workers[worker_id]
            if handle.state != "warming":
                return
            handle.state = "alive"
            handle.final_stats = None
            self._last_pong[worker_id] = time.monotonic()
            self._window.resize(len(service._workers))
            self._window.reset_shard(worker_id)
            reason = self._spawn_reason.pop(worker_id, "respawn")
            overrides = None
            if reason == "respawn":
                self.respawns += 1
                died_at = self._death_time.pop(worker_id, None)
                if service.metrics.enabled:
                    service.metrics.counter("fleet_respawns").inc()
                    if died_at is not None:
                        service.metrics.histogram("respawn").observe(
                            time.monotonic() - died_at)
            else:
                self.scale_ups += 1
                spawned_at = self._spawn_time.pop(worker_id, None)
                if service.metrics.enabled and spawned_at is not None:
                    service.metrics.histogram("scale").observe(
                        time.monotonic() - spawned_at)
                if worker_id >= self.base_slots:
                    # Fresh dynamic slot: nothing hashes to it, so seed it
                    # with the coldest observed sources (hot sources keep
                    # their warm caches where they are).
                    overrides = self._seed_dynamic_slot(worker_id)
            self._publish(service, overrides)
            self._drain_deferred(service)
            service._can_submit.notify_all()

    def on_worker_failed(self, worker_id: int, summary: str) -> None:
        """A respawned worker could not load its artifact."""
        service = self._service()
        if service is None:
            return
        with service._can_submit:
            if service._closed or service._failure is not None:
                return
            handle = service._workers[worker_id]
            if handle.state != "warming":
                return
            handle.state = "dead"
            reason = self._spawn_reason.pop(worker_id, "respawn")
            if reason != "respawn":
                return  # a failed scale-up is dropped, not retried
            if self._respawns_started >= self.config.respawn_limit:
                service._latch_failure(FleetError(
                    f"worker {worker_id} failed to warm up after respawn "
                    f"({summary}) and the respawn budget "
                    f"({self.config.respawn_limit}) is exhausted"))
                return
            self._respawns_started += 1
            self._respawn_queue.append((worker_id, "respawn"))

    def on_worker_bye(self, worker_id: int, stats: ServingStats) -> None:
        """Final snapshot from a worker parked by scale-down."""
        service = self._service()
        if service is None:
            return
        with service._can_submit:
            handle = service._workers[worker_id]
            if handle.state == "parked":
                handle.final_stats = stats

    # -- liveness and recovery ------------------------------------------
    def poll_liveness(self) -> None:
        """Notice exited workers (called by the collector and each beat)."""
        service = self._service()
        if service is None or self._stop.is_set():
            return
        with service._can_submit:
            dead = [h.worker_id for h in service._workers
                    if h.state == "alive" and not h.process.is_alive()]
        for worker_id in dead:
            self.on_worker_death(worker_id, "process exited")

    def on_worker_death(self, worker_id: int, why: str) -> None:
        """Recover from one worker's death, or latch when out of budget.

        Under the service lock: mark the slot dead, publish a table
        without it, re-scatter its unanswered shards to siblings (FIFO
        bookkeeping on the tickets says exactly which those are), scrub
        pending stats requests, and queue the background respawn.
        """
        service = self._service()
        if service is None:
            return
        with service._can_submit:
            if service._closed or service._failure is not None:
                return
            handle = service._workers[worker_id]
            if handle.state != "alive":
                return
            handle.state = "dead"
            self.worker_deaths += 1
            self._death_time[worker_id] = time.monotonic()
            service._inflight[worker_id] = 0
            self._window.reset_shard(worker_id)
            if service.metrics.enabled:
                service.metrics.counter("fleet_worker_deaths").inc()
            self._publish(service)
            if self._respawns_started >= self.config.respawn_limit:
                service._latch_failure(FleetError(
                    f"worker {worker_id} died ({why}) and the respawn "
                    f"budget ({self.config.respawn_limit}) is exhausted; "
                    f"raise respawn_limit or investigate the crashes"))
                return
            self._respawns_started += 1
            self._retry_outstanding(service, worker_id)
            self._scrub_stats_waiters(service, worker_id)
            self._respawn_queue.append((worker_id, "respawn"))
            service._can_submit.notify_all()

    def _retry_outstanding(self, service, worker_id: int) -> None:
        """Re-scatter every unanswered shard of ``worker_id`` (lock held)."""
        for ticket in list(service._tickets.values()):
            shards = ticket.outstanding.pop(worker_id, None)
            if not shards:
                continue
            items = [item for shard in shards for item in shard]
            self._scatter_items(service, ticket, items)

    def _scatter_items(self, service, ticket, items) -> None:
        """Route orphaned ``(index, pair)`` items by the current table.

        With no routable worker the items are stashed under the deferred
        pseudo-slot — the ticket stays incomplete (so nobody reads a
        half-filled result list) and the next ``on_worker_ready`` drains
        the stash.
        """
        table = self._table
        if not table.routable:
            ticket.outstanding.setdefault(_DEFERRED_SLOT, []).append(
                list(items))
            return
        regrouped: Dict[int, List] = {}
        for index, pair in items:
            regrouped.setdefault(table.slot_of(pair[0]), []).append(
                (index, pair))
        for slot, shard in sorted(regrouped.items()):
            ticket.outstanding.setdefault(slot, []).append(shard)
            service._inflight[slot] = service._inflight.get(slot, 0) + 1
            service._workers[slot].task_queue.put(
                ("query", ticket.request_id, ticket.kind, shard))

    def _drain_deferred(self, service) -> None:
        """Flush deferred shards now that a worker is routable again."""
        for ticket in list(service._tickets.values()):
            shards = ticket.outstanding.pop(_DEFERRED_SLOT, None)
            if not shards:
                continue
            items = [item for shard in shards for item in shard]
            self._scatter_items(service, ticket, items)

    @staticmethod
    def _scrub_stats_waiters(service, worker_id: int) -> None:
        """A dead worker will never answer ``("stats",)``: fill a
        placeholder so :meth:`worker_stats` completes instead of timing
        out (lock held)."""
        for waiter in list(service._stats_waiters):
            if worker_id in waiter["remaining"]:
                waiter["remaining"].discard(worker_id)
                waiter["snapshots"][worker_id] = ServingStats()
                if not waiter["remaining"]:
                    service._stats_waiters.remove(waiter)
                    waiter["done"].set()

    # -- the heartbeat --------------------------------------------------
    def beat(self) -> bool:
        """One supervisor heartbeat; returns False to stop the thread."""
        service = self._service()
        if service is None or self._stop.is_set():
            return False
        if service._closed:
            return False
        if service._failure is not None:
            return True  # latched: keep the thread idling until close()
        self._beats += 1
        self.poll_liveness()
        self._check_hangs(service)
        self._send_pings(service)
        self._run_respawns(service)
        self._observe_depth(service)
        self._maybe_scale(service)
        if self._beats % self.config.feedback_every == 0:
            self._maybe_rebalance(service)
        return True

    def _send_pings(self, service) -> None:
        with service._can_submit:
            alive = [h for h in service._workers if h.state == "alive"]
            self._ping_seq += 1
            seq = self._ping_seq
        for handle in alive:
            try:
                handle.task_queue.put(("ping", seq))
            except (OSError, ValueError):
                pass

    def _check_hangs(self, service) -> None:
        """Terminate hung-but-alive workers so death handling kicks in.

        A worker grinding through a long batch answers pings late (the
        task queue is FIFO), so ``hang_timeout`` must dominate the worst
        expected batch; the default (30s) is far above any benchmarked
        batch here.
        """
        now = time.monotonic()
        with service._can_submit:
            hung = [h for h in service._workers
                    if h.state == "alive"
                    and now - self._last_pong.get(h.worker_id, now)
                    > self.config.hang_timeout]
        for handle in hung:
            handle.process.terminate()
            handle.process.join(timeout=5.0)
            self.on_worker_death(handle.worker_id, "hung (no pong within "
                                 f"{self.config.hang_timeout}s)")

    def _run_respawns(self, service) -> None:
        """Execute queued respawns/unparks (beat thread, slow path).

        The slice regeneration and the process spawn run outside the
        lock; only the handle swap is locked.  The new worker's
        ``("ready", ...)`` flows through the collector into
        :meth:`on_worker_ready`, which makes the slot routable again.
        """
        while True:
            with service._can_submit:
                if not self._respawn_queue:
                    return
                worker_id, reason = self._respawn_queue.pop(0)
            if (service.sub_artifact_paths is not None
                    and worker_id < len(service.sub_artifact_paths)
                    and not os.path.exists(
                        service.sub_artifact_paths[worker_id])):
                # The slice file vanished (scratch disk, operator error):
                # regenerate the whole slice set from the parent artifact.
                from .artifacts import write_shard_artifacts
                try:
                    write_shard_artifacts(
                        service.artifact_path,
                        len(service.sub_artifact_paths),
                        build_workers=getattr(service, "build_workers", 1))
                except Exception as exc:
                    service._latch_failure(FleetError(
                        f"could not regenerate the sub-artifact slice for "
                        f"worker {worker_id}: {type(exc).__name__}: {exc}"))
                    return
            handle = service._spawn_worker(worker_id)
            handle.state = "warming"
            with service._can_submit:
                if service._closed:
                    handle.process.terminate()
                    return
                old = service._workers[worker_id]
                try:
                    old.task_queue.close()
                except (OSError, ValueError):
                    pass
                if old.channel is not None:
                    # Retire, don't close: the collector may be mid-select
                    # on this fd, and closing it now could hand the fd
                    # number to the replacement's pipe.  ``exhausted``
                    # removes it from the select set; the service closes
                    # retired channels for real at teardown.  Late replies
                    # are droppable (the dead slot's shards were already
                    # re-scattered); a half-written frame dies with the
                    # channel.
                    old.channel.exhausted = True
                    service._retired_channels.append(old.channel)
                service._workers[worker_id] = handle
                service._inflight[worker_id] = 0
                self._spawn_reason[worker_id] = reason
                self._last_pong[worker_id] = time.monotonic()

    def _observe_depth(self, service) -> None:
        with service._can_submit:
            depth = len(service._tickets)
        if service.metrics.enabled:
            with service._lock:
                service.metrics.gauge("fleet_queue_depth").set(depth)
        ratio = depth / service.pipeline_depth
        self._high_beats = (self._high_beats + 1
                            if ratio >= self.config.scale_up_depth else 0)
        self._low_beats = (self._low_beats + 1
                           if ratio <= self.config.scale_down_depth else 0)

    # -- elastic scaling ------------------------------------------------
    def _maybe_scale(self, service) -> None:
        with service._can_submit:
            if self._respawn_queue or any(h.state == "warming"
                                          for h in service._workers):
                return  # one lifecycle operation at a time
            active = sum(1 for h in service._workers
                         if h.state == "alive")
        if (self._high_beats >= self.config.sustain_beats
                and active < self.max_workers):
            self._high_beats = 0
            self._scale_up(service)
        elif (self._low_beats >= self.config.sustain_beats
                and active > self.min_workers):
            self._low_beats = 0
            self._scale_down(service)

    def _scale_up(self, service) -> None:
        with service._can_submit:
            if service._closed or service._failure is not None:
                return
            parked = [h.worker_id for h in service._workers
                      if h.state == "parked"]
            if parked:
                slot = parked[-1]
            else:
                slot = len(service._workers)
                # Reserve the dynamic slot with a dead placeholder so the
                # worker_id == index invariant holds before the spawn.
                placeholder = _make_placeholder(service, slot)
                placeholder.state = "dead"
                service._workers.append(placeholder)
            self._spawn_time[slot] = time.monotonic()
            self._respawn_queue.append((slot, "scale_up"))

    def _scale_down(self, service) -> None:
        start = time.monotonic()
        with service._can_submit:
            if service._closed or service._failure is not None:
                return
            alive = [h for h in service._workers if h.state == "alive"]
            if len(alive) <= self.min_workers:
                return
            victim = alive[-1]
            victim.state = "parked"
            # Redirect migrated sources off the victim, then publish the
            # exclusion *before* the shutdown message: after this epoch no
            # scatter targets it, and FIFO guarantees it answers
            # everything already queued before saying bye.
            overrides = {source: slot
                         for source, slot in self._table.overrides.items()
                         if slot != victim.worker_id}
            self._publish(service, overrides)
            self.scale_downs += 1
            try:
                victim.task_queue.put(("shutdown",))
            except (OSError, ValueError):
                pass
            if service.metrics.enabled:
                service.metrics.histogram("scale").observe(
                    time.monotonic() - start)

    def _seed_dynamic_slot(self, worker_id: int) -> Dict[object, int]:
        """Overrides moving the coldest sources to a new slot (lock held)."""
        service = self._service()
        routable_after = sum(1 for h in service._workers
                             if h.state == "alive") + 1
        ranked = sorted(self._source_counts.items(),
                        key=lambda kv: (kv[1], str(kv[0])))
        quota = len(ranked) // max(1, routable_after)
        overrides = dict(self._table.overrides)
        for source, _ in ranked[:quota]:
            overrides[source] = worker_id
        self.migrated_pairs += quota
        if quota and service.metrics.enabled:
            service.metrics.counter("fleet_migrated_pairs").inc(quota)
        return overrides

    # -- load rebalancing ------------------------------------------------
    def _maybe_rebalance(self, service) -> None:
        """Migrate cold sources off the worst-performing shard.

        Reuses the adaptive partitioner's windowed hit-rate feedback: the
        shard with the lowest windowed hit rate is thrashing its cache
        (too many distinct sources), so its *coldest* observed sources
        move to the best shard — the hot ones keep their warm entries.
        """
        with service._can_submit:
            routable = [h.worker_id for h in service._workers
                        if h.state == "alive"]
        if len(routable) < 2:
            return
        try:
            worker_stats = service.worker_stats()
        except ShardError:
            return
        start = time.monotonic()
        with service._can_submit:
            if service._closed or service._failure is not None:
                return
            self._window.resize(len(service._workers))
            rates = self._window.rates(worker_stats)
            if rates is None:
                return
            candidates = [(rates[w], w) for w in routable
                          if w < len(rates)]
            if len(candidates) < 2:
                return
            worst_rate, worst = min(candidates)
            best_rate, best = max(candidates)
            if worst == best or best_rate - worst_rate < 0.05:
                return
            table = self._table
            ranked = sorted(
                ((count, source)
                 for source, count in self._source_counts.items()
                 if table.slot_of(source) == worst),
                key=lambda item: (item[0], str(item[1])))
            quota = max(1, int(len(ranked) * self.config.migrate_fraction))
            moved = [source for _, source in ranked[:quota]]
            if not moved:
                return
            overrides = dict(table.overrides)
            for source in moved:
                overrides[source] = best
            self._publish(service, overrides)
            self.migrated_pairs += len(moved)
            if service.metrics.enabled:
                service.metrics.counter("fleet_migrated_pairs").inc(
                    len(moved))
                service.metrics.histogram("rebalance").observe(
                    time.monotonic() - start)

    # -- introspection --------------------------------------------------
    def status(self) -> Dict[str, object]:
        """JSON-able snapshot for ``merged_stats().extra["fleet"]``."""
        service = self._service()
        table = self._table
        out: Dict[str, object] = {
            "epoch": table.epoch,
            "base_slots": table.base_slots,
            "routable": list(table.routable),
            "overrides": len(table.overrides),
            "worker_deaths": self.worker_deaths,
            "respawns": self.respawns,
            "migrated_pairs": self.migrated_pairs,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "respawn_limit": self.config.respawn_limit,
            "min_workers": self.min_workers,
            "max_workers": self.max_workers,
            "heartbeat_interval": self.config.heartbeat_interval,
        }
        if service is not None:
            out["workers"] = {str(h.worker_id): h.state
                              for h in service._workers}
        return out

    def __repr__(self) -> str:
        return (f"FleetSupervisor(epoch={self._table.epoch}, "
                f"routable={list(self._table.routable)}, "
                f"deaths={self.worker_deaths}, respawns={self.respawns})")


def _make_placeholder(service, worker_id: int):
    """A dead stand-in handle reserving a dynamic slot index."""
    from .sharded import _WorkerHandle

    class _NeverAlive:
        pid = None

        @staticmethod
        def is_alive() -> bool:
            return False

        @staticmethod
        def terminate() -> None:
            pass

        @staticmethod
        def join(timeout=None) -> None:
            pass

    class _NullQueue:
        @staticmethod
        def put(_item) -> None:
            raise OSError("placeholder slot has no worker yet")

        @staticmethod
        def close() -> None:
            pass

    return _WorkerHandle(worker_id, _NeverAlive(), _NullQueue())
