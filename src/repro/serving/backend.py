"""Serving API v2: the :class:`QueryBackend` protocol and ``open_service``.

Pre-redesign, local and sharded serving were two divergent front-ends:
``RoutingService`` and ``ShardedRoutingService`` shared no interface, and
callers picked one explicitly, threading long kwargs chains into each.  The
v2 surface collapses that into one typed contract and one factory:

* :class:`QueryBackend` — the protocol every serving backend satisfies:
  ``route_batch`` / ``distance_batch`` / ``query_stats`` / ``close`` plus
  context management.  Callers written against it work identically over a
  local service, a sharded front-end, or anything downstream registers.
* :func:`open_service` — the single entry point: hand it a
  :class:`~repro.serving.config.ServingConfig` (plus optionally an
  in-memory graph) and get back a ready :class:`QueryBackend`; the config's
  ``workers`` field selects the local or sharded implementation, its
  :class:`~repro.serving.config.CacheConfig` installs the cache and
  hot-set policies, and its artifact path drives the build-or-load flow
  (with the full config recorded in the artifact header as provenance).

The answers a backend gives depend only on the built hierarchy — never on
which backend answers or how queries are cached, partitioned or promoted.
The v2 acceptance tests pin this: ``open_service`` backends answer
list-for-list identically to the pre-redesign paths on every workload
shape.
"""

from __future__ import annotations

import os
from typing import (
    Hashable,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from ..graphs.weighted_graph import WeightedGraph
from .artifacts import write_shard_artifacts
from .cache import ServingStats
from .config import CacheConfig, ServingConfig
from .service import RoutingService, build_or_load_service
from .sharded import ShardedRoutingService
from .specs import parse_graph_spec

__all__ = ["QueryBackend", "open_service"]

_Pair = Tuple[Hashable, Hashable]


@runtime_checkable
class QueryBackend(Protocol):
    """What every serving backend can do, regardless of deployment shape.

    The batched calls are the primary query surface; ``query_stats``
    returns the backend-wide aggregate counters (merged across workers for
    sharded backends); ``graph`` exposes the served graph so callers can
    generate workloads against any backend; and ``close`` releases
    whatever the backend holds — always safe to call, idempotent, and
    implied by leaving the backend's ``with`` block.

    Concrete backends carry extras beyond the protocol (single-query
    helpers, ``install_hot_set`` and artifact persistence on the local
    service, worker introspection on the sharded front-end); code meant to
    work over *any* backend must stick to the protocol members.
    """

    @property
    def graph(self) -> Optional[WeightedGraph]:
        """The graph this backend serves (``None`` when not known, e.g. a
        hand-constructed sharded front-end given only an artifact path)."""
        ...

    def route_batch(self, pairs: Sequence[_Pair]) -> List:
        """Route a batch of pairs; results in input order."""
        ...

    def distance_batch(self, pairs: Sequence[_Pair]) -> List[float]:
        """Distance estimates for a batch of pairs; results in input order."""
        ...

    def query_stats(self) -> ServingStats:
        """Aggregate operational counters for this backend."""
        ...

    def close(self) -> None:
        """Release the backend's resources (idempotent)."""
        ...

    def __enter__(self) -> "QueryBackend":
        ...

    def __exit__(self, exc_type, exc, tb) -> None:
        ...


def open_service(config: ServingConfig,
                 graph: Optional[WeightedGraph] = None) -> QueryBackend:
    """Open the serving backend a :class:`ServingConfig` describes.

    The one factory behind every serving entry point (CLI, experiment
    runners, benchmarks):

    * ``workers == 1`` returns a local :class:`RoutingService` —
      built in memory (no artifact path), or built-or-loaded from
      ``config.artifact_path`` with the freshness contract of
      :func:`~repro.serving.service.build_or_load_service`;
    * ``config.connect`` set returns a
      :class:`~repro.serving.session.ClientSession` speaking the wire
      protocol to a running ``repro-serve --serve`` server — remote, but
      indistinguishable from a local backend at this interface (answers
      are list-for-list identical);
    * ``workers > 1`` returns a :class:`ShardedRoutingService` over the
      artifact (required: workers load the hierarchy by path), building it
      first in the parent when missing.  The front-end is *not* started —
      enter its context (or call ``start()``) to spawn and warm the
      workers; the first query batch also starts it lazily.  With
      ``config.sub_artifacts`` the parent additionally materialises (or
      refreshes) per-shard sub-artifact slices and each worker loads only
      its own — requires a format-2 artifact and a source-partitioning
      strategy (``partitioner="hash_source"``).

    ``graph`` supplies the build-path graph (and the freshness check's
    expected size); when omitted, ``config.graph_spec`` is parsed instead.
    With neither, an existing artifact is served as-is.  On the build path
    the artifact header records ``config.to_dict()`` under the
    ``serving_config`` metadata key, so the artifact carries the provenance
    of the session that created it.
    """
    if config.connect is not None:
        # Remote backend: the server owns the graph, artifact and cache;
        # this session only needs the wire knobs.  Imported lazily so the
        # common local path never touches the socket machinery.
        from .session import ClientSession

        return ClientSession.connect(
            config.connect, reply_timeout=config.reply_timeout,
            window=config.pipeline_depth, telemetry=config.telemetry)

    if graph is None and config.graph_spec is not None:
        graph = parse_graph_spec(config.graph_spec)
    provenance = {"serving_config": config.to_dict()}

    if config.workers == 1:
        if config.artifact_path is not None:
            return build_or_load_service(
                config.artifact_path, graph=graph, build=config.build,
                cache=config.cache, save=config.save_artifact,
                metadata=provenance, kernel=config.kernel,
                telemetry=config.telemetry)
        if graph is None:
            raise ValueError(
                "open_service needs a graph to build from: pass one, set "
                "config.graph_spec, or point config.artifact_path at a "
                "built artifact")
        build = config.build
        return RoutingService.build(
            graph, k=build.k, epsilon=build.epsilon, seed=build.seed,
            mode=build.mode, engine=build.engine, cache_config=config.cache,
            kernel=config.kernel, telemetry=config.telemetry,
            build_workers=build.build_workers)

    if config.artifact_path is None:
        raise ValueError("sharded serving (workers > 1) requires "
                         "config.artifact_path — workers load the hierarchy "
                         "by path")
    if not config.save_artifact and not os.path.exists(config.artifact_path):
        # Reject before paying the build: with save_artifact=False nothing
        # would reach disk, and the workers (which only ever load by path)
        # could never find the hierarchy.
        raise ValueError(
            f"sharded serving cannot honour save_artifact=False when the "
            f"artifact {config.artifact_path!r} does not exist yet — "
            f"workers load the hierarchy from disk")
    # Build intent (or a load plus the freshness check) in the parent,
    # exactly as for local serving; the parent's hierarchy is dropped
    # immediately — only the graph handle survives, for workload
    # generation — so resident memory is the workers', not 1 + N copies.
    parent = build_or_load_service(
        config.artifact_path, graph=graph, build=config.build,
        cache=CacheConfig(capacity=0), save=config.save_artifact,
        metadata=provenance)
    graph = parent.hierarchy.graph
    stats = ServingStats(build_seconds=parent.stats.build_seconds,
                         load_seconds=parent.stats.load_seconds,
                         artifact_bytes=parent.stats.artifact_bytes,
                         extra=dict(parent.stats.extra))
    sub_paths = None
    if config.sub_artifacts:
        # Re-slice on every open: slicing is cheap next to the build, and a
        # stale slice of a rebuilt artifact would silently serve old tables.
        sub_paths = write_shard_artifacts(config.artifact_path,
                                          config.workers,
                                          partitioner=config.partitioner,
                                          build_workers=config.build.build_workers)
    fleet = None
    if config.fleet:
        from .fleet import FleetConfig

        fleet = FleetConfig(
            min_workers=(config.min_workers
                         if config.min_workers is not None else 1),
            max_workers=(config.max_workers
                         if config.max_workers is not None
                         else config.workers),
            heartbeat_interval=config.heartbeat_interval,
            respawn_limit=config.respawn_limit)
    return ShardedRoutingService(
        config.artifact_path, num_workers=config.workers,
        partitioner=config.partitioner,
        partitioner_params=config.partitioner_params,
        cache_config=config.cache,
        pipeline_depth=config.pipeline_depth,
        max_inflight=config.max_inflight,
        admission=config.admission,
        sub_artifact_paths=sub_paths, start_method=config.start_method,
        warm_timeout=config.warm_timeout, reply_timeout=config.reply_timeout,
        graph=graph, stats=stats, kernel=config.kernel,
        telemetry=config.telemetry, fleet=fleet,
        build_workers=config.build.build_workers)
