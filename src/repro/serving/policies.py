"""Hot-set policies: who decides which pairs get pinned outside the LRU.

A :class:`~repro.serving.service.RoutingService` keeps two result stores:
the bounded LRU caches (eviction domain) and the *hot store* — pinned pairs
that are answered first and never evicted.  Pre-redesign the only way into
the hot store was an explicit pair list handed to
``precompute_hot_pairs``.  Hot-set *policies* make that decision pluggable
(registered under names in
:data:`~repro.serving.registry.HOT_SET_POLICIES`):

* ``"none"``     — the no-op policy (nothing is promoted automatically);
* ``"explicit"`` — pin a configured pair list up front, the v1 behaviour
  (:class:`ExplicitHotSet`);
* ``"online"``   — watch the LRU hit counters and promote a pair once its
  hit count reaches a threshold (:class:`OnlineHotSet`) — the ROADMAP's
  "derive the hot set online from the LRU hit statistics".

The service drives a policy through two hooks: :meth:`HotSetPolicy.install`
once at attach time, and :meth:`HotSetPolicy.on_cache_hit` on every LRU
result-cache hit (hot-store hits and misses are not interesting to a
promotion policy: a hot hit is already promoted, and a miss says nothing
about reuse).  The hit hook receives the cached value, so promotion pins it
directly (:meth:`~repro.serving.service.RoutingService.pin_hot_result`) —
no recomputation on what should be the cheapest query path — with the same
bookkeeping as manual pinning: the LRU copy is evicted and the per-kind hot
counts stay accounted.

Custom policies register a factory taking the
:class:`~repro.serving.config.CacheConfig` and returning a policy instance
(or ``None`` for "no policy"), so new policies can carve their parameters
out of the config without changing any call sites.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Hashable, Optional, Sequence, Tuple

from .config import CacheConfig
from .registry import HOT_SET_POLICIES, register_hot_set_policy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .service import RoutingService

__all__ = [
    "HotSetPolicy",
    "ExplicitHotSet",
    "OnlineHotSet",
    "make_hot_set_policy",
]

_Pair = Tuple[Hashable, Hashable]


class HotSetPolicy:
    """Base hot-set policy: all hooks are no-ops."""

    name = "none"

    def install(self, service: "RoutingService") -> None:
        """Called once when the policy is attached to a service."""

    def on_cache_hit(self, service: "RoutingService", key: _Pair,
                     kind: str, value) -> None:
        """Called after every LRU result-cache hit (``kind`` is ``"route"``
        or ``"distance"``; ``value`` is the cached result that answered)."""

    def on_hot_hit(self, service: "RoutingService", key: _Pair,
                   kind: str) -> None:
        """Called after every *hot-store* hit.  Promotion policies ignore
        this (the pair is already promoted); decaying policies use it to
        keep windowed hit counts for pinned pairs, so demotion can tell a
        still-hot pair from one the stream has moved past."""

    def describe(self) -> Dict[str, object]:
        """Provenance extras folded into the service stats."""
        return {"hot_set": self.name}


class ExplicitHotSet(HotSetPolicy):
    """Pin a known pair list at install time (the v1 flow, as a policy)."""

    name = "explicit"

    def __init__(self, pairs: Sequence[_Pair] = (),
                 kind: str = "route") -> None:
        self.pairs = [tuple(pair) for pair in pairs]
        self.kind = kind

    def install(self, service: "RoutingService") -> None:
        if self.pairs:
            service.precompute_hot_pairs(self.pairs, kind=self.kind)

    def describe(self) -> Dict[str, object]:
        return {"hot_set": self.name, "hot_set_pairs": len(self.pairs)}


class OnlineHotSet(HotSetPolicy):
    """Promote pairs whose LRU hit counts cross ``threshold``.

    Every LRU hit increments a per-``(kind, pair)`` counter; at
    ``threshold`` the cached value itself is pinned (it came from the same
    hierarchy, so promotion changes *where* a repeat is answered, never
    *what* the answer is — and costs no recomputation).  ``capacity``
    bounds promotions per query kind, so a drifting workload cannot grow
    the hot store without limit; once full, later candidates stay in the
    LRU domain.

    Counters only exist for pairs that repeat while cached, so the tracking
    dict is bounded by the distinct-pair reuse set, and a promoted pair
    stops counting entirely (its hits move to the hot store, where
    :meth:`on_hot_hit` keeps a *windowed* count when decay is on).

    **Decay / demotion** (``decay_window > 0``): promotion is a bet that a
    pair's burst of repeats will continue; bursty and drifting streams
    break that bet, stranding cold pairs in the pinned set — pinned slots
    that block new promotions once ``capacity`` is reached.  With decay,
    every ``decay_window`` observed hit events (LRU and hot combined) the
    policy sweeps its promoted pairs and *unpins* any whose hot-store hits
    within the window stayed below ``decay_threshold``
    (:meth:`~repro.serving.service.RoutingService.unpin_hot_result`
    returns the value to the LRU domain, so nothing is recomputed if the
    pair warms back up).  Demotion frees promotion capacity, so the pinned
    set tracks the stream instead of fossilising its first bursts.
    """

    name = "online"

    def __init__(self, threshold: int = 8, capacity: int = 256,
                 decay_window: int = 0, decay_threshold: int = 1) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        if decay_window < 0:
            raise ValueError(f"decay_window must be >= 0, got {decay_window}")
        if decay_threshold < 1:
            raise ValueError(f"decay_threshold must be >= 1, "
                             f"got {decay_threshold}")
        self.threshold = threshold
        self.capacity = capacity
        self.decay_window = decay_window
        self.decay_threshold = decay_threshold
        self.demotions = 0
        #: Cumulative promotions (reported); distinct from the *current*
        #: pinned counts below, which demotion decrements to free capacity.
        self.promotions = 0
        self._hit_counts: Dict[Tuple[str, _Pair], int] = {}
        self._pinned_counts: Dict[str, int] = {"route": 0, "distance": 0}
        #: Windowed hot-store hit counts for pairs *this policy* pinned
        #: (manually pinned pairs are not the policy's to demote).
        self._pinned_window: Dict[Tuple[str, _Pair], int] = {}
        self._window_events = 0

    def on_cache_hit(self, service: "RoutingService", key: _Pair,
                     kind: str, value) -> None:
        self._decay_tick(service)
        if self._pinned_counts[kind] >= self.capacity:
            return
        counter_key = (kind, key)
        count = self._hit_counts.get(counter_key, 0) + 1
        if count < self.threshold:
            self._hit_counts[counter_key] = count
            return
        self._hit_counts.pop(counter_key, None)
        service.pin_hot_result(key, kind, value)
        self._pinned_counts[kind] += 1
        self.promotions += 1
        self._pinned_window[counter_key] = 0
        service.stats.extra["hot_promotions"] = self.promotions

    def on_hot_hit(self, service: "RoutingService", key: _Pair,
                   kind: str) -> None:
        counter_key = (kind, key)
        if counter_key in self._pinned_window:
            self._pinned_window[counter_key] += 1
        self._decay_tick(service)

    def _decay_tick(self, service: "RoutingService") -> None:
        if self.decay_window <= 0:
            return
        self._window_events += 1
        if self._window_events < self.decay_window:
            return
        self._window_events = 0
        for counter_key, window_hits in list(self._pinned_window.items()):
            kind, key = counter_key
            if window_hits < self.decay_threshold:
                if service.unpin_hot_result(key, kind):
                    self.demotions += 1
                del self._pinned_window[counter_key]
                self._pinned_counts[kind] -= 1
            else:
                self._pinned_window[counter_key] = 0
        service.stats.extra["hot_demotions"] = self.demotions

    def describe(self) -> Dict[str, object]:
        extras = {"hot_set": self.name,
                  "hot_set_threshold": self.threshold,
                  "hot_set_capacity": self.capacity}
        if self.decay_window > 0:
            extras["hot_set_decay_window"] = self.decay_window
            extras["hot_set_decay_threshold"] = self.decay_threshold
        return extras


# ----------------------------------------------------------------------
# registry entries + config-driven construction
# ----------------------------------------------------------------------
register_hot_set_policy("none", lambda cache_config: None)
register_hot_set_policy(
    "explicit",
    lambda cache_config: ExplicitHotSet(pairs=cache_config.hot_pairs,
                                        kind=cache_config.hot_kind))
register_hot_set_policy(
    "online",
    lambda cache_config: OnlineHotSet(
        threshold=cache_config.hot_threshold,
        capacity=cache_config.hot_capacity,
        decay_window=cache_config.hot_decay_window,
        decay_threshold=cache_config.hot_decay_threshold))


def make_hot_set_policy(cache_config: CacheConfig
                        ) -> Optional[HotSetPolicy]:
    """Instantiate the hot-set policy a :class:`CacheConfig` names."""
    return HOT_SET_POLICIES.get(cache_config.hot_set)(cache_config)
