"""Hot-set policies: who decides which pairs get pinned outside the LRU.

A :class:`~repro.serving.service.RoutingService` keeps two result stores:
the bounded LRU caches (eviction domain) and the *hot store* — pinned pairs
that are answered first and never evicted.  Pre-redesign the only way into
the hot store was an explicit pair list handed to
``precompute_hot_pairs``.  Hot-set *policies* make that decision pluggable
(registered under names in
:data:`~repro.serving.registry.HOT_SET_POLICIES`):

* ``"none"``     — the no-op policy (nothing is promoted automatically);
* ``"explicit"`` — pin a configured pair list up front, the v1 behaviour
  (:class:`ExplicitHotSet`);
* ``"online"``   — watch the LRU hit counters and promote a pair once its
  hit count reaches a threshold (:class:`OnlineHotSet`) — the ROADMAP's
  "derive the hot set online from the LRU hit statistics".

The service drives a policy through two hooks: :meth:`HotSetPolicy.install`
once at attach time, and :meth:`HotSetPolicy.on_cache_hit` on every LRU
result-cache hit (hot-store hits and misses are not interesting to a
promotion policy: a hot hit is already promoted, and a miss says nothing
about reuse).  The hit hook receives the cached value, so promotion pins it
directly (:meth:`~repro.serving.service.RoutingService.pin_hot_result`) —
no recomputation on what should be the cheapest query path — with the same
bookkeeping as manual pinning: the LRU copy is evicted and the per-kind hot
counts stay accounted.

Custom policies register a factory taking the
:class:`~repro.serving.config.CacheConfig` and returning a policy instance
(or ``None`` for "no policy"), so new policies can carve their parameters
out of the config without changing any call sites.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Hashable, Optional, Sequence, Tuple

from .config import CacheConfig
from .registry import HOT_SET_POLICIES, register_hot_set_policy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .service import RoutingService

__all__ = [
    "HotSetPolicy",
    "ExplicitHotSet",
    "OnlineHotSet",
    "make_hot_set_policy",
]

_Pair = Tuple[Hashable, Hashable]


class HotSetPolicy:
    """Base hot-set policy: both hooks are no-ops."""

    name = "none"

    def install(self, service: "RoutingService") -> None:
        """Called once when the policy is attached to a service."""

    def on_cache_hit(self, service: "RoutingService", key: _Pair,
                     kind: str, value) -> None:
        """Called after every LRU result-cache hit (``kind`` is ``"route"``
        or ``"distance"``; ``value`` is the cached result that answered)."""

    def describe(self) -> Dict[str, object]:
        """Provenance extras folded into the service stats."""
        return {"hot_set": self.name}


class ExplicitHotSet(HotSetPolicy):
    """Pin a known pair list at install time (the v1 flow, as a policy)."""

    name = "explicit"

    def __init__(self, pairs: Sequence[_Pair] = (),
                 kind: str = "route") -> None:
        self.pairs = [tuple(pair) for pair in pairs]
        self.kind = kind

    def install(self, service: "RoutingService") -> None:
        if self.pairs:
            service.precompute_hot_pairs(self.pairs, kind=self.kind)

    def describe(self) -> Dict[str, object]:
        return {"hot_set": self.name, "hot_set_pairs": len(self.pairs)}


class OnlineHotSet(HotSetPolicy):
    """Promote pairs whose LRU hit counts cross ``threshold``.

    Every LRU hit increments a per-``(kind, pair)`` counter; at
    ``threshold`` the cached value itself is pinned (it came from the same
    hierarchy, so promotion changes *where* a repeat is answered, never
    *what* the answer is — and costs no recomputation).  ``capacity``
    bounds promotions per query kind, so a drifting workload cannot grow
    the hot store without limit; once full, later candidates stay in the
    LRU domain.

    Counters only exist for pairs that repeat while cached, so the tracking
    dict is bounded by the distinct-pair reuse set, and a promoted pair
    stops counting entirely (its hits move to the hot store).
    """

    name = "online"

    def __init__(self, threshold: int = 8, capacity: int = 256) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.threshold = threshold
        self.capacity = capacity
        self._hit_counts: Dict[Tuple[str, _Pair], int] = {}
        self._promoted: Dict[str, int] = {"route": 0, "distance": 0}

    @property
    def promotions(self) -> int:
        return sum(self._promoted.values())

    def on_cache_hit(self, service: "RoutingService", key: _Pair,
                     kind: str, value) -> None:
        if self._promoted[kind] >= self.capacity:
            return
        counter_key = (kind, key)
        count = self._hit_counts.get(counter_key, 0) + 1
        if count < self.threshold:
            self._hit_counts[counter_key] = count
            return
        self._hit_counts.pop(counter_key, None)
        service.pin_hot_result(key, kind, value)
        self._promoted[kind] += 1
        service.stats.extra["hot_promotions"] = self.promotions

    def describe(self) -> Dict[str, object]:
        return {"hot_set": self.name,
                "hot_set_threshold": self.threshold,
                "hot_set_capacity": self.capacity}


# ----------------------------------------------------------------------
# registry entries + config-driven construction
# ----------------------------------------------------------------------
register_hot_set_policy("none", lambda cache_config: None)
register_hot_set_policy(
    "explicit",
    lambda cache_config: ExplicitHotSet(pairs=cache_config.hot_pairs,
                                        kind=cache_config.hot_kind))
register_hot_set_policy(
    "online",
    lambda cache_config: OnlineHotSet(threshold=cache_config.hot_threshold,
                                      capacity=cache_config.hot_capacity))


def make_hot_set_policy(cache_config: CacheConfig
                        ) -> Optional[HotSetPolicy]:
    """Instantiate the hot-set policy a :class:`CacheConfig` names."""
    return HOT_SET_POLICIES.get(cache_config.hot_set)(cache_config)
