"""The serving API v2 config family: typed, frozen, round-trippable.

Pre-redesign, build/cache/partition/workload options were threaded through
the serving layer as long positional-kwarg chains.  The v2 surface replaces
those chains with a family of frozen dataclasses that one
:func:`~repro.serving.backend.open_service` call consumes:

* :class:`BuildConfig`    — how the compact-routing hierarchy is built
  (``k``, ``epsilon``, ``seed``, ``mode``, ``engine``);
* :class:`CacheConfig`    — the result-cache policy and the hot-set policy
  layered on top of it;
* :class:`WorkloadConfig` — which query stream to generate against the
  service (used by the CLI and the experiment runners);
* :class:`ServingConfig`  — the full serving session: artifact path, worker
  count, partitioner, batch shape, plus one of each config above.

Every config serialises losslessly: ``from_dict(to_dict(c)) == c`` holds for
any config, ``to_dict`` emits only JSON-safe builtins (tuples become lists
and are restored on the way back in), and ``from_dict`` *rejects unknown
keys* instead of silently dropping a typo.  The artifact layer stores the
originating ``ServingConfig.to_dict()`` in the artifact header (under the
``serving_config`` metadata key) so a persisted hierarchy carries the full
provenance of the session that created it.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Hashable, Optional, Tuple

__all__ = [
    "BuildConfig",
    "CacheConfig",
    "WorkloadConfig",
    "ServingConfig",
]

_Pair = Tuple[Hashable, Hashable]


def _reject_unknown(cls, data: Dict[str, Any]) -> None:
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(
            f"unknown {cls.__name__} key(s) {unknown}; "
            f"known keys: {sorted(known)}")


def _require_mapping(cls, data: Any) -> Dict[str, Any]:
    if not isinstance(data, dict):
        raise ValueError(f"{cls.__name__}.from_dict expects a dict, "
                         f"got {type(data).__name__}")
    return data


@dataclass(frozen=True)
class BuildConfig:
    """How to build (or validate a persisted) compact-routing hierarchy.

    These are exactly the parameters the artifact freshness check compares
    against an existing artifact's header: requesting a build with a config
    that differs from what an artifact was built with raises
    :class:`~repro.serving.artifacts.ArtifactError` instead of silently
    serving stale answers.  ``artifact_format`` selects the on-disk layout
    written on the build path (2 = mmap-able section table, the default;
    1 = legacy monolithic pickle) — it is a storage detail, not a build
    parameter, so it does *not* participate in the freshness check: an
    existing artifact of either format with matching build parameters is
    served as-is.  ``build_workers`` likewise stays out of the freshness
    check: the parallel build is checksum-identical to the sequential one,
    so how many processes built an artifact never makes it stale (the
    worker count is still recorded in the header provenance via the
    serving config).
    """

    k: int = 3
    epsilon: float = 0.25
    seed: int = 0
    mode: str = "auto"
    engine: str = "batched"
    artifact_format: int = 2
    build_workers: int = 1

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {self.epsilon}")
        if self.artifact_format not in (1, 2):
            raise ValueError(f"artifact_format must be 1 or 2, "
                             f"got {self.artifact_format!r}")
        if not isinstance(self.build_workers, int) \
                or isinstance(self.build_workers, bool) \
                or self.build_workers < 1:
            raise ValueError(f"build_workers must be an int >= 1, "
                             f"got {self.build_workers!r}")

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BuildConfig":
        data = _require_mapping(cls, data)
        _reject_unknown(cls, data)
        return cls(**data)


@dataclass(frozen=True)
class CacheConfig:
    """Result caching and hot-set policy for one service (or shard worker).

    ``policy`` names an entry in the cache-policy registry (``"lru"`` is
    built in); ``capacity`` is the per-cache entry budget (``0`` disables
    result caching).  ``hot_set`` names an entry in the hot-set policy
    registry:

    * ``"none"``     — no hot store beyond what is pinned manually;
    * ``"explicit"`` — pin ``hot_pairs`` (kind ``hot_kind``) up front;
    * ``"online"``   — promote a pair into the hot store once its LRU hit
      count reaches ``hot_threshold``, up to ``hot_capacity`` promotions
      per query kind.

    ``hot_decay_window`` enables demotion for the online policy: every
    ``hot_decay_window`` observed hits, promoted pairs whose hit count
    within the window stayed below ``hot_decay_threshold`` are unpinned
    (their result returns to the LRU domain), so bursty or drifting
    streams do not strand cold pairs in the pinned set.  ``0`` (the
    default) disables decay.

    ``pivot_cache_cap`` bounds the hierarchy's pivot-row LRU (resolved
    per-target pivot rows shared by single and batched queries); ``0``
    disables that cache.
    """

    policy: str = "lru"
    capacity: int = 4096
    hot_set: str = "none"
    hot_kind: str = "route"
    hot_pairs: Tuple[_Pair, ...] = ()
    hot_threshold: int = 8
    hot_capacity: int = 256
    hot_decay_window: int = 0
    hot_decay_threshold: int = 1
    pivot_cache_cap: int = 65536

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {self.capacity}")
        if self.pivot_cache_cap < 0:
            raise ValueError(f"pivot_cache_cap must be >= 0, "
                             f"got {self.pivot_cache_cap}")
        if self.hot_kind not in ("route", "distance", "both"):
            raise ValueError(f"hot_kind must be route/distance/both, "
                             f"got {self.hot_kind!r}")
        if self.hot_threshold < 1:
            raise ValueError(f"hot_threshold must be >= 1, "
                             f"got {self.hot_threshold}")
        if self.hot_capacity < 0:
            raise ValueError(f"hot_capacity must be >= 0, "
                             f"got {self.hot_capacity}")
        if self.hot_decay_window < 0:
            raise ValueError(f"hot_decay_window must be >= 0, "
                             f"got {self.hot_decay_window}")
        if self.hot_decay_threshold < 1:
            raise ValueError(f"hot_decay_threshold must be >= 1, "
                             f"got {self.hot_decay_threshold}")
        # Normalise pair containers so config equality (and the from_dict
        # round-trip, which travels through JSON lists) is structural.
        object.__setattr__(self, "hot_pairs",
                           tuple((s, t) for s, t in self.hot_pairs))

    def to_dict(self) -> Dict[str, Any]:
        record = dataclasses.asdict(self)
        record["hot_pairs"] = [list(pair) for pair in self.hot_pairs]
        return record

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CacheConfig":
        data = _require_mapping(cls, data)
        _reject_unknown(cls, data)
        data = dict(data)
        if "hot_pairs" in data:
            data["hot_pairs"] = tuple(tuple(pair)
                                      for pair in data["hot_pairs"])
        return cls(**data)


@dataclass(frozen=True)
class WorkloadConfig:
    """Which query stream to run against the service.

    ``name`` is a workload-registry entry (``uniform`` / ``zipf`` /
    ``locality`` / ``bursty`` built in); ``params`` holds the shape-specific
    keyword arguments (``skew``, ``hop_radius``, ``burst_length``, ...).
    ``seed = None`` means "inherit the build seed" — the CLI and the
    experiment runners keep graph generation and traffic generation on one
    seed unless told otherwise.
    """

    name: str = "zipf"
    num_queries: int = 1000
    seed: Optional[int] = None
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_queries < 0:
            raise ValueError(f"num_queries must be >= 0, "
                             f"got {self.num_queries}")

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "num_queries": self.num_queries,
                "seed": self.seed, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WorkloadConfig":
        data = _require_mapping(cls, data)
        _reject_unknown(cls, data)
        data = dict(data)
        if "params" in data:
            data["params"] = dict(data["params"])
        return cls(**data)


@dataclass(frozen=True)
class ServingConfig:
    """One serving session, end to end.

    ``workers == 1`` serves locally (a :class:`RoutingService`);
    ``workers > 1`` serves through the multi-process sharded front-end and
    requires ``artifact_path`` (workers load the hierarchy by path).
    ``sub_artifacts`` additionally materialises per-shard sub-artifacts
    (format-2 slices holding only each shard's bunch rows and reachable
    trees) so every worker maps only its partition's tables; it requires a
    source-partitioning strategy (``partitioner="hash_source"``), since the
    slices are only complete for queries routed to their source's shard.
    ``graph_spec`` is an optional ``name:key=value,...`` generator spec (see
    :func:`~repro.serving.specs.parse_graph_spec`) used when no in-memory
    graph is passed to :func:`~repro.serving.backend.open_service`.
    ``kernel`` names a query-kernel registry entry (``dict`` / ``columnar``
    / ``auto`` built in) selecting how batch queries probe the routing
    tables; like ``partitioner`` it is validated against the registry when
    the service opens.
    ``telemetry`` enables per-stage span recording (artifact load, cache
    probes, kernel batches, scatter/gather) into a live metrics registry,
    exported through ``query_stats().extra["telemetry"]``; off by default
    so the hot path runs on the no-op registry.
    ``connect`` points the session at a running ``repro-serve --serve``
    server (``HOST:PORT``) instead of opening a backend in-process: the
    build/cache/artifact fields then belong to the server, so they must
    stay at their defaults, and ``workers`` must be 1 (the server owns the
    deployment shape).
    ``pipeline_depth`` / ``max_inflight`` / ``admission`` bound the
    pipelined scatter/gather (and, for ``connect`` sessions, the client's
    in-flight window): at the bound, ``admission="block"`` delays
    submitters and ``admission="reject"`` raises
    :class:`~repro.serving.wire.BackpressureError`.
    ``fleet`` puts the sharded front-end under a
    :class:`~repro.serving.fleet.FleetSupervisor`: dead workers are
    respawned (``respawn_limit`` deaths tolerated, checked every
    ``heartbeat_interval`` seconds) while siblings cover their partition,
    and the worker count scales between ``min_workers`` and
    ``max_workers`` on sustained queue depth.  Fleet mode requires
    ``workers >= 2`` and a source-partitioning strategy
    (``partitioner="hash_source"``).
    """

    artifact_path: Optional[str] = None
    graph_spec: Optional[str] = None
    save_artifact: bool = True
    workers: int = 1
    partitioner: str = "round_robin"
    partitioner_params: Dict[str, Any] = field(default_factory=dict)
    sub_artifacts: bool = False
    batch_size: int = 64
    kind: str = "route"
    kernel: str = "auto"
    telemetry: bool = False
    connect: Optional[str] = None
    pipeline_depth: int = 8
    max_inflight: int = 4
    admission: str = "block"
    start_method: Optional[str] = None
    warm_timeout: float = 120.0
    reply_timeout: float = 300.0
    fleet: bool = False
    min_workers: Optional[int] = None
    max_workers: Optional[int] = None
    heartbeat_interval: float = 0.5
    respawn_limit: int = 3
    build: BuildConfig = field(default_factory=BuildConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.pipeline_depth < 1:
            raise ValueError(f"pipeline_depth must be >= 1, "
                             f"got {self.pipeline_depth}")
        if self.max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, "
                             f"got {self.max_inflight}")
        if self.admission not in ("block", "reject"):
            raise ValueError(f"admission must be 'block' or 'reject', "
                             f"got {self.admission!r}")
        if self.connect is not None:
            if self.workers != 1:
                raise ValueError(
                    "connect sessions must keep workers=1 — the server "
                    "owns the deployment shape (its own workers flag)")
            if self.artifact_path is not None or self.graph_spec is not None:
                raise ValueError(
                    "connect sessions take the graph and artifact from the "
                    "server; drop artifact_path/graph_spec")
        if self.sub_artifacts and self.workers < 2:
            raise ValueError("sub_artifacts=True requires workers > 1 "
                             "(slicing exists to shrink per-worker tables)")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, "
                             f"got {self.batch_size}")
        if self.kind not in ("route", "distance"):
            raise ValueError(f"kind must be route or distance, "
                             f"got {self.kind!r}")
        if self.heartbeat_interval <= 0:
            raise ValueError(f"heartbeat_interval must be > 0, "
                             f"got {self.heartbeat_interval}")
        if self.respawn_limit < 0:
            raise ValueError(f"respawn_limit must be >= 0, "
                             f"got {self.respawn_limit}")
        if self.fleet:
            if self.workers < 2:
                raise ValueError(
                    "fleet=True requires workers >= 2 (siblings cover a "
                    "dead worker's partition)")
            if self.connect is not None:
                raise ValueError("fleet=True is a deployment-side option; "
                                 "connect sessions cannot request it")
            if self.min_workers is not None and self.min_workers < 1:
                raise ValueError(f"min_workers must be >= 1, "
                                 f"got {self.min_workers}")
            if self.min_workers is not None \
                    and self.min_workers > self.workers:
                raise ValueError(
                    f"min_workers ({self.min_workers}) must be <= workers "
                    f"({self.workers})")
            if self.max_workers is not None \
                    and self.max_workers < (self.min_workers or 1):
                raise ValueError(
                    f"max_workers ({self.max_workers}) must be >= "
                    f"min_workers ({self.min_workers or 1})")
        elif self.min_workers is not None or self.max_workers is not None:
            raise ValueError("min_workers/max_workers only apply with "
                             "fleet=True")
        for name, value in (("build", self.build), ("cache", self.cache),
                            ("workload", self.workload)):
            expected = {"build": BuildConfig, "cache": CacheConfig,
                        "workload": WorkloadConfig}[name]
            if not isinstance(value, expected):
                raise ValueError(f"{name} must be a {expected.__name__}, "
                                 f"got {type(value).__name__}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "artifact_path": self.artifact_path,
            "graph_spec": self.graph_spec,
            "save_artifact": self.save_artifact,
            "workers": self.workers,
            "partitioner": self.partitioner,
            "partitioner_params": dict(self.partitioner_params),
            "sub_artifacts": self.sub_artifacts,
            "batch_size": self.batch_size,
            "kind": self.kind,
            "kernel": self.kernel,
            "telemetry": self.telemetry,
            "connect": self.connect,
            "pipeline_depth": self.pipeline_depth,
            "max_inflight": self.max_inflight,
            "admission": self.admission,
            "start_method": self.start_method,
            "warm_timeout": self.warm_timeout,
            "reply_timeout": self.reply_timeout,
            "fleet": self.fleet,
            "min_workers": self.min_workers,
            "max_workers": self.max_workers,
            "heartbeat_interval": self.heartbeat_interval,
            "respawn_limit": self.respawn_limit,
            "build": self.build.to_dict(),
            "cache": self.cache.to_dict(),
            "workload": self.workload.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ServingConfig":
        data = _require_mapping(cls, data)
        _reject_unknown(cls, data)
        data = dict(data)
        if "build" in data:
            data["build"] = BuildConfig.from_dict(data["build"])
        if "cache" in data:
            data["cache"] = CacheConfig.from_dict(data["cache"])
        if "workload" in data:
            data["workload"] = WorkloadConfig.from_dict(data["workload"])
        if "partitioner_params" in data:
            data["partitioner_params"] = dict(data["partitioner_params"])
        return cls(**data)

    def workload_seed(self) -> int:
        """The effective traffic seed (inherits the build seed when unset)."""
        return (self.workload.seed if self.workload.seed is not None
                else self.build.seed)
