"""String-keyed registries: the serving layer's named plug-points.

The serving API v2 is policy-pluggable: partition strategies, result-cache
implementations, hot-set promotion policies and workload generators are all
looked up *by name* through one of the four registries below.  A config file
(or a CLI flag) can therefore select any strategy — including one registered
by downstream code — without the call sites knowing the concrete class:

* :data:`PARTITIONERS`      — ``name -> factory(num_shards, **params)``
  producing a :class:`~repro.serving.partitioners.Partitioner`;
* :data:`CACHE_POLICIES`    — ``name -> factory(capacity)`` producing a
  result cache (the :class:`~repro.serving.cache.LRUCache` contract);
* :data:`HOT_SET_POLICIES`  — ``name -> factory(cache_config)`` producing a
  hot-set policy (or ``None`` for the no-op policy);
* :data:`WORKLOADS`         — ``name -> factory(graph, num_queries, seed,
  **params)`` producing a :class:`~repro.serving.workloads.QueryWorkload`;
* :data:`QUERY_KERNELS`     — ``name -> resolver(hierarchy)`` returning the
  concrete kernel name (``"dict"`` or ``"columnar"``) to use for batch
  queries against that hierarchy;
* :data:`GRAPH_FAMILIES`    — ``name -> builder(want, weights, seed, spec)``
  turning a parsed ``name:key=value,...`` graph spec into a
  :class:`~repro.graphs.weighted_graph.WeightedGraph` (see
  :func:`~repro.serving.specs.parse_graph_spec`, which supplies the
  ``want`` parameter accessor).

Built-in strategies register themselves when their defining module is
imported (importing :mod:`repro.serving` imports them all).  Downstream code
extends a registry with the matching ``register_*`` function, either called
directly or used as a decorator::

    from repro.serving import register_workload

    @register_workload("replay")
    def replay_workload(graph, num_queries, seed=0, *, trace_path):
        ...

Names are case-sensitive; re-registering an existing name raises unless
``replace=True`` is passed (guarding against accidental shadowing of a
built-in).  Lookups of unknown names raise :class:`ValueError` listing what
is available.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional, Tuple

__all__ = [
    "Registry",
    "PARTITIONERS",
    "CACHE_POLICIES",
    "HOT_SET_POLICIES",
    "WORKLOADS",
    "QUERY_KERNELS",
    "GRAPH_FAMILIES",
    "register_partitioner",
    "register_cache_policy",
    "register_hot_set_policy",
    "register_workload",
    "register_query_kernel",
    "register_graph_family",
    "get_partitioner",
    "get_cache_policy",
    "get_hot_set_policy",
    "get_workload",
    "get_query_kernel",
    "get_graph_family",
]


class Registry:
    """A named mapping from strategy names to factories.

    ``kind`` is the human-readable noun used in error messages (e.g.
    ``"partition strategy"``), so a failed lookup reads
    ``unknown partition strategy 'modulo'; available: hash_pair, round_robin``.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict = {}

    def register(self, name: str, factory: Optional[Callable] = None, *,
                 replace: bool = False) -> Callable:
        """Register ``factory`` under ``name``; usable as a decorator.

        Returns the factory, so ``@registry.register("name")`` leaves the
        decorated callable bound to its own name as usual.
        """
        if factory is None:
            return lambda fn: self.register(name, fn, replace=replace)
        if not isinstance(name, str) or not name:
            raise ValueError(f"{self.kind} name must be a non-empty string, "
                             f"got {name!r}")
        if name in self._entries and not replace:
            raise ValueError(
                f"{self.kind} {name!r} is already registered; pass "
                f"replace=True to override it")
        self._entries[name] = factory
        return factory

    def get(self, name: str) -> Callable:
        """Look up a factory; unknown names raise with the available ones."""
        try:
            return self._entries[name]
        except KeyError:
            raise ValueError(
                f"unknown {self.kind} {name!r}; "
                f"available: {', '.join(self.names())}") from None

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._entries))

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, names={list(self.names())})"


PARTITIONERS = Registry("partition strategy")
CACHE_POLICIES = Registry("cache policy")
HOT_SET_POLICIES = Registry("hot-set policy")
WORKLOADS = Registry("workload")
QUERY_KERNELS = Registry("query kernel")
GRAPH_FAMILIES = Registry("graph family")


def register_partitioner(name: str, factory: Optional[Callable] = None, *,
                         replace: bool = False) -> Callable:
    """Register a partitioner factory ``(num_shards, **params) -> Partitioner``."""
    return PARTITIONERS.register(name, factory, replace=replace)


def register_cache_policy(name: str, factory: Optional[Callable] = None, *,
                          replace: bool = False) -> Callable:
    """Register a result-cache factory ``(capacity) -> cache``."""
    return CACHE_POLICIES.register(name, factory, replace=replace)


def register_hot_set_policy(name: str, factory: Optional[Callable] = None, *,
                            replace: bool = False) -> Callable:
    """Register a hot-set policy factory ``(cache_config) -> policy | None``."""
    return HOT_SET_POLICIES.register(name, factory, replace=replace)


def register_workload(name: str, factory: Optional[Callable] = None, *,
                      replace: bool = False) -> Callable:
    """Register a workload factory ``(graph, num_queries, seed=0, **params)``."""
    return WORKLOADS.register(name, factory, replace=replace)


def register_query_kernel(name: str, factory: Optional[Callable] = None, *,
                          replace: bool = False) -> Callable:
    """Register a query-kernel resolver ``(hierarchy) -> concrete name``."""
    return QUERY_KERNELS.register(name, factory, replace=replace)


def register_graph_family(name: str, factory: Optional[Callable] = None, *,
                          replace: bool = False) -> Callable:
    """Register a graph-spec builder ``(want, weights, seed, spec) -> graph``."""
    return GRAPH_FAMILIES.register(name, factory, replace=replace)


def get_partitioner(name: str) -> Callable:
    return PARTITIONERS.get(name)


def get_cache_policy(name: str) -> Callable:
    return CACHE_POLICIES.get(name)


def get_hot_set_policy(name: str) -> Callable:
    return HOT_SET_POLICIES.get(name)


def get_workload(name: str) -> Callable:
    return WORKLOADS.get(name)


def get_query_kernel(name: str) -> Callable:
    return QUERY_KERNELS.get(name)


def get_graph_family(name: str) -> Callable:
    return GRAPH_FAMILIES.get(name)
