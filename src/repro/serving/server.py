"""The long-lived network server: ``QueryBackend`` on a TCP socket.

Layer three of the transport refactor.  :class:`RoutingServer` owns one
opened backend (local or sharded) and serves any number of concurrent
:class:`~repro.serving.session.ServerSession` clients over it with a
thread per connection — the stdlib-only sibling of an asyncio front-end,
chosen because the backend work (pickle + IPC + routing-table lookups)
releases the GIL at every blocking boundary and because it keeps the
session code identical between tests (in-memory streams) and production
(sockets).

Concurrent sessions never corrupt a shared backend:

* a **local** :class:`RoutingService` is single-threaded by construction
  (LRU mutation, hot-store promotion), so batches are serialised through
  one lock — clients still overlap their serialization and wire time
  with each other's compute;
* a **sharded** front-end advertises ``submit_batch`` / ``wait_batch``
  (the PR-8 pipelined scatter/gather, internally synchronised), so
  sessions feed the worker pipeline concurrently and admission control /
  per-worker in-flight windows provide the backpressure.

Graceful shutdown honours in-flight work: :meth:`close` stops accepting,
waits up to ``drain_timeout`` for busy sessions to finish the batch they
are answering (each session's final ``answers`` frame still goes out),
then disconnects idle sessions and joins every thread.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Dict, List, Optional, Sequence

from ..obs.metrics import make_registry, merge_exports
from .cache import ServingStats
from .config import ServingConfig
from .session import ServerSession
from .wire import parse_endpoint

__all__ = ["RoutingServer"]


class _SessionRecord:
    __slots__ = ("session", "thread", "sock")

    def __init__(self, session, thread, sock):
        self.session = session
        self.thread = thread
        self.sock = sock


class RoutingServer:
    """Serve one opened backend to many network clients.

    Parameters
    ----------
    backend:
        Any :class:`~repro.serving.backend.QueryBackend`; the server does
        *not* close it (the caller that opened it owns its lifetime).
    endpoint:
        ``"host:port"`` to bind; port ``0`` binds an ephemeral port —
        read :attr:`address` after :meth:`start` for the real one.
    config:
        The resolved :class:`ServingConfig`, advertised to every client
        during config negotiation.
    drain_timeout:
        Upper bound on waiting for busy sessions during graceful close.
    """

    def __init__(self, backend, endpoint: str = "127.0.0.1:0", *,
                 config: Optional[ServingConfig] = None,
                 server_name: str = "repro-serve",
                 telemetry: bool = False,
                 drain_timeout: float = 10.0) -> None:
        self.backend = backend
        self.host, self.port = parse_endpoint(endpoint)
        self.config = config
        self.server_name = server_name
        self.telemetry = telemetry
        self.drain_timeout = drain_timeout
        self.metrics = make_registry(telemetry)
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._sessions: List[_SessionRecord] = []
        self._session_exports: List[Dict] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._started = False
        self._closed = False
        #: Sharded front-ends expose the pipelined submit/wait pair; a
        #: local service does not and gets the serialised path instead.
        self._pipelined = (hasattr(backend, "submit_batch")
                           and hasattr(backend, "wait_batch"))
        self._backend_lock = threading.Lock()
        self.sessions_served = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> str:
        """The bound ``"host:port"`` (the real port, once started)."""
        return f"{self.host or '127.0.0.1'}:{self.port}"

    def start(self) -> "RoutingServer":
        if self._closed:
            raise RuntimeError("server is closed")
        if self._started:
            return self
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host or "127.0.0.1", self.port))
        listener.listen(64)
        self.port = listener.getsockname()[1]
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True)
        self._accept_thread.start()
        self._started = True
        return self

    def serve_forever(self) -> None:
        """Start (if needed) and block until :meth:`close` is called."""
        self.start()
        self._stop.wait()

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                sock, addr = self._listener.accept()
            except OSError:
                return  # listener closed — shutting down
            thread = threading.Thread(
                target=self._run_session, args=(sock, addr),
                name=f"repro-serve-{addr[0]}:{addr[1]}", daemon=True)
            with self._lock:
                if self._stop.is_set():
                    sock.close()
                    return
                record = _SessionRecord(None, thread, sock)
                self._sessions.append(record)
                self.sessions_served += 1
            thread.start()

    def _answer(self, kind: str, pairs: Sequence) -> List:
        if self._pipelined:
            # Sessions interleave in the sharded pipeline: submit is
            # internally synchronised, and waiting here does not block
            # other sessions' submissions.
            return self.backend.wait_batch(self.backend.submit_batch(kind,
                                                                     pairs))
        with self._backend_lock:
            if kind == "route":
                return self.backend.route_batch(pairs)
            return self.backend.distance_batch(pairs)

    def _run_session(self, sock: socket.socket, addr) -> None:
        peer = f"{addr[0]}:{addr[1]}"
        session = None
        try:
            rfile = sock.makefile("rb")
            wfile = sock.makefile("wb")
            session = ServerSession(
                self.backend, rfile, wfile, answer=self._answer,
                config=self.config, server_name=self.server_name,
                peer=peer, telemetry=self.telemetry)
            with self._lock:
                for record in self._sessions:
                    if record.sock is sock:
                        record.session = session
            session.serve()
        except Exception:
            pass  # session errors must never take the server down
        finally:
            try:
                sock.close()
            except OSError:
                pass
            with self._lock:
                self._sessions = [record for record in self._sessions
                                  if record.sock is not sock]
                if session is not None and session.metrics.enabled:
                    self._session_exports.append(session.metrics.export())

    def close(self, drain: bool = True) -> None:
        """Stop accepting, drain busy sessions, join everything (idempotent).

        ``drain=True`` lets every session finish the batch it is
        currently answering (bounded by ``drain_timeout``); idle sessions
        are disconnected immediately — their next read sees a clean EOF.
        """
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if drain:
            deadline = time.monotonic() + self.drain_timeout
            while time.monotonic() < deadline:
                with self._lock:
                    busy = [record for record in self._sessions
                            if record.session is not None
                            and record.session.busy]
                if not busy:
                    break
                time.sleep(0.02)
        with self._lock:
            records = list(self._sessions)
        for record in records:
            try:
                record.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                record.sock.close()
            except OSError:
                pass
        for record in records:
            record.thread.join(timeout=5.0)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)

    def __enter__(self) -> "RoutingServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def stats(self) -> ServingStats:
        """Backend stats plus server-side provenance and per-session wire
        telemetry (merged additively, like shard workers)."""
        stats = self.backend.query_stats()
        stats.extra["server"] = {"address": self.address,
                                 "sessions_served": self.sessions_served}
        with self._lock:
            exports = list(self._session_exports)
            exports.extend(record.session.metrics.export()
                           for record in self._sessions
                           if record.session is not None
                           and record.session.metrics.enabled)
        if exports or self.metrics.enabled:
            stats.extra["telemetry"] = merge_exports(
                [stats.extra.get("telemetry", {})] + exports
                + [self.metrics.export()])
        return stats

    def __repr__(self) -> str:
        state = ("closed" if self._closed
                 else "listening" if self._started else "cold")
        return f"RoutingServer({self.address}, {state})"
