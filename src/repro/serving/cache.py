"""Result caching and serving statistics for the routing service.

The compact-routing hierarchy answers any single query in ``O(k)`` table
lookups plus (for routes) a tree walk, but a service facing real traffic
sees the *same* queries over and over — workload skew is the whole reason
compact routing tables are viable at scale.  This module provides the two
pieces the :class:`~repro.serving.service.RoutingService` layers on top of
the hierarchy:

* :class:`LRUCache` — a bounded least-recently-used result cache (capacity
  0 disables caching entirely, which the benchmarks use as the cold
  baseline);
* :class:`LFUCache` — a frequency-aware alternative (evict the least
  *frequently* used entry, ties broken least-recently), registered as the
  ``"lfu"`` cache policy: under stable skew it keeps the perennially hot
  pairs resident even when a burst of one-off queries would cycle an LRU;
* :class:`ServingStats` — the counters a service operator watches: query
  volumes, cache hit/miss split, hot-pair hits, build/load latencies.

All are deliberately dependency-free (``collections.OrderedDict`` only).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterable, Optional

from ..obs.metrics import Histogram, merge_exports
from .registry import register_cache_policy

__all__ = ["LRUCache", "LFUCache", "ServingStats"]


def _sum_additive(values):
    """Sum additive extras: scalars, or dicts of scalars per sub-key.

    Returns ``None`` when the values are not uniformly summable (the caller
    falls back to the agreement rule).
    """
    if all(isinstance(value, (int, float))
           and not isinstance(value, bool) for value in values):
        return sum(values)
    if all(isinstance(value, dict) for value in values):
        combined: Dict[Any, Any] = {}
        for value in values:
            for sub_key, count in value.items():
                if not isinstance(count, (int, float)) \
                        or isinstance(count, bool):
                    return None
                combined[sub_key] = combined.get(sub_key, 0) + count
        return combined
    return None


class LRUCache:
    """A least-recently-used cache with a fixed capacity.

    ``capacity == 0`` disables the cache: every :meth:`get` misses and
    :meth:`put` is a no-op.  Hit/miss counters are kept on the cache itself
    so multiple caches (route results, distance estimates) can be aggregated
    by :class:`ServingStats`.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        """Membership test without touching recency or hit/miss counters."""
        return key in self._entries

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value (marking it most recently used) or ``default``."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return self._entries[key]
        self.misses += 1
        return default

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh an entry, evicting the LRU entry when full."""
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def discard(self, key: Hashable) -> bool:
        """Remove ``key`` if present, without touching recency or counters.

        Returns whether an entry was removed.  Used when a result migrates to
        a store outside the eviction domain (hot-pair pinning) and keeping the
        LRU copy would double-store it.
        """
        if key in self._entries:
            del self._entries[key]
            return True
        return False

    def clear(self) -> None:
        """Drop all entries (counters are kept; use :meth:`reset` for those)."""
        self._entries.clear()

    def reset(self) -> None:
        """Drop all entries and zero the counters."""
        self.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (f"LRUCache(capacity={self.capacity}, size={len(self)}, "
                f"hits={self.hits}, misses={self.misses})")


# The default result-cache policy.  Alternative policies register a factory
# with the same (capacity) signature and the LRUCache method contract
# (get/put/discard/clear/reset, __len__/__contains__, hit/miss counters).
register_cache_policy("lru", LRUCache)


class LFUCache:
    """A least-frequently-used cache with a fixed capacity.

    Same contract as :class:`LRUCache` (so it is registry-compatible), but
    eviction removes the entry with the *lowest access frequency*, ties
    broken by least-recent use within that frequency.  Every :meth:`get`
    hit and :meth:`put` refresh counts as one access.  The classic
    frequency-bucket construction keeps all operations O(1): entries live
    in per-frequency ``OrderedDict`` buckets and ``_min_freq`` tracks the
    lowest populated bucket.

    Compared to LRU this trades recency for durability: a stream of
    one-off pairs cannot flush the perennially hot working set, which is
    exactly the failure mode of bursty workloads over a Zipf base.  The
    cost is slower adaptation when the hot set genuinely drifts (a
    long-lived entry's frequency head start must be outlived).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._values: Dict[Hashable, Any] = {}
        self._freq: Dict[Hashable, int] = {}
        self._buckets: Dict[int, "OrderedDict[Hashable, None]"] = {}
        self._min_freq = 0

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, key: Hashable) -> bool:
        """Membership test without touching frequency or hit/miss counters."""
        return key in self._values

    def _bump(self, key: Hashable) -> None:
        freq = self._freq[key]
        bucket = self._buckets[freq]
        del bucket[key]
        if not bucket:
            del self._buckets[freq]
            if self._min_freq == freq:
                self._min_freq = freq + 1
        self._freq[key] = freq + 1
        self._buckets.setdefault(freq + 1, OrderedDict())[key] = None

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value (counting one access) or ``default``."""
        if key in self._values:
            self._bump(key)
            self.hits += 1
            return self._values[key]
        self.misses += 1
        return default

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh an entry, evicting the LFU entry when full."""
        if self.capacity == 0:
            return
        if key in self._values:
            self._values[key] = value
            self._bump(key)
            return
        if len(self._values) >= self.capacity:
            bucket = self._buckets[self._min_freq]
            victim, _ = bucket.popitem(last=False)
            if not bucket:
                del self._buckets[self._min_freq]
            del self._values[victim]
            del self._freq[victim]
            self.evictions += 1
        self._values[key] = value
        self._freq[key] = 1
        self._buckets.setdefault(1, OrderedDict())[key] = None
        self._min_freq = 1

    def discard(self, key: Hashable) -> bool:
        """Remove ``key`` if present, without touching counters.

        Same contract as :meth:`LRUCache.discard` (hot-pair pinning moves a
        result outside the eviction domain).
        """
        if key not in self._values:
            return False
        freq = self._freq.pop(key)
        del self._values[key]
        bucket = self._buckets[freq]
        del bucket[key]
        if not bucket:
            del self._buckets[freq]
            if self._min_freq == freq and self._freq:
                self._min_freq = min(self._buckets)
        return True

    def clear(self) -> None:
        """Drop all entries (counters are kept; use :meth:`reset` for those)."""
        self._values.clear()
        self._freq.clear()
        self._buckets.clear()
        self._min_freq = 0

    def reset(self) -> None:
        """Drop all entries and zero the counters."""
        self.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (f"LFUCache(capacity={self.capacity}, size={len(self)}, "
                f"hits={self.hits}, misses={self.misses})")


# The frequency-aware alternative, selectable with --cache-policy lfu (or
# CacheConfig(policy="lfu")) through the cache-policy registry.
register_cache_policy("lfu", LFUCache)


@dataclass
class ServingStats:
    """Operational counters for one :class:`~repro.serving.service.RoutingService`.

    Attributes
    ----------
    queries:
        Total queries answered (single and batched, all kinds).
    route_queries / distance_queries:
        Per-kind split of ``queries``.
    batches / batched_queries:
        Number of batch calls and how many queries arrived through them.
    cache_hits / cache_misses:
        LRU result-cache outcomes (hot-pair hits are counted separately).
    hot_hits:
        Queries answered from the precomputed hot-pair store.
    build_seconds / load_seconds:
        Wall-clock cost of constructing the hierarchy or loading it from an
        artifact (whichever path produced this service).
    warm_seconds:
        Wall-clock cost of hot-pair precomputation (provisioning work paid
        before the query stream starts; reported separately so warm-up is
        never silently folded into serving throughput).
    artifact_bytes:
        Payload size of the artifact backing this service, if any.
    extra:
        Free-form provenance (graph size, build params, artifact path).
    """

    #: ``extra`` keys that are per-worker additive counters: :meth:`merge`
    #: sums them (scalars, or dict-of-scalars per sub-key) instead of
    #: dropping them when workers disagree — an operator watching a sharded
    #: service still sees, e.g., the total online hot-set promotions, and
    #: the total table bytes resident across workers (which is what
    #: sub-artifact slicing shrinks).  ``kernel_stats`` (columnar batch /
    #: group / row-decode counts) and ``pivot_row_cache`` (hits / misses /
    #: evictions) are per-worker dict-of-scalar counters, so their merged
    #: values are fleet totals too; ``cover_queries`` counts queries a
    #: sliced worker answered for a dead sibling from its full-artifact
    #: cover.
    ADDITIVE_EXTRAS = ("hot_promotions", "hot_demotions", "hot_pairs",
                       "loaded_table_bytes", "kernel_stats",
                       "pivot_row_cache", "cover_queries")

    queries: int = 0
    route_queries: int = 0
    distance_queries: int = 0
    batches: int = 0
    batched_queries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    hot_hits: int = 0
    build_seconds: Optional[float] = None
    load_seconds: Optional[float] = None
    warm_seconds: Optional[float] = None
    artifact_bytes: Optional[int] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def as_dict(self) -> Dict[str, Any]:
        """Flat record of the core counters, with :attr:`extra` namespaced.

        Extras live under the ``"extra"`` sub-dict so a free-form key such as
        ``"queries"`` can never shadow a core counter in exported records.
        """
        return {
            "queries": self.queries,
            "route_queries": self.route_queries,
            "distance_queries": self.distance_queries,
            "batches": self.batches,
            "batched_queries": self.batched_queries,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "hot_hits": self.hot_hits,
            "build_seconds": self.build_seconds,
            "load_seconds": self.load_seconds,
            "warm_seconds": self.warm_seconds,
            "artifact_bytes": self.artifact_bytes,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ServingStats":
        """Rebuild a stats object from its :meth:`as_dict` form.

        The inverse used by the wire protocol (server snapshots travel as
        JSON).  ``cache_hit_rate`` is derived, so it is ignored on the way
        back in; unknown keys raise instead of being silently dropped —
        a malformed stats frame should fail loudly, not half-apply.
        """
        if not isinstance(data, dict):
            raise ValueError(f"ServingStats.from_dict expects a dict, "
                             f"got {type(data).__name__}")
        known = {"queries", "route_queries", "distance_queries", "batches",
                 "batched_queries", "cache_hits", "cache_misses",
                 "hot_hits", "build_seconds", "load_seconds",
                 "warm_seconds", "artifact_bytes", "extra"}
        unknown = sorted(set(data) - known - {"cache_hit_rate"})
        if unknown:
            raise ValueError(f"unknown ServingStats key(s) {unknown}")
        fields = {key: data[key] for key in known if key in data}
        fields["extra"] = dict(fields.get("extra") or {})
        return cls(**fields)

    @classmethod
    def merge(cls, stats: Iterable["ServingStats"]) -> "ServingStats":
        """Aggregate several stats objects (one per shard worker) into one.

        Counter attributes sum.  ``build_seconds`` / ``load_seconds`` sum over
        the contributors that recorded them (total wall-clock paid across
        processes); ``artifact_bytes`` takes the max, since co-located workers
        serve the same artifact.  ``extra`` keys listed in
        :data:`ADDITIVE_EXTRAS` are summed; any other key survives only when
        every contributor that set it agrees on the value (per-worker keys
        such as ``worker_id`` drop out); ``extra["merged_from"]`` records how
        many stats objects were merged.
        """
        stats = list(stats)
        merged = cls()
        seconds = {"build_seconds": [], "load_seconds": [],
                   "warm_seconds": []}
        payload_bytes = []
        extra_values: Dict[str, list] = {}
        for item in stats:
            merged.queries += item.queries
            merged.route_queries += item.route_queries
            merged.distance_queries += item.distance_queries
            merged.batches += item.batches
            merged.batched_queries += item.batched_queries
            merged.cache_hits += item.cache_hits
            merged.cache_misses += item.cache_misses
            merged.hot_hits += item.hot_hits
            for key in seconds:
                value = getattr(item, key)
                if value is not None:
                    seconds[key].append(value)
            if item.artifact_bytes is not None:
                payload_bytes.append(item.artifact_bytes)
            for key, value in item.extra.items():
                extra_values.setdefault(key, []).append(value)
        for key, values in seconds.items():
            setattr(merged, key, sum(values) if values else None)
        merged.artifact_bytes = max(payload_bytes) if payload_bytes else None
        for key, values in extra_values.items():
            if key == "telemetry":
                # Per-worker metrics-registry exports: counters sum, gauges
                # max, histograms merge bucket-for-bucket (associative and
                # commutative, so worker ordering cannot change the result).
                merged.extra[key] = merge_exports(values)
                continue
            if key in cls.ADDITIVE_EXTRAS:
                summed = _sum_additive(values)
                if summed is not None:
                    merged.extra[key] = summed
                    continue
            if all(value == values[0] for value in values):
                merged.extra[key] = values[0]
        merged.extra["merged_from"] = len(stats)
        return merged

    def combine(self, other: "ServingStats") -> "ServingStats":
        """A new stats object aggregating ``self`` and ``other`` (see :meth:`merge`)."""
        return type(self).merge([self, other])

    def describe(self) -> str:
        """Multi-line operator-facing summary (printed by ``repro-serve``)."""
        lines = [
            f"queries            : {self.queries} "
            f"(route {self.route_queries}, distance {self.distance_queries})",
            f"batches            : {self.batches} "
            f"({self.batched_queries} queries batched)",
            f"cache              : {self.cache_hits} hits / "
            f"{self.cache_misses} misses ({self.cache_hit_rate:.1%} hit rate)",
            f"hot-pair hits      : {self.hot_hits}",
        ]
        if self.build_seconds is not None:
            lines.append(f"hierarchy build    : {self.build_seconds:.3f}s")
        if self.load_seconds is not None:
            lines.append(f"artifact load      : {self.load_seconds:.3f}s")
        if self.warm_seconds is not None:
            lines.append(f"hot-pair warm-up   : {self.warm_seconds:.3f}s")
        if self.artifact_bytes is not None:
            lines.append(f"artifact payload   : {self.artifact_bytes} bytes")
        for key, value in self.extra.items():
            if key == "telemetry" and isinstance(value, dict):
                # The full export is for --json / run dirs; the operator
                # summary shows each span histogram's count and p99.
                parts = []
                for name in sorted(value):
                    payload = value[name]
                    if payload.get("type") == "histogram" \
                            and payload.get("count"):
                        hist = Histogram.from_dict(payload)
                        parts.append(f"{name} n={hist.count} "
                                     f"p99={hist.quantile(0.99) * 1e3:.2f}ms")
                lines.append(f"{key:<19}: " + ("; ".join(parts) or "(empty)"))
                continue
            lines.append(f"{key:<19}: {value}")
        return "\n".join(lines)
