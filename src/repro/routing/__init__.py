"""Routing applications of Section 4: relabeling RTC and compact routing."""

from .tables import Label, RoutingTable, RouteTrace, payload_words, words_to_bits
from .tree_routing import TreeRouting, TreeRoutingError
from .cluster_trees import DestinationTree, TreeFamily, build_destination_trees
from .skeleton import (
    default_sampling_probability,
    default_detection_budget,
    sample_skeleton,
    exact_skeleton_graph,
    skeleton_graph_from_pde,
    build_skeleton_pde,
    skeleton_distance_audit,
)
from .spanner import baswana_sen_spanner, greedy_spanner, verify_spanner, spanner_stretch
from .stretch import (
    StretchReport,
    sample_pairs,
    evaluate_routing,
    evaluate_distance_estimates,
    validate_route,
)
from .relabeling_scheme import RelabelingRoutingScheme, RelabelingBuildReport
from .tz_exact import ExactThorupZwickOracle, sample_levels
from .tz_hierarchy import CompactRoutingHierarchy, HierarchyBuildReport
from .compact import build_compact_routing, choose_truncation_level

__all__ = [
    "ExactThorupZwickOracle",
    "sample_levels",
    "CompactRoutingHierarchy",
    "HierarchyBuildReport",
    "build_compact_routing",
    "choose_truncation_level",
    "Label",
    "RoutingTable",
    "RouteTrace",
    "payload_words",
    "words_to_bits",
    "TreeRouting",
    "TreeRoutingError",
    "DestinationTree",
    "TreeFamily",
    "build_destination_trees",
    "default_sampling_probability",
    "default_detection_budget",
    "sample_skeleton",
    "exact_skeleton_graph",
    "skeleton_graph_from_pde",
    "build_skeleton_pde",
    "skeleton_distance_audit",
    "baswana_sen_spanner",
    "greedy_spanner",
    "verify_spanner",
    "spanner_stretch",
    "StretchReport",
    "sample_pairs",
    "evaluate_routing",
    "evaluate_distance_estimates",
    "validate_route",
    "RelabelingRoutingScheme",
    "RelabelingBuildReport",
]
