"""Destination-rooted routing trees built from PDE next-hop pointers.

Corollary 3.5 observes that the per-level source-detection lists double as
routing tables: for every entry ``(wd'(v, s), s)`` of a node ``v`` there is a
next hop realising a path of weight at most ``wd'(v, s)`` toward ``s``.
Following these pointers from every node that detected ``s`` induces, per
destination ``s``, a tree ``T_s`` rooted at ``s`` (Lemma 4.4 bounds its depth
and the number of trees a node participates in).

This module materialises these trees.  Because the distributed construction
uses *approximate* distances, a pointer chain may occasionally reach a node
that did not itself detect ``s`` (its list was truncated at ``sigma``); in
that case we graft the chain onto an exact shortest-path pointer and count
the event — the ``fallback_edges`` statistic reported by benchmarks measures
how often the approximation forces this repair (it is rare, and zero when
``sigma`` is large enough, e.g. for the second estimation of Theorem 4.5
where ``sigma = |S|``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from ..core.pde import PDEResult
from ..graphs.distances import dijkstra
from ..graphs.weighted_graph import WeightedGraph
from .tree_routing import TreeRouting

__all__ = ["DestinationTree", "build_destination_trees", "TreeFamily"]


@dataclass
class DestinationTree:
    """A routing tree rooted at one destination.

    ``parent[v]`` is the next hop from ``v`` toward the root; the root's
    parent is ``None``.  ``fallback_edges`` counts pointers that had to be
    repaired with exact shortest-path information (see module docstring).
    """

    root: Hashable
    parent: Dict[Hashable, Optional[Hashable]]
    fallback_edges: int = 0
    _routing: Optional[TreeRouting] = field(default=None, repr=False)

    def contains(self, node: Hashable) -> bool:
        return node in self.parent

    @property
    def size(self) -> int:
        return len(self.parent)

    @property
    def routing(self) -> TreeRouting:
        """Interval tree-routing structure (built lazily)."""
        if self._routing is None:
            self._routing = TreeRouting(self.root, self.parent)
        return self._routing

    @property
    def depth(self) -> int:
        return self.routing.height

    def path_to_root(self, node: Hashable) -> List[Hashable]:
        if node not in self.parent:
            raise KeyError(f"{node!r} is not in the tree rooted at {self.root!r}")
        path = [node]
        while self.parent[path[-1]] is not None:
            path.append(self.parent[path[-1]])
        return path

    def tree_route(self, source: Hashable, target: Hashable) -> List[Hashable]:
        """The tree path between two members (via their lowest common ancestor)."""
        return self.routing.route(source, target)

    def label_of(self, node: Hashable) -> int:
        return self.routing.label_of(node)

    # ------------------------------------------------------------------
    # state export (serving artifacts)
    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, object]:
        """Plain-builtin snapshot; the interval-routing structure is derived
        deterministically from the parent map, so it is not serialised."""
        return {"root": self.root, "parent": dict(self.parent),
                "fallback_edges": self.fallback_edges}

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "DestinationTree":
        return cls(root=state["root"], parent=dict(state["parent"]),
                   fallback_edges=state["fallback_edges"])


class TreeFamily:
    """The collection of destination trees induced by one PDE instance."""

    def __init__(self, trees: Dict[Hashable, DestinationTree]) -> None:
        self.trees = trees

    def __getitem__(self, destination: Hashable) -> DestinationTree:
        return self.trees[destination]

    def __contains__(self, destination: Hashable) -> bool:
        return destination in self.trees

    def get(self, destination: Hashable) -> Optional[DestinationTree]:
        return self.trees.get(destination)

    def destinations(self) -> Iterable[Hashable]:
        return self.trees.keys()

    def trees_containing(self, node: Hashable) -> List[Hashable]:
        """Destinations whose tree contains ``node`` (table-size accounting)."""
        return [dest for dest, tree in self.trees.items() if tree.contains(node)]

    def total_fallback_edges(self) -> int:
        return sum(tree.fallback_edges for tree in self.trees.values())

    def max_depth(self) -> int:
        return max((tree.depth for tree in self.trees.values()), default=0)

    def membership_counts(self) -> Dict[Hashable, int]:
        counts: Dict[Hashable, int] = {}
        for tree in self.trees.values():
            for node in tree.parent:
                counts[node] = counts.get(node, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # state export (serving artifacts)
    # ------------------------------------------------------------------
    def export_state(self) -> List[Dict[str, object]]:
        """Snapshot of every tree, preserving the destination order."""
        return [tree.export_state() for tree in self.trees.values()]

    @classmethod
    def from_state(cls, state: List[Dict[str, object]]) -> "TreeFamily":
        return cls({tree_state["root"]: DestinationTree.from_state(tree_state)
                    for tree_state in state})


def build_destination_trees(graph: WeightedGraph, pde: PDEResult,
                            destinations: Optional[Iterable[Hashable]] = None,
                            members_of: Optional[Dict[Hashable, Set[Hashable]]] = None,
                            ) -> TreeFamily:
    """Build one routing tree per destination from PDE next-hop pointers.

    Parameters
    ----------
    graph:
        The underlying network (used only for fallback repairs).
    pde:
        The PDE instance providing next hops and estimates.
    destinations:
        Which sources to build trees for (default: all PDE sources).
    members_of:
        Optional explicit membership: ``members_of[s]`` is the set of nodes
        that must appear in ``T_s``.  By default the members of ``T_s`` are
        the nodes whose output list contains ``s``.
    """
    dests = list(destinations) if destinations is not None else sorted(
        pde.sources, key=repr)
    if members_of is None:
        members_of = {}
        for s in dests:
            members_of[s] = set()
        for node, entries in pde.lists.items():
            for entry in entries:
                if entry.source in members_of:
                    members_of[entry.source].add(node)

    exact_parents: Dict[Hashable, Dict[Hashable, Optional[Hashable]]] = {}

    def exact_next_hop(node: Hashable, dest: Hashable) -> Optional[Hashable]:
        if dest not in exact_parents:
            _, parent = dijkstra(graph, dest)
            exact_parents[dest] = parent
        return exact_parents[dest].get(node)

    trees: Dict[Hashable, DestinationTree] = {}
    for dest in dests:
        parent: Dict[Hashable, Optional[Hashable]] = {dest: None}
        fallbacks = 0
        members = set(members_of.get(dest, set())) | {dest}
        for start in sorted(members, key=repr):
            current = start
            # ``chain`` records, per walked node, the hop taken the *last*
            # time the walk left it; ordering by last-departure time makes
            # the final pointer assignment acyclic even if the walk loops
            # before a fallback repair breaks the cycle.
            chain: Dict[Hashable, Hashable] = {}
            visited: Set[Hashable] = set()
            unreachable = False
            while current not in parent:
                if current in visited:
                    hop = exact_next_hop(current, dest)
                    fallbacks += 1
                else:
                    visited.add(current)
                    hop = pde.next_hop(current, dest)
                    if hop is None or not graph.has_edge(current, hop):
                        hop = exact_next_hop(current, dest)
                        fallbacks += 1
                if hop is None:
                    # Destination unreachable from this member; skip the chain.
                    unreachable = True
                    break
                chain[current] = hop
                current = hop
            if unreachable:
                continue
            for node, hop in chain.items():
                if node not in parent:
                    parent[node] = hop
        trees[dest] = DestinationTree(root=dest, parent=parent,
                                      fallback_edges=fallbacks)
    return TreeFamily(trees)
