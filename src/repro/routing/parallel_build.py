"""Multi-process level-parallel PDE builds — the cold-build fan-out.

The hierarchy construction of Section 4.3 is embarrassingly parallel in two
dimensions the sequential code walks one at a time:

* across levels — each level ``l`` is an independent ``(S_l, h_l, sigma_l)``
  estimation instance on the same graph, and
* within one estimation — each rounding level ``i`` of Theorem 3.3 is an
  independent sigma-truncated detection on the virtual graph ``G_i``.

This module flattens both dimensions into one task list — one task per
``(instance, rounding level)`` pair — and runs it on a spawn-based
:class:`~concurrent.futures.ProcessPoolExecutor`.  Workers receive the graph
state once (via the pool initializer), rebuild it lazily per token, hoist
the weight adjacency exactly as the sequential solver does, and return raw
detection lists as plain tuples.

**Determinism contract.**  The parallel build produces *identical* results
to the sequential one — identical down to the artifact payload checksum:

* Each detection task is a pure function of ``(graph, S, h', sigma, b(i))``;
  every quantity is computed in the parent and shipped verbatim, so a worker
  computes the same lists the sequential loop would.
* The merge folds rounding levels in increasing ``i`` via the same
  :func:`~repro.core.pde.fold_detection_lists` the sequential solver uses —
  the strict ``<`` there makes "earliest level wins ties" the *only*
  ordering the fold depends on, and the parent replays it exactly
  regardless of task completion order.
* Randomness (level sampling) happens in the caller before any fan-out;
  per-level metrics of the pure engines are analytic, so the parent
  reconstructs them without shipping them.

Failure contract: a worker that dies mid-build (OOM kill, hard crash)
surfaces as a typed :class:`ParallelBuildError` — never a hang — and
because artifact writes happen only after a fully-merged build (and are
atomic), a failed parallel build leaves no partial artifact on disk.
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from ..congest.metrics import CongestMetrics
from ..core.pde import (
    PARALLEL_PDE_ENGINES,
    PDEResult,
    finalize_pde_result,
    fold_detection_lists,
    level_adjacency,
    validate_pde_instance,
    weight_adjacency,
)
from ..core.source_detection import (
    DetectionEntry,
    SourceDetectionResult,
    detect_sources_batched,
    detect_sources_logical,
)
from ..core.weight_rounding import RoundingScheme
from ..graphs.weighted_graph import WeightedGraph
from ..obs.metrics import NULL_REGISTRY

__all__ = [
    "CRASH_ENV_VAR",
    "ParallelBuildError",
    "PDEInstance",
    "solve_pde_instances",
    "solve_pde_parallel",
]

#: Test hook: when a worker picks up the task matching this variable's
#: ``"<token>:<rounding level>"`` value it hard-exits instead of solving,
#: simulating a mid-build worker death.  Spawned children inherit the
#: parent's environment, so tests set it around a build call.
CRASH_ENV_VAR = "REPRO_BUILD_CRASH_TASK"


class ParallelBuildError(RuntimeError):
    """A parallel hierarchy build failed (worker death or task error).

    Raised in the driving process; by the time callers see it no partial
    state has escaped — artifacts are written only from a complete merge.
    """


@dataclass(frozen=True)
class PDEInstance:
    """One ``(S, h, sigma)``-estimation the orchestrator fans out.

    ``token`` names the graph (registered with :func:`solve_pde_instances`)
    the instance runs on — many instances may share one token, and workers
    rebuild + cache each graph once per process.
    """

    token: str
    sources: Tuple[Hashable, ...]
    h: int
    sigma: int
    epsilon: float
    engine: str = "batched"
    store_levels: bool = False


# ----------------------------------------------------------------------
# worker side (spawned processes)
# ----------------------------------------------------------------------
#: Graph states shipped once via the pool initializer, and the per-process
#: cache of graphs (plus hoisted weight adjacency) materialised from them.
_WORKER_GRAPH_STATES: Dict[str, dict] = {}
_WORKER_GRAPHS: Dict[str, Tuple[WeightedGraph, Dict]] = {}


def _init_worker(graph_states: Dict[str, dict]) -> None:
    global _WORKER_GRAPH_STATES
    _WORKER_GRAPH_STATES = dict(graph_states)
    _WORKER_GRAPHS.clear()


def _worker_graph(token: str) -> Tuple[WeightedGraph, Dict]:
    entry = _WORKER_GRAPHS.get(token)
    if entry is None:
        graph = WeightedGraph.from_state(_WORKER_GRAPH_STATES[token])
        entry = (graph, weight_adjacency(graph))
        _WORKER_GRAPHS[token] = entry
    return entry


def _run_detection_task(task: dict) -> dict:
    """Solve one ``(instance, rounding level)`` detection; returns plain data.

    The return value carries only builtins — ``(distance, source, next_hop)``
    triples per node plus the wall-clock spent — so the reply pickle stays
    small and the parent reconstructs :class:`DetectionEntry` objects and
    the analytic metrics itself.
    """
    if os.environ.get(CRASH_ENV_VAR) == f"{task['token']}:{task['level']}":
        os._exit(19)  # simulated hard worker death (tests only)
    started = time.perf_counter()
    graph, weight_adj = _worker_graph(task["token"])
    sources = set(task["sources"])
    base = task["base"]
    if task["engine"] == "batched":
        detection = detect_sources_batched(
            graph, sources, task["horizon"], task["sigma"],
            adjacency=level_adjacency(weight_adj, base))
    else:
        detection = detect_sources_logical(
            graph, sources, task["horizon"], task["sigma"],
            edge_length=lambda u, v, w: max(1, math.ceil(w / base)))
    lists = {node: [(e.distance, e.source, e.next_hop) for e in entries]
             for node, entries in detection.lists.items()}
    return {"lists": lists, "seconds": time.perf_counter() - started}


# ----------------------------------------------------------------------
# orchestrator (driving process)
# ----------------------------------------------------------------------
def _await_task(future) -> dict:
    try:
        return future.result()
    except BrokenProcessPool as exc:
        raise ParallelBuildError(
            "a parallel build worker died before completing its detection "
            "task; the build was abandoned and no partial hierarchy was "
            "produced") from exc
    except ParallelBuildError:
        raise
    except Exception as exc:
        raise ParallelBuildError(
            f"a parallel build detection task failed: {exc}") from exc


def solve_pde_instances(instances: Sequence[PDEInstance],
                        graphs: Dict[str, WeightedGraph],
                        build_workers: int,
                        registry=None) -> List[PDEResult]:
    """Solve many PDE instances on one spawn-based worker pool.

    All ``(instance, rounding level)`` tasks are scattered together (under a
    ``build_scatter`` span), so a wide instance's levels and its siblings'
    levels interleave freely across the pool; the merge (``build_merge``)
    then folds each instance's levels in increasing order, preserving the
    sequential fold's tie-breaking exactly.  Per-task worker wall clock is
    recorded in the ``level_solve`` histogram, mirroring the sequential
    solver's span.

    Results are returned in ``instances`` order and are identical to what
    ``solve_pde`` would produce for each instance sequentially.
    """
    obs = registry if registry is not None else NULL_REGISTRY
    if build_workers < 1:
        raise ValueError("build_workers must be >= 1")
    prepared = []
    for inst in instances:
        try:
            graph = graphs[inst.token]
        except KeyError:
            raise ValueError(f"instance references unregistered graph "
                             f"token {inst.token!r}") from None
        if inst.engine not in PARALLEL_PDE_ENGINES:
            raise ValueError(
                f"engine {inst.engine!r} does not support parallel builds; "
                f"available: {sorted(PARALLEL_PDE_ENGINES)}")
        source_set = validate_pde_instance(graph, inst.sources, inst.h,
                                           inst.sigma, inst.engine)
        rounding = RoundingScheme(epsilon=inst.epsilon,
                                  max_weight=graph.max_weight())
        prepared.append((inst, graph, source_set, rounding,
                         rounding.horizon(inst.h)))

    states = {token: g.export_state() for token, g in graphs.items()}
    executor = ProcessPoolExecutor(max_workers=build_workers,
                                   mp_context=get_context("spawn"),
                                   initializer=_init_worker,
                                   initargs=(states,))
    try:
        futures = {}
        with obs.span("build_scatter"):
            for idx, (inst, graph, source_set, rounding, horizon) \
                    in enumerate(prepared):
                sorted_sources = sorted(source_set, key=repr)
                for level in rounding.levels():
                    task = {
                        "token": inst.token,
                        "sources": sorted_sources,
                        "horizon": horizon,
                        "sigma": inst.sigma,
                        "base": rounding.base(level),
                        "level": level,
                        "engine": inst.engine,
                    }
                    futures[(idx, level)] = executor.submit(
                        _run_detection_task, task)

        results: List[PDEResult] = []
        for idx, (inst, graph, source_set, rounding, horizon) \
                in enumerate(prepared):
            estimates: Dict[Hashable, Dict[Hashable, float]] = {
                v: {} for v in graph.nodes()}
            next_hops: Dict[Hashable, Dict[Hashable, Optional[Hashable]]] = {
                v: {} for v in graph.nodes()}
            levels_used: Dict[Hashable, Dict[Hashable, int]] = {
                v: {} for v in graph.nodes()}
            per_level: Dict[int, SourceDetectionResult] = {}
            level_metrics: List[CongestMetrics] = []
            with obs.span("build_merge"):
                for level in rounding.levels():
                    payload = _await_task(futures.pop((idx, level)))
                    obs.histogram("level_solve").observe(payload["seconds"])
                    lists = {
                        node: [DetectionEntry(distance=d, source=s,
                                              next_hop=nh)
                               for d, s, nh in entries]
                        for node, entries in payload["lists"].items()
                    }
                    # Both pool-eligible engines report the same analytic
                    # cost; rebuilding it here keeps reply pickles lean.
                    metrics = CongestMetrics(rounds=horizon + inst.sigma,
                                             measured=False)
                    level_metrics.append(metrics)
                    fold_detection_lists(lists, rounding, level,
                                         estimates, next_hops, levels_used)
                    if inst.store_levels:
                        per_level[level] = SourceDetectionResult(
                            lists=lists, h=horizon, sigma=inst.sigma,
                            metrics=metrics)
            results.append(finalize_pde_result(
                graph, source_set, inst.h, inst.sigma, inst.epsilon,
                rounding, estimates, next_hops, levels_used,
                level_metrics, per_level, inst.store_levels))
        return results
    finally:
        executor.shutdown(wait=False, cancel_futures=True)


def solve_pde_parallel(graph: WeightedGraph, sources: Iterable[Hashable],
                       h: int, sigma: int, epsilon: float, engine: str,
                       build_workers: int, store_levels: bool = False,
                       registry=None) -> PDEResult:
    """Parallel twin of :func:`repro.core.pde.solve_pde` for one instance.

    ``solve_pde(..., build_workers=N)`` dispatches here; the instance's
    rounding levels fan across the pool and merge deterministically.
    """
    instance = PDEInstance(token="graph", sources=tuple(sources), h=h,
                           sigma=sigma, epsilon=epsilon, engine=engine,
                           store_levels=store_levels)
    return solve_pde_instances([instance], {"graph": graph},
                               build_workers=build_workers,
                               registry=registry)[0]
