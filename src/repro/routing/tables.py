"""Labels, routing tables and route traces — the objects Section 2.3 defines.

The routing-table-construction (RTC) problem asks every node to output a
label ``lambda(v)`` and a ``next_v`` function; the distance-approximation
problem asks for a label and a ``dist_v`` function.  This module provides
the concrete data structures the schemes of Section 4 produce, together with
size accounting in ``O(log n)``-bit words (one word = an identifier, a
distance, a level index or a flag), which is how the paper states label and
table sizes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

__all__ = ["Label", "RoutingTable", "RouteTrace", "words_to_bits", "payload_words"]


def payload_words(value: Any) -> int:
    """Number of ``O(log n)``-bit words needed to encode ``value``."""
    if value is None or isinstance(value, (int, float, bool, str)):
        return 1
    if isinstance(value, (tuple, list)):
        return sum(payload_words(item) for item in value)
    if isinstance(value, dict):
        return sum(payload_words(k) + payload_words(v) for k, v in value.items())
    return 1


def words_to_bits(words: int, n: int) -> int:
    """Convert a word count into bits assuming ``ceil(log2 n)``-bit words."""
    return words * max(1, math.ceil(math.log2(max(2, n))))


@dataclass
class Label:
    """A node label: named fields plus size accounting.

    The paper measures label size in bits; we count the number of words the
    fields occupy and convert with :func:`words_to_bits`.
    """

    owner: Hashable
    fields: Dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)

    def words(self) -> int:
        return 1 + payload_words(self.fields)  # +1 for the owner identifier

    def bits(self, n: int) -> int:
        return words_to_bits(self.words(), n)

    def as_dict(self) -> Dict[str, Any]:
        """Plain-builtin view (serving responses and artifact metadata)."""
        return {"owner": self.owner, "fields": dict(self.fields)}


@dataclass
class RoutingTable:
    """A node's local routing state.

    ``next_hops`` maps destination identifiers to neighbours; ``extra``
    holds auxiliary per-node structures (tree-routing intervals, bunch
    distance estimates, spanner copies, ...), each accounted by
    :func:`payload_words`.
    """

    owner: Hashable
    next_hops: Dict[Hashable, Hashable] = field(default_factory=dict)
    extra: Dict[str, Any] = field(default_factory=dict)

    def words(self) -> int:
        words = 0
        for dest, nxt in self.next_hops.items():
            words += payload_words(dest) + payload_words(nxt)
        for key, value in self.extra.items():
            words += payload_words(value)
        return words

    def bits(self, n: int) -> int:
        return words_to_bits(self.words(), n)


@dataclass
class RouteTrace:
    """The outcome of routing one packet: path taken, success flag, cost."""

    source: Hashable
    target: Hashable
    path: List[Hashable] = field(default_factory=list)
    delivered: bool = False
    weight: float = float("inf")
    fallback_hops: int = 0
    estimate: Optional[float] = None

    @property
    def hops(self) -> int:
        return max(0, len(self.path) - 1)

    def stretch(self, exact_distance: float) -> float:
        """Multiplicative stretch of the traced route against the true distance."""
        if not self.delivered:
            return float("inf")
        if exact_distance <= 0:
            return 1.0
        return self.weight / exact_distance

    def as_dict(self) -> Dict[str, Any]:
        """Plain-builtin view (serving responses, workload traces, JSON output)."""
        return {
            "source": self.source,
            "target": self.target,
            "path": list(self.path),
            "delivered": self.delivered,
            "weight": self.weight,
            "hops": self.hops,
            "fallback_hops": self.fallback_hops,
            "estimate": self.estimate,
        }
