"""Labels, routing tables and route traces — the objects Section 2.3 defines.

The routing-table-construction (RTC) problem asks every node to output a
label ``lambda(v)`` and a ``next_v`` function; the distance-approximation
problem asks for a label and a ``dist_v`` function.  This module provides
the concrete data structures the schemes of Section 4 produce, together with
size accounting in ``O(log n)``-bit words (one word = an identifier, a
distance, a level index or a flag), which is how the paper states label and
table sizes.
"""

from __future__ import annotations

import math
import os
import pickle
import struct
from array import array
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..obs.metrics import NULL_REGISTRY

__all__ = [
    "Label",
    "RoutingTable",
    "RouteTrace",
    "words_to_bits",
    "payload_words",
    # fixed-width record tables (artifact format v2)
    "RecordTableError",
    "NodeInternTable",
    "PivotRowTable",
    "OffsetRecordTable",
    "InternedPivotView",
    "InternedBunchRow",
    "InternedBunchLevel",
    "PivotRowBackend",
    "ColumnarQueryKernel",
    "HAVE_NUMPY",
]

# Optional accelerator only: every columnar path below has a stdlib
# struct/array twin producing bit-identical answers, so numpy's absence
# (or REPRO_NO_NUMPY=1, which the CI matrix uses to pin the stdlib path)
# changes speed, never results.
try:
    import numpy as _np
except ImportError:          # pragma: no cover - depends on environment
    _np = None
if _np is not None and os.environ.get("REPRO_NO_NUMPY"):
    _np = None

HAVE_NUMPY = _np is not None

#: The ``<int32, float64>`` record layout shared by the pivot and bunch
#: tables, as a packed numpy structured dtype (itemsize 12, no padding).
_RECORD_DTYPE = (None if _np is None
                 else _np.dtype([("key", "<i4"), ("value", "<f8")]))


def payload_words(value: Any) -> int:
    """Number of ``O(log n)``-bit words needed to encode ``value``."""
    if value is None or isinstance(value, (int, float, bool, str)):
        return 1
    if isinstance(value, (tuple, list)):
        return sum(payload_words(item) for item in value)
    if isinstance(value, dict):
        return sum(payload_words(k) + payload_words(v) for k, v in value.items())
    return 1


def words_to_bits(words: int, n: int) -> int:
    """Convert a word count into bits assuming ``ceil(log2 n)``-bit words."""
    return words * max(1, math.ceil(math.log2(max(2, n))))


@dataclass
class Label:
    """A node label: named fields plus size accounting.

    The paper measures label size in bits; we count the number of words the
    fields occupy and convert with :func:`words_to_bits`.
    """

    owner: Hashable
    fields: Dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)

    def words(self) -> int:
        return 1 + payload_words(self.fields)  # +1 for the owner identifier

    def bits(self, n: int) -> int:
        return words_to_bits(self.words(), n)

    def as_dict(self) -> Dict[str, Any]:
        """Plain-builtin view (serving responses and artifact metadata)."""
        return {"owner": self.owner, "fields": dict(self.fields)}


@dataclass
class RoutingTable:
    """A node's local routing state.

    ``next_hops`` maps destination identifiers to neighbours; ``extra``
    holds auxiliary per-node structures (tree-routing intervals, bunch
    distance estimates, spanner copies, ...), each accounted by
    :func:`payload_words`.
    """

    owner: Hashable
    next_hops: Dict[Hashable, Hashable] = field(default_factory=dict)
    extra: Dict[str, Any] = field(default_factory=dict)

    def words(self) -> int:
        words = 0
        for dest, nxt in self.next_hops.items():
            words += payload_words(dest) + payload_words(nxt)
        for key, value in self.extra.items():
            words += payload_words(value)
        return words

    def bits(self, n: int) -> int:
        return words_to_bits(self.words(), n)


@dataclass
class RouteTrace:
    """The outcome of routing one packet: path taken, success flag, cost."""

    source: Hashable
    target: Hashable
    path: List[Hashable] = field(default_factory=list)
    delivered: bool = False
    weight: float = float("inf")
    fallback_hops: int = 0
    estimate: Optional[float] = None

    @property
    def hops(self) -> int:
        return max(0, len(self.path) - 1)

    def stretch(self, exact_distance: float) -> float:
        """Multiplicative stretch of the traced route against the true distance."""
        if not self.delivered:
            return float("inf")
        if exact_distance <= 0:
            return 1.0
        return self.weight / exact_distance

    def as_dict(self) -> Dict[str, Any]:
        """Plain-builtin view (serving responses, workload traces, JSON output)."""
        return {
            "source": self.source,
            "target": self.target,
            "path": list(self.path),
            "delivered": self.delivered,
            "weight": self.weight,
            "hops": self.hops,
            "fallback_hops": self.fallback_hops,
            "estimate": self.estimate,
        }


# ======================================================================
# Fixed-width record tables (artifact format v2)
# ======================================================================
# The serving layer's artifact format v2 stores the query-hot tables —
# per-node pivot rows and per-(level, node) bunch rows — as fixed-width
# binary records over *interned* node indices, so a reader can locate any
# record by pure offset arithmetic and ``mmap`` the table instead of
# deserialising it.  Everything below is stdlib ``struct``/``array``-style
# encoding; no third-party dependencies.  The classes come in pairs:
#
# * ``encode`` classmethods produce the section bytes at save time;
# * the constructors wrap a ``memoryview`` (typically over an ``mmap``)
#   and answer point lookups without copying or materialising the table.
#
# ``Interned*View`` adapters then present those tables through the exact
# mapping interface the in-memory :class:`~repro.routing.tz_hierarchy.
# CompactRoutingHierarchy` uses (``pivots[l][v]``, ``bunches[v][s]``), so a
# lazily-loaded hierarchy answers queries through the same code path as an
# eager one.


class RecordTableError(ValueError):
    """Raised for malformed or out-of-bounds record-table bytes."""


_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"f"
_TAG_INT = b"I"
_TAG_FLOAT = b"F"
_TAG_STR = b"S"
_TAG_TUPLE = b"U"
_TAG_PICKLE = b"P"

_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_U32 = struct.Struct("<I")

# Front-coded intern tables open with a count field no legacy table can
# carry (2**32 - 1 nodes), followed by a format-version byte that is not a
# legacy value tag: readers predating front coding fail their very first
# value decode with the typed "unknown intern-table value tag" error
# instead of misreading compressed bytes as node labels.
_FC_SENTINEL = 0xFFFFFFFF
_FC_VERSION = b"\x01"
_FC_TAG_STR = b"s"
_FC_TAG_OTHER = b"o"


def _encode_value(value: Any, out: bytearray) -> None:
    """Tagged binary encoding of one node label (int/str/float/bool/None/
    tuple natively; anything else falls back to an embedded pickle)."""
    if value is None:
        out += _TAG_NONE
    elif value is True:
        out += _TAG_TRUE
    elif value is False:
        out += _TAG_FALSE
    elif isinstance(value, int) and -(2 ** 63) <= value < 2 ** 63:
        out += _TAG_INT
        out += _I64.pack(value)
    elif isinstance(value, float):
        out += _TAG_FLOAT
        out += _F64.pack(value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out += _TAG_STR
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(value, tuple):
        out += _TAG_TUPLE
        out += _U32.pack(len(value))
        for item in value:
            _encode_value(item, out)
    else:
        raw = pickle.dumps(value, protocol=4)
        out += _TAG_PICKLE
        out += _U32.pack(len(raw))
        out += raw


def _decode_value(buf: memoryview, pos: int) -> Tuple[Any, int]:
    tag = bytes(buf[pos:pos + 1])
    pos += 1
    if tag == _TAG_NONE:
        return None, pos
    if tag == _TAG_TRUE:
        return True, pos
    if tag == _TAG_FALSE:
        return False, pos
    if tag == _TAG_INT:
        return _I64.unpack_from(buf, pos)[0], pos + 8
    if tag == _TAG_FLOAT:
        return _F64.unpack_from(buf, pos)[0], pos + 8
    if tag == _TAG_STR:
        (length,) = _U32.unpack_from(buf, pos)
        pos += 4
        return bytes(buf[pos:pos + length]).decode("utf-8"), pos + length
    if tag == _TAG_TUPLE:
        (count,) = _U32.unpack_from(buf, pos)
        pos += 4
        items = []
        for _ in range(count):
            item, pos = _decode_value(buf, pos)
            items.append(item)
        return tuple(items), pos
    if tag == _TAG_PICKLE:
        (length,) = _U32.unpack_from(buf, pos)
        pos += 4
        return pickle.loads(bytes(buf[pos:pos + length])), pos + length
    raise RecordTableError(f"unknown intern-table value tag {tag!r}")


class NodeInternTable:
    """Bidirectional node-label <-> dense-index intern table.

    Every binary table in a v2 artifact refers to nodes by their index in
    this table (the graph's node insertion order), so node labels are
    stored exactly once no matter how many records mention them.
    """

    def __init__(self, nodes: Iterable[Hashable]) -> None:
        self._nodes: List[Hashable] = list(nodes)
        self._index: Dict[Hashable, int] = {
            node: i for i, node in enumerate(self._nodes)}
        if len(self._index) != len(self._nodes):
            raise RecordTableError("duplicate node labels in intern table")

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: Hashable) -> bool:
        return node in self._index

    def index_of(self, node: Hashable) -> int:
        """The dense index of ``node`` (raises ``KeyError`` if unknown)."""
        return self._index[node]

    def indices_of(self, nodes: Iterable[Hashable]) -> List[int]:
        """Dense indices for a whole batch of labels in one pass.

        The batch-query kernel resolves every label exactly once through
        this instead of one dict probe per (pair, level) touch.  Unknown
        labels raise ``KeyError`` naming the offending label, matching
        :meth:`index_of`.
        """
        index = self._index
        return [index[node] for node in nodes]

    def get_index(self, node: Hashable) -> Optional[int]:
        return self._index.get(node)

    def node_at(self, index: int) -> Hashable:
        return self._nodes[index]

    def nodes(self) -> List[Hashable]:
        """The node labels in index order (a copy)."""
        return list(self._nodes)

    def encode(self, compress: bool = False) -> bytes:
        """Serialise the table.

        ``compress=False`` (the default) writes the legacy tagged layout
        every reader understands.  ``compress=True`` writes the
        **front-coded** layout: each string label stores only the byte
        length it shares with the previous string label plus its own
        suffix, so runs of common-prefix labels ("node_0001",
        "node_0002", ...) collapse to a few bytes each.  Non-string
        labels pass through the tagged encoding unchanged and do not
        reset the string-prefix context.  :meth:`decode` auto-detects
        either layout; readers predating front coding reject a
        compressed table with a typed :class:`RecordTableError`.
        """
        if not compress:
            out = bytearray(_U32.pack(len(self._nodes)))
            for node in self._nodes:
                _encode_value(node, out)
            return bytes(out)
        out = bytearray(_U32.pack(_FC_SENTINEL))
        out += _FC_VERSION
        out += _U32.pack(len(self._nodes))
        prev = b""
        for node in self._nodes:
            if isinstance(node, str):
                raw = node.encode("utf-8")
                shared = 0
                limit = min(len(raw), len(prev))
                while shared < limit and raw[shared] == prev[shared]:
                    shared += 1
                out += _FC_TAG_STR
                out += _U32.pack(shared)
                out += _U32.pack(len(raw) - shared)
                out += raw[shared:]
                prev = raw
            else:
                out += _FC_TAG_OTHER
                _encode_value(node, out)
        return bytes(out)

    @classmethod
    def _decode_front_coded(cls, view: memoryview) -> "NodeInternTable":
        version = bytes(view[4:5])
        if version != _FC_VERSION:
            raise RecordTableError(
                f"unsupported front-coded intern-table version {version!r}")
        (count,) = _U32.unpack_from(view, 5)
        pos = 9
        nodes: List[Hashable] = []
        prev = b""
        for _ in range(count):
            tag = bytes(view[pos:pos + 1])
            pos += 1
            if tag == _FC_TAG_STR:
                shared, suffix_len = struct.unpack_from("<II", view, pos)
                pos += 8
                if shared > len(prev):
                    raise RecordTableError(
                        f"front-coded prefix length {shared} exceeds "
                        f"previous label length {len(prev)}")
                raw = prev[:shared] + bytes(view[pos:pos + suffix_len])
                pos += suffix_len
                nodes.append(raw.decode("utf-8"))
                prev = raw
            elif tag == _FC_TAG_OTHER:
                node, pos = _decode_value(view, pos)
                nodes.append(node)
            else:
                raise RecordTableError(
                    f"unknown front-coded intern-table tag {tag!r}")
        if pos != len(view):
            raise RecordTableError(
                f"intern table has {len(view) - pos} trailing bytes")
        return cls(nodes)

    @classmethod
    def decode(cls, buf) -> "NodeInternTable":
        view = memoryview(buf)
        try:
            (count,) = _U32.unpack_from(view, 0)
            if count == _FC_SENTINEL:
                return cls._decode_front_coded(view)
            pos = 4
            nodes = []
            for _ in range(count):
                node, pos = _decode_value(view, pos)
                nodes.append(node)
        except (struct.error, IndexError) as exc:
            raise RecordTableError(f"corrupt intern table: {exc}") from exc
        if pos != len(view):
            raise RecordTableError(
                f"intern table has {len(view) - pos} trailing bytes")
        return cls(nodes)


class PivotRowTable:
    """Node-major fixed-width pivot records.

    One record per (node, level) holding ``(pivot_index, distance)`` as
    ``<int32, float64>``; ``pivot_index == -1`` encodes "no pivot".  The
    records for one node are contiguous, so a full per-node pivot row —
    the label-derived half of every query — is one bounded slice read.
    """

    _HEADER = struct.Struct("<II")   # num_nodes, num_levels
    _RECORD = struct.Struct("<id")
    NO_PIVOT = -1

    @classmethod
    def encode(cls, num_nodes: int, num_levels: int,
               rows: Iterable[Sequence[Tuple[int, float]]]) -> bytes:
        out = bytearray(cls._HEADER.pack(num_nodes, num_levels))
        written = 0
        for row in rows:
            if len(row) != num_levels:
                raise RecordTableError(
                    f"pivot row has {len(row)} levels, expected {num_levels}")
            for pivot_index, dist in row:
                out += cls._RECORD.pack(pivot_index, dist)
            written += 1
        if written != num_nodes:
            raise RecordTableError(
                f"encoded {written} pivot rows, expected {num_nodes}")
        return bytes(out)

    def __init__(self, buf) -> None:
        self._buf = memoryview(buf)
        try:
            self.num_nodes, self.num_levels = self._HEADER.unpack_from(
                self._buf, 0)
        except struct.error as exc:
            raise RecordTableError(f"corrupt pivot table header: {exc}") from exc
        expected = (self._HEADER.size
                    + self.num_nodes * self.num_levels * self._RECORD.size)
        if len(self._buf) != expected:
            raise RecordTableError(
                f"pivot table is {len(self._buf)} bytes, header implies "
                f"{expected}")

    def record(self, node_index: int, level_offset: int) -> Tuple[int, float]:
        if not 0 <= node_index < self.num_nodes:
            raise RecordTableError(f"node index {node_index} out of range")
        if not 0 <= level_offset < self.num_levels:
            raise RecordTableError(f"level offset {level_offset} out of range")
        pos = self._HEADER.size + (node_index * self.num_levels
                                   + level_offset) * self._RECORD.size
        return self._RECORD.unpack_from(self._buf, pos)

    def row(self, node_index: int) -> List[Tuple[int, float]]:
        """All ``(pivot_index, distance)`` records of one node (contiguous)."""
        if not 0 <= node_index < self.num_nodes:
            raise RecordTableError(f"node index {node_index} out of range")
        start = self._HEADER.size + node_index * self.num_levels * self._RECORD.size
        stop = start + self.num_levels * self._RECORD.size
        return list(self._RECORD.iter_unpack(self._buf[start:stop]))

    def _np_records(self):
        """The whole record area as a ``(num_nodes, num_levels)`` structured
        numpy view over the mapped bytes (built once, zero-copy)."""
        table = getattr(self, "_np_table", None)
        if table is None:
            flat = _np.frombuffer(self._buf, dtype=_RECORD_DTYPE,
                                  offset=self._HEADER.size)
            table = flat.reshape(self.num_nodes, self.num_levels)
            self._np_table = table
        return table

    def rows_batch(self, node_indices: Sequence[int]
                   ) -> Tuple[Sequence[int], Sequence[float]]:
        """Packed pivot records for a batch of nodes.

        Returns ``(pivots, dists)`` as two flat parallel sequences, row
        major with ``num_levels`` entries per node in ``node_indices``
        order — the columnar twin of calling :meth:`row` per node.  The
        stdlib path fills ``array('i')`` / ``array('d')`` blocks from the
        contiguous record slices; with numpy the whole gather is one fancy
        index over a zero-copy structured view.
        """
        if _np is not None:
            rows = self._np_records()[node_indices]
            # .tolist() converts to plain int/float once; the kernel's
            # per-pair loop then avoids numpy-scalar boxing on every access.
            return rows["key"].ravel().tolist(), rows["value"].ravel().tolist()
        pivots = array("i")
        dists = array("d")
        base = self._HEADER.size
        stride = self.num_levels * self._RECORD.size
        for node_index in node_indices:
            if not 0 <= node_index < self.num_nodes:
                raise RecordTableError(f"node index {node_index} out of range")
            start = base + node_index * stride
            for pivot_index, dist in self._RECORD.iter_unpack(
                    self._buf[start:start + stride]):
                pivots.append(pivot_index)
                dists.append(dist)
        return pivots, dists


class OffsetRecordTable:
    """Variable-length rows of fixed-width records behind an offset index.

    Layout: a ``<num_rows, num_records>`` header, then ``num_rows`` index
    entries of ``<record_offset uint64, count uint32>``, then the records
    (``<int32 key, float64 value>``).  A row is found by one index read
    plus one bounded slice read — no scanning, no deserialisation.  The
    count sentinel ``ABSENT`` marks a row that is *not present* (used by
    per-shard sub-artifacts for bunch rows owned by other shards), which
    is distinct from an empty row.
    """

    _HEADER = struct.Struct("<QQ")   # num_rows, num_records
    _INDEX = struct.Struct("<QI")    # record offset, count
    _RECORD = struct.Struct("<id")
    ABSENT = 0xFFFFFFFF

    @classmethod
    def encode(cls, rows: Iterable[Optional[Sequence[Tuple[int, float]]]]
               ) -> bytes:
        index = bytearray()
        data = bytearray()
        num_rows = 0
        num_records = 0
        for row in rows:
            num_rows += 1
            if row is None:
                index += cls._INDEX.pack(0, cls.ABSENT)
                continue
            index += cls._INDEX.pack(num_records, len(row))
            for key, value in row:
                data += cls._RECORD.pack(key, value)
            num_records += len(row)
        return cls._HEADER.pack(num_rows, num_records) + bytes(index) + bytes(data)

    def __init__(self, buf) -> None:
        self._buf = memoryview(buf)
        try:
            self.num_rows, self.num_records = self._HEADER.unpack_from(
                self._buf, 0)
        except struct.error as exc:
            raise RecordTableError(f"corrupt offset table header: {exc}") from exc
        self._index_base = self._HEADER.size
        self._data_base = self._index_base + self.num_rows * self._INDEX.size
        expected = self._data_base + self.num_records * self._RECORD.size
        if len(self._buf) != expected:
            raise RecordTableError(
                f"offset table is {len(self._buf)} bytes, header implies "
                f"{expected}")

    def _entry(self, row_index: int) -> Tuple[int, int]:
        if not 0 <= row_index < self.num_rows:
            raise RecordTableError(f"row index {row_index} out of range")
        return self._INDEX.unpack_from(
            self._buf, self._index_base + row_index * self._INDEX.size)

    def has_row(self, row_index: int) -> bool:
        _, count = self._entry(row_index)
        return count != self.ABSENT

    def row_count(self, row_index: int) -> int:
        offset, count = self._entry(row_index)
        if count == self.ABSENT:
            raise RecordTableError(f"row {row_index} is absent from this table")
        return count

    def row_items(self, row_index: int) -> List[Tuple[int, float]]:
        return list(self._RECORD.iter_unpack(self._row_slice(row_index)))

    def _row_slice(self, row_index: int):
        offset, count = self._entry(row_index)
        if count == self.ABSENT:
            raise RecordTableError(f"row {row_index} is absent from this table")
        if offset + count > self.num_records:
            raise RecordTableError(
                f"row {row_index} points past the record area "
                f"(offset {offset}, count {count}, {self.num_records} records)")
        start = self._data_base + offset * self._RECORD.size
        return self._buf[start:start + count * self._RECORD.size]

    _KEY = struct.Struct("<i")

    def probe(self, row_index: int, key: int) -> Optional[float]:
        """The value stored for ``key`` in the row, or ``None``.

        A bounded scan over the row's fixed-width records that decodes
        *keys only* at the record stride; the float64 value is unpacked
        for the single matching record (rows are ``O~(n^{1/k})`` entries).
        With numpy the key column is compared in one vectorised pass.
        """
        row = self._row_slice(row_index)
        if _np is not None:
            records = _np.frombuffer(row, dtype=_RECORD_DTYPE)
            hits = _np.nonzero(records["key"] == key)[0]
            return float(records["value"][hits[0]]) if hits.size else None
        unpack_key = self._KEY.unpack_from
        for pos in range(0, len(row), self._RECORD.size):
            if unpack_key(row, pos)[0] == key:
                return _F64.unpack_from(row, pos + self._KEY.size)[0]
        return None

    def lookup(self, row_index: int, key: int) -> Optional[float]:
        """Alias of :meth:`probe` (the historical name, kept for callers)."""
        return self.probe(row_index, key)

    def row_map(self, row_index: int) -> Dict[int, float]:
        """One row decoded to a ``{key: value}`` dict in a single pass.

        The batch kernel decodes each ``(level, source)`` row at most once
        per batch through this, then answers every pair in the source's
        group with plain dict probes.
        """
        row = self._row_slice(row_index)
        if _np is not None and len(row) >= 256:
            records = _np.frombuffer(row, dtype=_RECORD_DTYPE)
            return dict(zip(records["key"].tolist(),
                            records["value"].tolist()))
        return dict(self._RECORD.iter_unpack(row))


# ----------------------------------------------------------------------
# mapping adapters: record tables presented as the hierarchy's dicts
# ----------------------------------------------------------------------
class InternedPivotView:
    """One pivot level as a read-only mapping ``{node: pivot}`` (or
    ``{node: distance}``), decoding records straight from the table."""

    _PIVOT = 0
    _DIST = 1

    __slots__ = ("_table", "_intern", "_level", "_field")

    def __init__(self, table: PivotRowTable, intern: NodeInternTable,
                 level_offset: int, field: int) -> None:
        self._table = table
        self._intern = intern
        self._level = level_offset
        self._field = field

    @classmethod
    def pivots(cls, table, intern, level_offset) -> "InternedPivotView":
        return cls(table, intern, level_offset, cls._PIVOT)

    @classmethod
    def distances(cls, table, intern, level_offset) -> "InternedPivotView":
        return cls(table, intern, level_offset, cls._DIST)

    def __getitem__(self, node: Hashable):
        index = self._intern.index_of(node)   # KeyError for unknown nodes
        pivot_index, dist = self._table.record(index, self._level)
        if self._field == self._DIST:
            return dist
        return None if pivot_index < 0 else self._intern.node_at(pivot_index)

    def get(self, node: Hashable, default=None):
        try:
            return self[node]
        except KeyError:
            return default

    def __contains__(self, node: Hashable) -> bool:
        return node in self._intern

    def __len__(self) -> int:
        return len(self._intern)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._intern.nodes())

    def keys(self) -> Iterator[Hashable]:
        return iter(self._intern.nodes())

    def items(self) -> Iterator[Tuple[Hashable, Any]]:
        for node in self._intern.nodes():
            yield node, self[node]

    def values(self) -> Iterator[Any]:
        for node in self._intern.nodes():
            yield self[node]


class InternedBunchRow:
    """One bunch row as a read-only mapping ``{source: estimate}``.

    Membership tests and lookups scan the row's records (bunch rows are
    ``O~(n^{1/k})`` entries by construction), decoding nothing but the
    records touched.
    """

    __slots__ = ("_table", "_intern", "_row")

    def __init__(self, table: OffsetRecordTable, intern: NodeInternTable,
                 row_index: int) -> None:
        self._table = table
        self._intern = intern
        self._row = row_index

    def __contains__(self, node: Hashable) -> bool:
        index = self._intern.get_index(node)
        if index is None:
            return False
        return self._table.lookup(self._row, index) is not None

    def __getitem__(self, node: Hashable) -> float:
        index = self._intern.get_index(node)
        value = None if index is None else self._table.lookup(self._row, index)
        if value is None:
            raise KeyError(node)
        return value

    def get(self, node: Hashable, default=None):
        index = self._intern.get_index(node)
        if index is None:
            return default
        value = self._table.lookup(self._row, index)
        return default if value is None else value

    def __len__(self) -> int:
        return self._table.row_count(self._row)

    def __iter__(self) -> Iterator[Hashable]:
        for index, _ in self._table.row_items(self._row):
            yield self._intern.node_at(index)

    def keys(self) -> Iterator[Hashable]:
        return iter(self)

    def items(self) -> Iterator[Tuple[Hashable, float]]:
        for index, value in self._table.row_items(self._row):
            yield self._intern.node_at(index), value

    def values(self) -> Iterator[float]:
        for _, value in self._table.row_items(self._row):
            yield value


class InternedBunchLevel:
    """One level's bunches as a read-only mapping ``{node: bunch_row}``.

    Row indices are ``level * num_nodes + node_index`` into one shared
    :class:`OffsetRecordTable` holding every level's rows.  Accessing a
    row a sub-artifact sliced away raises ``KeyError`` with an
    explanatory message — by construction the sharded front-end never
    routes such a query to this slice.
    """

    __slots__ = ("_table", "_intern", "_level", "_num_nodes")

    def __init__(self, table: OffsetRecordTable, intern: NodeInternTable,
                 level: int, num_nodes: int) -> None:
        self._table = table
        self._intern = intern
        self._level = level
        self._num_nodes = num_nodes

    def _row_index(self, node: Hashable) -> int:
        return self._level * self._num_nodes + self._intern.index_of(node)

    def __getitem__(self, node: Hashable) -> InternedBunchRow:
        row = self._row_index(node)    # KeyError for unknown nodes
        if not self._table.has_row(row):
            raise KeyError(
                f"bunch row for node {node!r} (level {self._level}) is not "
                f"present in this artifact slice; sub-artifacts only hold "
                f"rows for their own shard's sources")
        return InternedBunchRow(self._table, self._intern, row)

    def get(self, node: Hashable, default=None):
        try:
            return self[node]
        except KeyError:
            return default

    def __contains__(self, node: Hashable) -> bool:
        index = self._intern.get_index(node)
        if index is None:
            return False
        return self._table.has_row(self._level * self._num_nodes + index)

    def __len__(self) -> int:
        return sum(1 for node in self._intern.nodes() if node in self)

    def __iter__(self) -> Iterator[Hashable]:
        for node in self._intern.nodes():
            if node in self:
                yield node

    def keys(self) -> Iterator[Hashable]:
        return iter(self)

    def items(self) -> Iterator[Tuple[Hashable, InternedBunchRow]]:
        for node in self:
            yield node, self[node]


class PivotRowBackend:
    """Zero-copy ``pivot_row`` provider for an mmap-loaded hierarchy.

    ``CompactRoutingHierarchy.pivot_row`` delegates here when present: the
    full per-level pivot row of a target is one contiguous record-slice
    read straight from the page cache, instead of ``k`` dict lookups over
    eagerly materialised pivot maps.
    """

    __slots__ = ("_table", "_intern")

    def __init__(self, table: PivotRowTable, intern: NodeInternTable) -> None:
        self._table = table
        self._intern = intern

    def pivot_row(self, target: Hashable) -> Tuple[Optional[Hashable], ...]:
        index = self._intern.index_of(target)
        row: List[Optional[Hashable]] = [target]   # level 0 pivot is the target
        node_at = self._intern.node_at
        for pivot_index, _dist in self._table.row(index):
            row.append(None if pivot_index < 0 else node_at(pivot_index))
        return tuple(row)


class ColumnarQueryKernel:
    """Array-native batch query kernel over the v2 record tables.

    The per-pair query path answers ``distance(s, t)`` through the mapping
    adapters above: one ``InternedBunchRow`` object per probe, one label
    dict lookup per touch, one full-row scan per level.  This kernel
    answers a whole batch straight from the record slices instead:

    * every label is resolved to its interned id exactly once
      (:meth:`NodeInternTable.indices_of`);
    * pairs are grouped by source and the groups visited in index order,
      so bunch-row reads walk the mapped section monotonically;
    * each distinct target's pivot row is gathered once into one packed
      block (:meth:`PivotRowTable.rows_batch`);
    * each ``(level, source)`` bunch row is decoded at most once per batch
      (:meth:`OffsetRecordTable.row_map`), then every pair in the group is
      answered by integer-keyed dict probes.

    Answers are bit-identical to the per-pair path — same float records,
    same ``estimate + tail`` arithmetic, same ``KeyError`` for unknown
    labels or bunch rows a sub-artifact sliced away — only the access
    pattern changes.  ``stats`` counts batches / pairs / source groups /
    bunch-row decodes for the serving layer's ``--json`` report.
    """

    __slots__ = ("_intern", "_pivot_table", "_bunch_table", "_k",
                 "_num_nodes", "stats", "metrics")

    def __init__(self, intern: NodeInternTable, pivot_table: PivotRowTable,
                 bunch_table: OffsetRecordTable, k: int) -> None:
        if pivot_table.num_levels != k - 1:
            raise RecordTableError(
                f"pivot table has {pivot_table.num_levels} levels, "
                f"expected k-1 = {k - 1}")
        if bunch_table.num_rows != k * len(intern):
            raise RecordTableError(
                f"bunch table has {bunch_table.num_rows} rows, "
                f"expected k*n = {k * len(intern)}")
        self._intern = intern
        self._pivot_table = pivot_table
        self._bunch_table = bunch_table
        self._k = k
        self._num_nodes = len(intern)
        self.stats: Dict[str, int] = {"batches": 0, "pairs": 0, "groups": 0,
                                      "bunch_rows_decoded": 0}
        #: Telemetry registry for per-group decode spans; the serving layer
        #: swaps in a live registry when telemetry is enabled (the no-op
        #: singleton costs one attribute access per group otherwise).
        self.metrics = NULL_REGISTRY

    def node_label(self, index: int) -> Hashable:
        """The node label behind an interned index (for route selections)."""
        return self._intern.node_at(index)

    def _bunch_row(self, level: int, source_index: int) -> Dict[int, float]:
        row_index = level * self._num_nodes + source_index
        if not self._bunch_table.has_row(row_index):
            # Same KeyError contract as InternedBunchLevel.__getitem__.
            node = self._intern.node_at(source_index)
            raise KeyError(
                f"bunch row for node {node!r} (level {level}) is not "
                f"present in this artifact slice; sub-artifacts only hold "
                f"rows for their own shard's sources")
        return self._bunch_table.row_map(row_index)

    def select_batch(self, pairs: Sequence[Tuple[Hashable, Hashable]]
                     ) -> List[Optional[Tuple[int, Optional[int], float]]]:
        """Level selections ``(level, pivot_index, estimate)`` per pair.

        Mirrors ``CompactRoutingHierarchy._select_level`` exactly: the
        minimal level whose target pivot lands in the source's bunch, with
        ``(k, None, inf)`` when no level hits.  Pairs whose source equals
        their target return ``None`` — the query paths short-circuit
        equality before level selection, so selection is undefined there.
        """
        pairs = list(pairs)
        intern = self._intern
        source_ids = intern.indices_of(s for s, _ in pairs)
        target_ids = intern.indices_of(t for _, t in pairs)

        # Distinct targets resolve their pivot rows once, as one packed block.
        slot_of: Dict[int, int] = {}
        distinct_targets: List[int] = []
        for t in target_ids:
            if t not in slot_of:
                slot_of[t] = len(distinct_targets)
                distinct_targets.append(t)
        pivots, pivot_dists = self._pivot_table.rows_batch(distinct_targets)
        stride = self._k - 1

        groups: Dict[int, List[int]] = {}
        for position, s in enumerate(source_ids):
            groups.setdefault(s, []).append(position)

        k = self._k
        results: List[Optional[Tuple[int, Optional[int], float]]] = \
            [None] * len(pairs)
        decoded = 0
        no_hit = (k, None, float("inf"))
        for s in sorted(groups):
            with self.metrics.span("kernel_group_decode"):
                bunch_rows: List[Optional[Dict[int, float]]] = [None] * k
                for position in groups[s]:
                    t = target_ids[position]
                    if s == t:
                        continue       # equality sentinel: stays None
                    base = slot_of[t] * stride
                    selection = no_hit
                    for level in range(k):
                        if level == 0:
                            # level-0 pivot is the target itself
                            pivot, tail = t, 0.0
                        else:
                            pivot = pivots[base + level - 1]
                            if pivot < 0:      # NO_PIVOT
                                continue
                            tail = pivot_dists[base + level - 1]
                        row = bunch_rows[level]
                        if row is None:
                            row = self._bunch_row(level, s)
                            bunch_rows[level] = row
                            decoded += 1
                        estimate = row.get(pivot)
                        if estimate is not None:
                            selection = (level, pivot, estimate + tail)
                            break
                    results[position] = selection
        self.stats["batches"] += 1
        self.stats["pairs"] += len(pairs)
        self.stats["groups"] += len(groups)
        self.stats["bunch_rows_decoded"] += decoded
        return results

    def distance_batch(self, pairs: Sequence[Tuple[Hashable, Hashable]]
                       ) -> List[float]:
        """Distance estimates for ``pairs``, list-for-list identical to
        the per-pair dict path (equal pairs are 0.0 by definition)."""
        return [0.0 if selection is None else selection[2]
                for selection in self.select_batch(pairs)]
