"""Graph spanners: Baswana–Sen and the greedy reference construction.

Theorem 4.5 makes the long-range part of the routing scheme compact by
broadcasting not the whole skeleton graph but a ``(2k-1)``-spanner of it,
constructed by simulating the Baswana–Sen algorithm [3] on the skeleton
(as in the prior work [15]).  A ``(2k-1)``-spanner is a subgraph in which
every distance grows by a factor of at most ``2k - 1``; Baswana–Sen produces
one with ``O(k n^{1+1/k})`` edges in expectation.

This module implements

* :func:`baswana_sen_spanner` — the randomized clustering construction
  (the algorithm the paper simulates), and
* :func:`greedy_spanner` — the deterministic greedy ``(2k-1)``-spanner, used
  as a reference in tests (its stretch guarantee is immediate).

plus :func:`verify_spanner` which certifies the stretch of a candidate
spanner against the source graph.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List, Optional, Set, Tuple

from ..graphs.distances import dijkstra
from ..graphs.weighted_graph import WeightedGraph

__all__ = ["baswana_sen_spanner", "greedy_spanner", "verify_spanner", "spanner_stretch"]


def greedy_spanner(graph: WeightedGraph, k: int) -> WeightedGraph:
    """The greedy ``(2k-1)``-spanner (Althöfer et al.).

    Process edges by non-decreasing weight; keep an edge only if the current
    spanner distance between its endpoints exceeds ``(2k-1)`` times its
    weight.  The result is a ``(2k-1)``-spanner with ``O(n^{1+1/k})`` edges.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    spanner = WeightedGraph()
    for node in graph.nodes():
        spanner.add_node(node)
    stretch = 2 * k - 1
    for u, v, w in sorted(graph.edges(), key=lambda e: (e[2], repr(e[0]), repr(e[1]))):
        dist = _bounded_distance(spanner, u, v, stretch * w)
        if dist > stretch * w:
            spanner.add_edge(u, v, w)
    return spanner


def _bounded_distance(graph: WeightedGraph, source: Hashable, target: Hashable,
                      bound: float) -> float:
    """Dijkstra pruned at ``bound``; returns ``inf`` if target beyond the bound."""
    import heapq

    dist = {source: 0.0}
    heap: List[Tuple[float, Hashable]] = [(0.0, source)]
    settled: Set[Hashable] = set()
    while heap:
        d, u = heapq.heappop(heap)
        if u == target:
            return d
        if u in settled or d > bound:
            continue
        settled.add(u)
        for v, w in graph.neighbor_weights(u).items():
            nd = d + w
            if nd <= bound and nd < dist.get(v, float("inf")):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist.get(target, float("inf"))


def baswana_sen_spanner(graph: WeightedGraph, k: int,
                        rng: Optional[random.Random] = None) -> WeightedGraph:
    """The Baswana–Sen randomized ``(2k-1)``-spanner.

    The construction runs ``k - 1`` clustering phases followed by a
    vertex–cluster joining phase.  In each phase a fraction ``n^{-1/k}`` of
    the clusters survives; a node adjacent to a surviving cluster joins it
    through its lightest connecting edge, while a node with no surviving
    neighbouring cluster adds its lightest edge to *every* adjacent cluster
    and retires.  The final phase connects every remaining node to each
    adjacent surviving cluster with one lightest edge.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    rng = rng if rng is not None else random.Random(0)
    n = graph.num_nodes
    spanner = WeightedGraph()
    for node in graph.nodes():
        spanner.add_node(node)
    if k == 1:
        # A 1-spanner is the graph itself.
        for u, v, w in graph.edges():
            spanner.add_edge(u, v, w)
        return spanner

    sample_prob = n ** (-1.0 / k) if n > 1 else 1.0

    # cluster[v]: centre of the cluster containing v (None once v retired).
    cluster: Dict[Hashable, Optional[Hashable]] = {v: v for v in graph.nodes()}
    # Working edge set: edges not yet discarded, stored per node.
    alive_edges: Dict[Hashable, Dict[Hashable, int]] = {
        v: dict(graph.neighbor_weights(v)) for v in graph.nodes()
    }

    def discard_edge(u: Hashable, v: Hashable) -> None:
        alive_edges[u].pop(v, None)
        alive_edges[v].pop(u, None)

    def lightest_edge_to(node: Hashable, centres: Set[Hashable]
                         ) -> Dict[Hashable, Tuple[int, Hashable]]:
        """Per adjacent cluster centre, the lightest alive edge from ``node``."""
        best: Dict[Hashable, Tuple[int, Hashable]] = {}
        for nbr, w in alive_edges[node].items():
            centre = cluster.get(nbr)
            if centre is None or centre not in centres:
                continue
            if centre not in best or (w, repr(nbr)) < (best[centre][0], repr(best[centre][1])):
                best[centre] = (w, nbr)
        return best

    current_centres: Set[Hashable] = set(graph.nodes())
    for _phase in range(k - 1):
        sampled_centres = {c for c in current_centres if rng.random() < sample_prob}
        new_cluster: Dict[Hashable, Optional[Hashable]] = {}
        for v in graph.nodes():
            centre = cluster.get(v)
            if centre is None:
                new_cluster[v] = None
                continue
            if centre in sampled_centres:
                # v's cluster survives; v stays.
                new_cluster[v] = centre
                continue
            adjacent = lightest_edge_to(v, current_centres)
            sampled_adjacent = {c: e for c, e in adjacent.items() if c in sampled_centres}
            if not sampled_adjacent:
                # No sampled neighbouring cluster: add lightest edge to every
                # adjacent cluster and retire v from clustering.
                for c, (w, nbr) in sorted(adjacent.items(), key=lambda item: repr(item[0])):
                    spanner.add_edge(v, nbr, w)
                    discard_edge(v, nbr)
                new_cluster[v] = None
                for nbr in list(alive_edges[v]):
                    if cluster.get(nbr) is not None and cluster[nbr] in adjacent:
                        discard_edge(v, nbr)
            else:
                # Join the sampled cluster with the lightest connecting edge.
                best_centre, (best_w, best_nbr) = min(
                    sampled_adjacent.items(),
                    key=lambda item: (item[1][0], repr(item[1][1])))
                spanner.add_edge(v, best_nbr, best_w)
                new_cluster[v] = best_centre
                # Add one lightest edge to every adjacent cluster with a
                # strictly lighter connection, then discard edges to clusters
                # that are now "covered".
                for c, (w, nbr) in sorted(adjacent.items(), key=lambda item: repr(item[0])):
                    if c == best_centre:
                        continue
                    if (w, repr(nbr)) < (best_w, repr(best_nbr)):
                        spanner.add_edge(v, nbr, w)
                        for other in list(alive_edges[v]):
                            if cluster.get(other) == c:
                                discard_edge(v, other)
                # Discard intra-cluster edges of the joined cluster.
                for other in list(alive_edges[v]):
                    if cluster.get(other) == best_centre:
                        discard_edge(v, other)
        cluster = new_cluster
        current_centres = {c for c in sampled_centres
                           if any(centre == c for centre in cluster.values())}

    # Final phase: every node adds one lightest edge to each adjacent cluster.
    for v in graph.nodes():
        adjacent = lightest_edge_to(v, current_centres)
        for c, (w, nbr) in sorted(adjacent.items(), key=lambda item: repr(item[0])):
            if cluster.get(v) == c:
                continue
            spanner.add_edge(v, nbr, w)
    return spanner


def spanner_stretch(graph: WeightedGraph, spanner: WeightedGraph) -> float:
    """The maximum ratio of spanner distance to original distance over all pairs."""
    worst = 1.0
    for u in graph.nodes():
        orig, _ = dijkstra(graph, u)
        span, _ = dijkstra(spanner, u)
        for v, d in orig.items():
            if v == u or d == 0:
                continue
            sd = span.get(v, float("inf"))
            worst = max(worst, sd / d)
    return worst


def verify_spanner(graph: WeightedGraph, spanner: WeightedGraph, k: int) -> bool:
    """Check the defining property of a ``(2k-1)``-spanner."""
    return spanner_stretch(graph, spanner) <= 2 * k - 1 + 1e-9
