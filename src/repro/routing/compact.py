"""Top-level compact-routing API — Corollary 4.14.

Corollary 4.14 combines the construction variants of Section 4.3: given
``k``, it picks the truncation level ``l0`` (as a function of the hop
diameter ``D``) so that tables of ``O~(n^{1/k})`` words and labels of
``O(k log n)`` bits with stretch ``4k - 3 + o(1)`` are computed in
``O~(min{(Dn)^{1/2} n^{1/k}, n^{2/3+2/(3k)}} + D)`` rounds.

:func:`build_compact_routing` exposes exactly this choice: ``mode="auto"``
computes ``D`` and picks ``l0`` per the proof of Corollary 4.14, while the
explicit modes give direct access to Theorem 4.8 (``"spd"``) and
Theorem 4.13 (``"truncated"``) and to the plain Lemma 4.7 construction
(``"budget"``).
"""

from __future__ import annotations

import math
from typing import Optional

from ..graphs.distances import hop_diameter
from ..graphs.weighted_graph import WeightedGraph
from .tz_hierarchy import CompactRoutingHierarchy

__all__ = ["choose_truncation_level", "build_compact_routing"]


def choose_truncation_level(n: int, k: int, diameter: int) -> int:
    """The ``l0`` of Corollary 4.14: the integer closest to
    ``k (log D / log n + 1) / 2``, clamped to ``[k/2 + 1, k - 1]``."""
    if n < 2 or k < 2:
        return max(1, k - 1)
    raw = k * (math.log(max(2, diameter)) / math.log(n) + 1.0) / 2.0
    l0 = int(round(raw))
    lower = int(math.floor(k / 2.0)) + 1
    upper = k - 1
    return max(min(l0, upper), min(lower, upper))


def build_compact_routing(graph: WeightedGraph, k: int, epsilon: float = 0.25,
                          seed: int = 0, mode: str = "auto",
                          l0: Optional[int] = None, budget_constant: float = 2.0,
                          engine: str = "batched", build_workers: int = 1,
                          registry=None) -> CompactRoutingHierarchy:
    """Build compact routing tables per Corollary 4.14.

    ``mode="auto"`` measures the hop diameter ``D`` and uses the truncated
    construction with the corollary's ``l0`` when ``k >= 3`` (for ``k = 2``
    the corollary's minimum is attained by the non-truncated construction).

    ``build_workers > 1`` fans the independent per-level PDE instances
    across a process pool (:mod:`repro.routing.parallel_build`); the result
    is identical to the sequential build.  ``registry`` receives build-stage
    telemetry spans when given.
    """
    if mode == "auto":
        if k >= 3:
            diameter = hop_diameter(graph)
            level = l0 if l0 is not None else choose_truncation_level(
                graph.num_nodes, k, diameter)
            hierarchy = CompactRoutingHierarchy.build(
                graph, k, epsilon=epsilon, seed=seed, mode="truncated", l0=level,
                budget_constant=budget_constant, engine=engine,
                build_workers=build_workers, registry=registry)
            hierarchy.build_params.update(requested_mode="auto",
                                          auto_hop_diameter=diameter)
        else:
            hierarchy = CompactRoutingHierarchy.build(
                graph, k, epsilon=epsilon, seed=seed, mode="budget",
                budget_constant=budget_constant, engine=engine,
                build_workers=build_workers, registry=registry)
            hierarchy.build_params["requested_mode"] = "auto"
        return hierarchy
    return CompactRoutingHierarchy.build(
        graph, k, epsilon=epsilon, seed=seed, mode=mode, l0=l0,
        budget_constant=budget_constant, engine=engine,
        build_workers=build_workers, registry=registry)
