"""Approximate Thorup–Zwick routing hierarchy — Theorems 4.8 and 4.13.

The compact-routing results of Section 4.3 build the Thorup–Zwick hierarchy
with ``(1+eps)``-approximate distances obtained from partial distance
estimation, achieving stretch ``4k - 3 + o(1)`` with tables of ``O~(n^{1/k})``
words and labels of ``O(k log n)`` bits.

Hierarchy (Section 4.3):

1. Every node draws a level from a geometric distribution: level at least
   ``l`` with probability ``n^{-l/k}``; ``S_l`` is the set of nodes of level
   at least ``l`` (``S_0 = V``).
2. Per level ``l``, a PDE instance with source set ``S_l`` gives every node
   approximate distances to its closest ``~n^{1/k} log n`` level-``l`` nodes
   (Lemma 4.7); from it each node derives its pivot ``s'_{l+1}(v)`` (closest
   ``S_{l+1}`` node) and its bunch ``S'_l(v)`` (level-``l`` nodes closer than
   the pivot).
3. Routing from ``v`` to ``w`` uses the minimal level ``l`` with
   ``s'_l(w) in S'_l(v)``: climb the tree of ``s'_l(w)`` from ``v`` and
   descend to ``w`` using ``w``'s tree-routing label (Lemma 4.6 bounds the
   stretch by ``4k - 3 + o(1)``).

Three construction modes map to the paper's variants:

* ``mode="budget"`` — Lemma 4.7 budgets ``h_{l+1} = c n^{(l+1)/k} log n``.
* ``mode="spd"`` — Theorem 4.8: every level uses ``h = SPD`` (requires the
  shortest-path diameter, or an upper bound on it, as input).
* ``mode="truncated"`` — Theorem 4.13: levels ``>= l0`` are built on the
  skeleton graph ``G~(l0)`` (Definition 4.9 / Corollary 4.11), with the
  skeleton-level computation "simulated" globally via a BFS tree; rounds are
  accounted per Lemma 4.12.
"""

from __future__ import annotations

import math
import random
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set, Tuple

from ..congest.bfs import build_bfs_tree, pipelined_broadcast_rounds
from ..congest.metrics import CongestMetrics, merge_metrics
from ..core.pde import PARALLEL_PDE_ENGINES, PDEResult, solve_pde
from ..graphs.distances import dijkstra, path_weight, shortest_path_diameter
from ..graphs.weighted_graph import WeightedGraph
from ..obs.metrics import NULL_REGISTRY
from .cluster_trees import TreeFamily, build_destination_trees
from .skeleton import skeleton_graph_from_pde
from .tables import Label, RouteTrace, RoutingTable
from .tree_routing import TreeRouting
from .tz_exact import sample_levels
from .stretch import evaluate_routing

__all__ = ["CompactRoutingHierarchy", "HierarchyBuildReport", "LazyLevelData",
           "PIVOT_ROW_CACHE_CAP"]

#: Sentinel distinguishing "absent from the bunch" from any real estimate.
_ABSENT = object()

#: Default bound on the per-hierarchy pivot-row cache.  On mmap backends a
#: pivot row is one contiguous record-slice read, so caching buys little and
#: an unbounded dict just mirrors the pivot table into Python objects under
#: uniform workloads; the bound keeps the win for skewed streams without
#: the footprint.
PIVOT_ROW_CACHE_CAP = 65536


class _PivotRowCache:
    """Bounded LRU for resolved pivot rows, with hit/eviction counters.

    ``capacity == 0`` disables caching entirely (every ``get`` misses,
    ``put`` is a no-op) — benchmarks use that to measure cold-query cost
    without monkey-patching.  Counters are cumulative across
    :meth:`clear` so serving stats see lifetime totals.
    """

    __slots__ = ("capacity", "hits", "misses", "evictions", "_entries")

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[Hashable, Tuple[Optional[Hashable], ...]]" = \
            OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable):
        row = self._entries.get(key)
        if row is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(key)
        return row

    def put(self, key: Hashable, row) -> None:
        if self.capacity == 0:
            return
        self._entries[key] = row
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def resize(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        while len(self._entries) > capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    def info(self) -> Dict[str, int]:
        return {"capacity": self.capacity, "size": len(self._entries),
                "hits": self.hits, "misses": self.misses,
                "evictions": self.evictions}


@dataclass
class HierarchyBuildReport:
    """Construction statistics for the Theorem 4.8 / 4.13 accounting."""

    n: int
    k: int
    epsilon: float
    mode: str
    l0: Optional[int]
    level_sizes: List[int]
    rounds: int
    max_bunch_size: int
    avg_bunch_size: float
    max_table_words: int
    avg_table_words: float
    max_label_bits: int
    fallback_edges: int
    bunch_overflows: int

    def as_dict(self) -> Dict[str, object]:
        return dict(self.__dict__)


@dataclass
class _LevelData:
    """Everything derived from the level-``l`` estimation."""

    sources: Set[Hashable]
    h: int
    sigma: int
    estimates: Dict[Hashable, Dict[Hashable, float]] = field(default_factory=dict)
    bunches: Dict[Hashable, Dict[Hashable, float]] = field(default_factory=dict)
    next_pivot: Dict[Hashable, Optional[Hashable]] = field(default_factory=dict)
    next_pivot_dist: Dict[Hashable, float] = field(default_factory=dict)
    trees: Optional[TreeFamily] = None
    skeleton_level: bool = False
    overflow_count: int = 0


class LazyLevelData:
    """Duck-typed :class:`_LevelData` backed by artifact-v2 sections.

    The query hot path only ever touches ``bunches`` (an mmap-backed
    mapping view), ``trees`` (needed for route queries, unpickled from its
    own section on first access) and the scalar flags.  The remaining
    fields — ``sources`` / ``estimates`` / ``next_pivot`` /
    ``next_pivot_dist`` — are construction-time state that only
    ``export_state`` and the build reports read; they materialise from the
    level's aux section on first access (and per-shard sub-artifacts drop
    that section entirely, so touching them there raises).
    """

    __slots__ = ("bunches", "h", "sigma", "skeleton_level", "overflow_count",
                 "_aux_loader", "_aux", "_trees_loader", "_trees",
                 "_trees_loaded")

    def __init__(self, bunches, h: int, sigma: int, skeleton_level: bool,
                 overflow_count: int, aux_loader, trees_loader) -> None:
        self.bunches = bunches
        self.h = h
        self.sigma = sigma
        self.skeleton_level = skeleton_level
        self.overflow_count = overflow_count
        self._aux_loader = aux_loader
        self._aux = None
        self._trees_loader = trees_loader
        self._trees = None
        self._trees_loaded = False

    def _load_aux(self) -> Dict[str, object]:
        if self._aux is None:
            self._aux = self._aux_loader()
        return self._aux

    @property
    def sources(self) -> Set[Hashable]:
        return self._load_aux()["sources"]

    @property
    def estimates(self) -> Dict[Hashable, Dict[Hashable, float]]:
        return self._load_aux()["estimates"]

    @property
    def next_pivot(self) -> Dict[Hashable, Optional[Hashable]]:
        return self._load_aux()["next_pivot"]

    @property
    def next_pivot_dist(self) -> Dict[Hashable, float]:
        return self._load_aux()["next_pivot_dist"]

    @property
    def trees(self) -> Optional[TreeFamily]:
        if not self._trees_loaded:
            self._trees = self._trees_loader()
            self._trees_loaded = True
        return self._trees


class CompactRoutingHierarchy:
    """Compact routing tables with stretch ``4k - 3 + o(1)`` (Section 4.3)."""

    def __init__(self, graph: WeightedGraph, k: int, epsilon: float, mode: str,
                 l0: Optional[int], levels: Dict[Hashable, int],
                 level_sets: List[Set[Hashable]], level_data: List[_LevelData],
                 pivots: Dict[int, Dict[Hashable, Hashable]],
                 pivot_dists: Dict[int, Dict[Hashable, float]],
                 pde_skel: Optional[PDEResult], skeleton_graph: Optional[WeightedGraph],
                 attach_trees: Optional[TreeFamily], skeleton_trees: Dict[int, TreeFamily],
                 metrics: CongestMetrics) -> None:
        self.graph = graph
        self.k = k
        self.epsilon = epsilon
        self.mode = mode
        self.l0 = l0
        self.levels = levels
        self.level_sets = level_sets
        self.level_data = level_data
        self.pivots = pivots
        self.pivot_dists = pivot_dists
        self.pde_skel = pde_skel
        self.skeleton_graph = skeleton_graph
        self.attach_trees = attach_trees
        self.skeleton_trees = skeleton_trees
        self.metrics = metrics
        self.build_params: Dict[str, object] = {}
        self._exact_parent_cache: Dict[Hashable, Dict[Hashable, Optional[Hashable]]] = {}
        self._pivot_row_cache = _PivotRowCache(PIVOT_ROW_CACHE_CAP)
        self._route_fallbacks = 0
        #: Optional zero-copy pivot-row provider (set by the artifact-v2
        #: loader to a :class:`~repro.routing.tables.PivotRowBackend`); when
        #: present, :meth:`pivot_row` reads one contiguous record slice from
        #: the mmapped pivot table instead of k per-level dict lookups.
        self._pivot_backend = None
        #: Optional batch-query kernel (set by the artifact-v2 loader to a
        #: :class:`~repro.routing.tables.ColumnarQueryKernel`); when present
        #: the batch APIs can answer whole groups of pairs straight from the
        #: mapped record slices instead of per-pair dict probes.
        self._columnar_kernel = None
        #: Telemetry registry for batch-query spans (``metrics`` is taken by
        #: the paper-side :class:`CongestMetrics` accounting).  The no-op
        #: singleton by default; the serving layer swaps in a live registry
        #: via :meth:`set_metrics_registry` when telemetry is enabled.
        self._obs_metrics = NULL_REGISTRY

    # ==================================================================
    # construction
    # ==================================================================
    @classmethod
    def build(cls, graph: WeightedGraph, k: int, epsilon: float = 0.25,
              seed: int = 0, mode: str = "budget", l0: Optional[int] = None,
              budget_constant: float = 2.0, spd: Optional[int] = None,
              engine: str = "batched", build_workers: int = 1,
              registry=None) -> "CompactRoutingHierarchy":
        """Build the approximate hierarchy.

        Parameters
        ----------
        mode:
            ``"budget"`` (Lemma 4.7), ``"spd"`` (Theorem 4.8) or
            ``"truncated"`` (Theorem 4.13, requires ``l0``).
        l0:
            Truncation level for ``mode="truncated"``; per Theorem 4.13 it
            should satisfy ``k/2 + 1 <= l0 <= k``.
        spd:
            Optional upper bound on the shortest-path diameter for
            ``mode="spd"`` (computed exactly when omitted).
        engine:
            Per-level PDE detection engine (forwarded to
            :func:`repro.core.pde.solve_pde`).  Skeleton-level instances are
            globally simulated per Lemma 4.12, so ``"simulate"`` falls back
            to ``"logical"`` there (the rounds are accounted analytically).
        build_workers:
            Processes to fan the independent per-level (and per-rounding-
            level) detection instances across
            (:mod:`repro.routing.parallel_build`).  ``1`` (default) builds
            sequentially in-process; ``> 1`` requires a pure engine
            (``"logical"``/``"batched"``).  The built hierarchy is
            *identical* either way — down to the artifact checksum.
        registry:
            Optional telemetry registry for build-stage spans
            (``level_solve``, ``build_scatter``, ``build_merge``).
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        if mode not in ("budget", "spd", "truncated"):
            raise ValueError(f"unknown mode {mode!r}")
        if build_workers < 1:
            raise ValueError("build_workers must be >= 1")
        if build_workers > 1 and engine not in PARALLEL_PDE_ENGINES:
            raise ValueError(
                f"engine {engine!r} does not support parallel builds; "
                f"build_workers > 1 requires one of "
                f"{sorted(PARALLEL_PDE_ENGINES)}")
        obs = registry if registry is not None else NULL_REGISTRY
        if mode == "truncated":
            if k < 2:
                raise ValueError("truncated mode needs k >= 2")
            if l0 is None:
                l0 = max(1, min(k - 1, k // 2 + 1))
            if not 1 <= l0 <= k - 1:
                raise ValueError("l0 must satisfy 1 <= l0 <= k-1")
        else:
            l0 = None

        n = graph.num_nodes
        rng = random.Random(seed)
        levels = sample_levels(graph.nodes(), k, rng)
        level_sets = [
            {v for v, lvl in levels.items() if lvl >= l} for l in range(k)
        ]

        log_n = max(1.0, math.log(max(2, n)))
        spd_value = None
        if mode == "spd":
            spd_value = spd if spd is not None else shortest_path_diameter(graph)

        def level_budgets(l: int) -> Tuple[int, int]:
            sigma = max(1, min(len(level_sets[l]),
                               int(math.ceil(budget_constant * n ** (1.0 / k) * log_n))))
            if l == k - 1:
                return n, max(1, len(level_sets[l]))
            if mode == "spd":
                return max(1, int(spd_value)), sigma
            h = max(1, min(n, int(math.ceil(
                budget_constant * n ** ((l + 1) / k) * log_n))))
            return h, sigma

        level_data: List[_LevelData] = []
        level_metrics: List[CongestMetrics] = []
        pde_results: List[Optional[PDEResult]] = []

        # --- levels computed directly on G --------------------------------
        # In truncated mode the level-l0 skeleton estimation also runs on G
        # and is independent of the direct levels, so the parallel path
        # scatters it in the same batch (phase A); skeleton levels depend on
        # its output and form a second batch (phase B) below.
        direct_levels = list(range(k) if mode != "truncated" else range(l0))
        direct_budgets = {l: level_budgets(l) for l in direct_levels}
        skel_budget: Optional[Tuple[int, int]] = None
        if mode == "truncated":
            h_l0 = max(1, min(n, int(math.ceil(
                budget_constant * n ** (l0 / k) * log_n))))
            skel_budget = (h_l0, max(1, len(level_sets[l0])))

        pde_skel: Optional[PDEResult] = None
        if build_workers > 1:
            from .parallel_build import PDEInstance, solve_pde_instances

            instances = [
                PDEInstance(token="graph", sources=tuple(level_sets[l]),
                            h=direct_budgets[l][0], sigma=direct_budgets[l][1],
                            epsilon=epsilon, engine=engine)
                for l in direct_levels
            ]
            if skel_budget is not None:
                instances.append(
                    PDEInstance(token="graph", sources=tuple(level_sets[l0]),
                                h=skel_budget[0], sigma=skel_budget[1],
                                epsilon=epsilon, engine=engine))
            solved = solve_pde_instances(instances, {"graph": graph},
                                         build_workers=build_workers,
                                         registry=obs)
            direct_pdes = solved[:len(direct_levels)]
            if skel_budget is not None:
                pde_skel = solved[-1]
        else:
            direct_pdes = [
                solve_pde(graph, level_sets[l], h=direct_budgets[l][0],
                          sigma=direct_budgets[l][1], epsilon=epsilon,
                          engine=engine, store_levels=False, registry=obs)
                for l in direct_levels
            ]
            if skel_budget is not None:
                pde_skel = solve_pde(graph, level_sets[l0], h=skel_budget[0],
                                     sigma=skel_budget[1], epsilon=epsilon,
                                     engine=engine, store_levels=False,
                                     registry=obs)

        for l, pde in zip(direct_levels, direct_pdes):
            h, sigma = direct_budgets[l]
            pde_results.append(pde)
            level_metrics.append(pde.metrics)
            level_data.append(_LevelData(sources=level_sets[l], h=h, sigma=sigma,
                                         estimates=pde.estimates))

        skeleton_graph: Optional[WeightedGraph] = None
        attach_trees: Optional[TreeFamily] = None
        skeleton_trees: Dict[int, TreeFamily] = {}

        # --- truncated levels computed on the skeleton graph ---------------
        if mode == "truncated":
            level_metrics.append(pde_skel.metrics)
            skeleton_graph = skeleton_graph_from_pde(pde_skel, level_sets[l0])
            attach_trees = build_destination_trees(graph, pde_skel)

            bfs_height = build_bfs_tree(graph, graph.nodes()[0]).height
            # The skeleton computation is simulated globally (Lemma 4.12),
            # so the faithful CONGEST engine does not apply here.
            skeleton_engine = "logical" if engine == "simulate" else engine
            skel_levels: List[Tuple[int, int, int, bool]] = []
            for l in range(l0, k):
                sigma = max(1, min(len(level_sets[l]),
                                   int(math.ceil(budget_constant * n ** (1.0 / k) * log_n))))
                if l == k - 1:
                    sigma = max(1, len(level_sets[l]))
                h_skel = max(1, min(max(1, skeleton_graph.num_nodes), int(math.ceil(
                    budget_constant * n ** ((l + 1 - l0) / k) * log_n))))
                solvable = (skeleton_graph.num_edges > 0
                            and len(level_sets[l]) > 0)
                skel_levels.append((l, h_skel, sigma, solvable))
            to_solve = [(l, h_skel, sigma)
                        for l, h_skel, sigma, ok in skel_levels if ok]
            if build_workers > 1 and to_solve:
                from .parallel_build import PDEInstance, solve_pde_instances

                sk_instances = [
                    PDEInstance(token="skeleton",
                                sources=tuple(level_sets[l]), h=h_skel,
                                sigma=sigma, epsilon=epsilon,
                                engine=skeleton_engine)
                    for l, h_skel, sigma in to_solve
                ]
                sk_solved = dict(zip(
                    (l for l, _, _ in to_solve),
                    solve_pde_instances(sk_instances,
                                        {"skeleton": skeleton_graph},
                                        build_workers=build_workers,
                                        registry=obs)))
            else:
                sk_solved = {
                    l: solve_pde(skeleton_graph, level_sets[l], h=h_skel,
                                 sigma=sigma, epsilon=epsilon,
                                 engine=skeleton_engine, store_levels=False,
                                 registry=obs)
                    for l, h_skel, sigma in to_solve
                }

            for l, h_skel, sigma, solvable in skel_levels:
                if not solvable:
                    pde_results.append(None)
                    level_data.append(_LevelData(sources=level_sets[l], h=h_skel,
                                                 sigma=sigma, skeleton_level=True))
                    continue
                pde_sk = sk_solved[l]
                pde_results.append(pde_sk)
                skeleton_trees[l] = build_destination_trees(skeleton_graph, pde_sk)
                # Lemma 4.12 round accounting for the global simulation of
                # the skeleton computation over a BFS tree.
                broadcasts = skeleton_graph.num_nodes * sigma * sigma
                sim_rounds = pipelined_broadcast_rounds(broadcasts, bfs_height) \
                    + (h_skel + sigma) * max(1, bfs_height)
                level_metrics.append(CongestMetrics(rounds=sim_rounds, measured=False))

                # Combined estimates wd'(v, s) = min_t wd'_skel(v, t) + wd'_sk(t, s)
                combined: Dict[Hashable, Dict[Hashable, float]] = {}
                for v in graph.nodes():
                    row: Dict[Hashable, float] = {}
                    anchors = dict(pde_skel.estimates.get(v, {}))
                    if v in level_sets[l0]:
                        anchors[v] = 0.0
                    for t, dt in anchors.items():
                        for s, ds in pde_sk.estimates.get(t, {}).items():
                            total = dt + ds
                            if total < row.get(s, float("inf")):
                                row[s] = total
                    combined[v] = row
                level_data.append(_LevelData(sources=level_sets[l], h=h_skel,
                                             sigma=sigma, estimates=combined,
                                             skeleton_level=True))

        # --- bunches, pivots, trees ----------------------------------------
        pivots: Dict[int, Dict[Hashable, Hashable]] = {}
        pivot_dists: Dict[int, Dict[Hashable, float]] = {}

        for l in range(k):
            data = level_data[l]
            upper = level_sets[l + 1] if l + 1 < k else None
            for v in graph.nodes():
                row = data.estimates.get(v, {})
                # Closest next-level node according to this level's estimates.
                if upper is not None:
                    best = None
                    for s, est in row.items():
                        if s in upper and (best is None or (est, repr(s)) < best[:2]):
                            best = (est, repr(s), s)
                    if best is not None:
                        data.next_pivot[v] = best[2]
                        data.next_pivot_dist[v] = best[0]
                    else:
                        data.next_pivot[v] = None
                        data.next_pivot_dist[v] = float("inf")
                        data.overflow_count += 1
                else:
                    data.next_pivot[v] = None
                    data.next_pivot_dist[v] = float("inf")
                # Bunch: level-l nodes strictly closer than the next pivot.
                cutoff = (data.next_pivot_dist[v], repr(data.next_pivot[v]))
                bunch = {}
                for s, est in row.items():
                    if s not in data.sources:
                        continue
                    if upper is None or (est, repr(s)) < cutoff:
                        bunch[s] = est
                data.bunches[v] = bunch

        # Pivots s'_l(v) for l >= 1 come from the level-(l-1) estimation.
        for l in range(1, k):
            pivots[l] = {}
            pivot_dists[l] = {}
            prev = level_data[l - 1]
            cur = level_data[l]
            for v in graph.nodes():
                source = prev.next_pivot.get(v)
                dist = prev.next_pivot_dist.get(v, float("inf"))
                if source is None:
                    # Fall back to the closest level-l node seen at level l.
                    row = cur.estimates.get(v, {})
                    best = None
                    for s, est in row.items():
                        if s in cur.sources and (best is None or (est, repr(s)) < best[:2]):
                            best = (est, repr(s), s)
                    if best is not None:
                        source, dist = best[2], best[0]
                if source is None and cur.sources:
                    source = min(cur.sources, key=repr)
                    dist = float("inf")
                pivots[l][v] = source
                pivot_dists[l][v] = 0.0 if v == source else dist

        # Destination trees for directly-computed levels.
        for l in direct_levels:
            data = level_data[l]
            pde = pde_results[l]
            members: Dict[Hashable, Set[Hashable]] = {s: set() for s in data.sources}
            for v in graph.nodes():
                for s in data.bunches[v]:
                    members[s].add(v)
                if l >= 1 and pivots[l].get(v) in members:
                    members[pivots[l][v]].add(v)
            data.trees = build_destination_trees(graph, pde, destinations=sorted(
                data.sources, key=repr), members_of=members)

        metrics = merge_metrics(*level_metrics, sequential=True)
        hierarchy = cls(graph=graph, k=k, epsilon=epsilon, mode=mode, l0=l0,
                        levels=levels, level_sets=level_sets, level_data=level_data,
                        pivots=pivots, pivot_dists=pivot_dists, pde_skel=pde_skel,
                        skeleton_graph=skeleton_graph, attach_trees=attach_trees,
                        skeleton_trees=skeleton_trees, metrics=metrics)
        hierarchy.build_params = {
            "k": k, "epsilon": epsilon, "seed": seed, "mode": mode, "l0": l0,
            "budget_constant": budget_constant, "spd": spd, "engine": engine,
        }
        return hierarchy

    # ==================================================================
    # labels and tables
    # ==================================================================
    def label_of(self, node: Hashable) -> Label:
        """Label of ``O(k log n)`` bits: per level the pivot, its distance and
        the tree-routing label of ``node`` in that pivot's tree."""
        pivot_ids: List[Hashable] = []
        pivot_ds: List[float] = []
        tree_labels: List[int] = []
        for l in range(1, self.k):
            s = self.pivots[l][node]
            pivot_ids.append(s)
            pivot_ds.append(self.pivot_dists[l][node])
            data = self.level_data[l]
            label_value = 0
            if data.trees is not None:
                tree = data.trees.get(s)
                if tree is not None and tree.contains(node):
                    label_value = tree.label_of(node)
            tree_labels.append(label_value)
        return Label(owner=node, fields={
            "pivots": tuple(pivot_ids),
            "pivot_dists": tuple(pivot_ds),
            "tree_labels": tuple(tree_labels),
        })

    def table_of(self, node: Hashable) -> RoutingTable:
        table = RoutingTable(owner=node)
        bunch_entries = {}
        for l in range(self.k):
            for s, est in self.level_data[l].bunches[node].items():
                bunch_entries[(l, s)] = est
        table.extra["bunches"] = bunch_entries
        memberships = []
        for l in range(self.k):
            data = self.level_data[l]
            if data.trees is not None:
                memberships.extend((l, d) for d in data.trees.trees_containing(node))
        table.extra["tree_memberships"] = memberships
        if self.pde_skel is not None:
            table.extra["skeleton_list"] = {
                e.source: e.estimate for e in self.pde_skel.list_of(node)}
        return table

    def table_words(self, node: Hashable) -> int:
        return self.table_of(node).words()

    # ==================================================================
    # queries
    # ==================================================================
    def _target_pivot(self, target: Hashable, level: int) -> Hashable:
        return target if level == 0 else self.pivots[level][target]

    def pivot_row(self, target: Hashable) -> Tuple[Optional[Hashable], ...]:
        """The per-level pivots ``(s'_0(target), ..., s'_{k-1}(target))``.

        This is the label-derived part of every query against ``target``;
        it is cached so that query streams hitting the same destinations
        (the serving layer's batched APIs) pay the lookup once.  On an
        mmap-loaded hierarchy (artifact format v2) the row is one
        contiguous fixed-width record-slice read from the page cache —
        answers are identical either way.
        """
        row = self._pivot_row_cache.get(target)
        if row is None:
            if self._pivot_backend is not None:
                row = self._pivot_backend.pivot_row(target)
            else:
                row = tuple(self._target_pivot(target, l) for l in range(self.k))
            self._pivot_row_cache.put(target, row)
        return row

    def set_pivot_row_cache_cap(self, capacity: int) -> None:
        """Rebound the pivot-row LRU (``0`` disables it), trimming if needed."""
        self._pivot_row_cache.resize(capacity)

    def pivot_row_cache_info(self) -> Dict[str, int]:
        """Lifetime counters for the pivot-row LRU (capacity/size/hits/
        misses/evictions) — surfaced through serving stats."""
        return self._pivot_row_cache.info()

    def set_metrics_registry(self, registry) -> None:
        """Attach a telemetry registry for batch-query spans.

        Forwarded to the columnar kernel (per-group decode spans) when one
        is attached.  Pass :data:`~repro.obs.metrics.NULL_REGISTRY` to
        detach.  Called by the serving layer; harmless to leave at the
        default no-op registry.
        """
        self._obs_metrics = registry
        if self._columnar_kernel is not None:
            self._columnar_kernel.metrics = registry

    def _select_level(self, source: Hashable, target: Hashable
                      ) -> Tuple[int, Hashable, float]:
        """The minimal level ``l`` with ``s'_l(target)`` in ``source``'s bunch."""
        row = self.pivot_row(target)
        for l in range(self.k):
            pivot = row[l]
            if pivot is None:
                continue
            # One .get instead of a membership test plus a lookup: on an
            # mmap-loaded hierarchy each bunch access scans the source's
            # record row, so probing once per level halves the hot path.
            estimate = self.level_data[l].bunches[source].get(pivot, _ABSENT)
            if estimate is not _ABSENT:
                tail = 0.0 if l == 0 else self.pivot_dists[l][target]
                return l, pivot, estimate + tail
        return self.k, None, float("inf")

    def distance(self, source: Hashable, target: Hashable) -> float:
        """Distance estimate from ``source``'s table and ``target``'s label."""
        if source == target:
            return 0.0
        _, _, estimate = self._select_level(source, target)
        return estimate

    # -- batch queries ----------------------------------------------------
    def has_columnar_kernel(self) -> bool:
        """Whether this hierarchy is backed by v2 record tables with a
        columnar batch kernel attached (mmap-loaded format-2 artifacts)."""
        return self._columnar_kernel is not None

    def query_kernel(self, kernel: str = "auto"):
        """Resolve a kernel selector to the kernel object (or ``None``).

        ``"dict"`` always returns ``None`` (the per-pair path);
        ``"columnar"`` and ``"auto"`` return the attached columnar kernel
        when the backing store provides one, falling back to ``None`` for
        v1 / in-memory hierarchies whose levels have no record tables.
        """
        if kernel == "dict":
            return None
        if kernel in ("columnar", "auto"):
            return self._columnar_kernel
        raise ValueError(f"unknown query kernel {kernel!r} "
                         f"(expected dict/columnar/auto)")

    def distance_batch(self, pairs: List[Tuple[Hashable, Hashable]],
                       kernel: str = "auto") -> List[float]:
        """Distance estimates for many pairs, in input order.

        With a columnar kernel attached (mmap-loaded format-2 artifacts)
        the batch is answered straight from the record tables: labels are
        interned once, pairs are grouped by source, and each ``(level,
        source)`` bunch row is decoded at most once for the whole batch.
        Otherwise — v1 or in-memory hierarchies, or ``kernel="dict"`` —
        this is per-pair :meth:`distance` with label-lookup amortization
        in the shared :meth:`pivot_row` cache.  Answers are list-for-list
        identical between the two paths.
        """
        kern = self.query_kernel(kernel)
        obs = getattr(self, "_obs_metrics", NULL_REGISTRY)
        with obs.span("kernel_batch"):
            if kern is None:
                return [self.distance(s, t) for s, t in pairs]
            return kern.distance_batch(pairs)

    def route_batch(self, pairs: List[Tuple[Hashable, Hashable]],
                    kernel: str = "auto") -> List[RouteTrace]:
        """Route traces for many pairs, in input order.

        The columnar kernel only accelerates level selection (the
        pivot/bunch probes); path materialisation is shared with
        :meth:`route`, so traces are identical between kernels.
        """
        kern = self.query_kernel(kernel)
        obs = getattr(self, "_obs_metrics", NULL_REGISTRY)
        with obs.span("kernel_batch"):
            if kern is None:
                return [self.route(s, t) for s, t in pairs]
            traces: List[Optional[RouteTrace]] = [None] * len(pairs)
            selections = kern.select_batch(pairs)
            for position, (source, target) in enumerate(pairs):
                selection = selections[position]
                if selection is None:      # source == target
                    traces[position] = RouteTrace(
                        source=source, target=target, path=[source],
                        delivered=True, weight=0.0, estimate=0.0)
                    continue
                level, pivot_index, estimate = selection
                pivot = (None if pivot_index is None
                         else kern.node_label(pivot_index))
                traces[position] = self._route_selected(source, target,
                                                        level, pivot,
                                                        estimate)
            return traces

    def clear_runtime_caches(self) -> None:
        """Drop query-time caches (pivot rows, exact-path parents).

        The caches are pure accelerators — answers are identical with or
        without them.  Benchmarks call this to measure cold-query cost.
        """
        self._exact_parent_cache.clear()
        self._pivot_row_cache.clear()

    def route(self, source: Hashable, target: Hashable) -> RouteTrace:
        if source == target:
            return RouteTrace(source=source, target=target, path=[source],
                              delivered=True, weight=0.0, estimate=0.0)
        level, pivot, estimate = self._select_level(source, target)
        return self._route_selected(source, target, level, pivot, estimate)

    def _route_selected(self, source: Hashable, target: Hashable, level: int,
                        pivot: Optional[Hashable], estimate: float
                        ) -> RouteTrace:
        """Materialise the route for an already-selected ``(level, pivot)``.

        Shared by :meth:`route` (per-pair selection) and :meth:`route_batch`
        (columnar selection) so both produce identical traces.
        """
        if pivot is None:
            path, fallback = self._exact_path(source, target), 1
            return self._finish(source, target, path, fallback, estimate)
        data = self.level_data[level]
        fallback = 0
        if not data.skeleton_level and data.trees is not None:
            tree = data.trees.get(pivot)
            if tree is not None and tree.contains(source) and tree.contains(target):
                path = tree.tree_route(source, target)
            else:
                segments = []
                if tree is not None and tree.contains(source):
                    segments = tree.path_to_root(source)
                else:
                    segments = self._exact_path(source, pivot)
                    fallback += 1
                if tree is not None and tree.contains(target):
                    down = list(reversed(tree.path_to_root(target)))
                else:
                    down = self._exact_path(pivot, target)
                    fallback += 1
                path = segments + down[1:]
        else:
            up, fb_up = self._route_via_skeleton(source, pivot, level)
            down, fb_down = self._route_via_skeleton(target, pivot, level)
            fallback += fb_up + fb_down
            path = up + list(reversed(down))[1:]
        return self._finish(source, target, path, fallback, estimate)

    # -- truncated-mode routing -----------------------------------------
    def _route_via_skeleton(self, node: Hashable, pivot: Hashable, level: int
                            ) -> Tuple[List[Hashable], int]:
        """Path from ``node`` to ``pivot`` through the level-``l0`` skeleton."""
        if node == pivot:
            return [node], 0
        fallback = 0
        data = self.level_data[level]
        sk_trees = self.skeleton_trees.get(level)
        # Choose the attachment skeleton node minimising the combined estimate.
        anchors = dict(self.pde_skel.estimates.get(node, {})) if self.pde_skel else {}
        if node in (self.level_sets[self.l0] if self.l0 is not None else set()):
            anchors[node] = 0.0
        best = None
        if sk_trees is not None:
            sk_pde_est = {}
            tree = sk_trees.get(pivot)
            for t, dt in anchors.items():
                if tree is not None and tree.contains(t):
                    best_t = dt
                    if best is None or best_t < best[0]:
                        best = (best_t, t)
        if best is None:
            fallback += 1
            return self._exact_path(node, pivot), fallback
        _, attach = best
        segment = self._attach_path(node, attach)
        tree = sk_trees.get(pivot)
        skeleton_path = tree.path_to_root(attach)
        path = list(segment)
        for a, b in zip(skeleton_path, skeleton_path[1:]):
            expanded, fb = self._expand_skeleton_edge(a, b)
            fallback += fb
            path = path + expanded[1:]
        return path, fallback

    def _attach_path(self, node: Hashable, skeleton_node: Hashable) -> List[Hashable]:
        if node == skeleton_node:
            return [node]
        tree = self.attach_trees.get(skeleton_node) if self.attach_trees else None
        if tree is not None and tree.contains(node):
            return tree.path_to_root(node)
        return self._exact_path(node, skeleton_node)

    def _expand_skeleton_edge(self, a: Hashable, b: Hashable) -> Tuple[List[Hashable], int]:
        tree = self.attach_trees.get(b) if self.attach_trees else None
        if tree is not None and tree.contains(a):
            return tree.path_to_root(a), 0
        tree_rev = self.attach_trees.get(a) if self.attach_trees else None
        if tree_rev is not None and tree_rev.contains(b):
            return list(reversed(tree_rev.path_to_root(b))), 0
        return self._exact_path(a, b), 1

    # -- shared helpers ---------------------------------------------------
    def _exact_path(self, source: Hashable, target: Hashable) -> List[Hashable]:
        if target not in self._exact_parent_cache:
            _, parent = dijkstra(self.graph, target)
            self._exact_parent_cache[target] = parent
        parent = self._exact_parent_cache[target]
        path = [source]
        while path[-1] != target:
            nxt = parent.get(path[-1])
            if nxt is None:
                break
            path.append(nxt)
        return path

    def _finish(self, source: Hashable, target: Hashable, path: List[Hashable],
                fallback_hops: int, estimate: float) -> RouteTrace:
        deduped: List[Hashable] = []
        for node in path:
            if not deduped or deduped[-1] != node:
                deduped.append(node)
        delivered = bool(deduped) and deduped[0] == source and deduped[-1] == target and all(
            self.graph.has_edge(u, v) for u, v in zip(deduped, deduped[1:]))
        weight = path_weight(self.graph, deduped) if delivered else float("inf")
        return RouteTrace(source=source, target=target, path=deduped,
                          delivered=delivered, weight=weight,
                          fallback_hops=fallback_hops, estimate=estimate)

    # ==================================================================
    # reporting
    # ==================================================================
    def theoretical_stretch_bound(self) -> float:
        return 4 * self.k - 3

    def max_bunch_size(self) -> int:
        return max(
            sum(len(self.level_data[l].bunches[v]) for l in range(self.k))
            for v in self.graph.nodes()
        )

    def build_report(self) -> HierarchyBuildReport:
        n = self.graph.num_nodes
        bunch_sizes = [
            sum(len(self.level_data[l].bunches[v]) for l in range(self.k))
            for v in self.graph.nodes()
        ]
        table_words = [self.table_words(v) for v in self.graph.nodes()]
        label_bits = [self.label_of(v).bits(n) for v in self.graph.nodes()]
        fallbacks = 0
        for data in self.level_data:
            if data.trees is not None:
                fallbacks += data.trees.total_fallback_edges()
        if self.attach_trees is not None:
            fallbacks += self.attach_trees.total_fallback_edges()
        for trees in self.skeleton_trees.values():
            fallbacks += trees.total_fallback_edges()
        return HierarchyBuildReport(
            n=n,
            k=self.k,
            epsilon=self.epsilon,
            mode=self.mode,
            l0=self.l0,
            level_sizes=[len(s) for s in self.level_sets],
            rounds=self.metrics.rounds,
            max_bunch_size=max(bunch_sizes),
            avg_bunch_size=sum(bunch_sizes) / len(bunch_sizes),
            max_table_words=max(table_words),
            avg_table_words=sum(table_words) / len(table_words),
            max_label_bits=max(label_bits),
            fallback_edges=fallbacks,
            bunch_overflows=sum(d.overflow_count for d in self.level_data),
        )

    def audit(self, pairs=None) -> Dict[str, float]:
        report = evaluate_routing(self, self.graph, pairs=pairs)
        summary = report.as_dict()
        summary["stretch_bound"] = self.theoretical_stretch_bound()
        return summary

    # ==================================================================
    # state export (serving artifacts)
    # ==================================================================
    #: Bumped whenever :meth:`export_state` changes shape incompatibly.
    STATE_VERSION = 1

    def export_state(self) -> Dict[str, object]:
        """Snapshot of all query-relevant state as plain builtins.

        Together with :meth:`from_state` this is the contract behind the
        serving layer's persistent artifacts: the snapshot contains no
        ``repro`` classes (only dicts / lists / tuples / scalars), so the
        on-disk format survives refactors of the in-memory classes.
        Runtime caches and raw per-level PDE results are excluded; dict
        insertion orders are preserved because query tie-breaking (skeleton
        anchors, exact-path repair) follows iteration order.
        """
        def family_state(trees: Optional[TreeFamily]):
            return None if trees is None else trees.export_state()

        return {
            "state_version": self.STATE_VERSION,
            "graph": self.graph.export_state(),
            "k": self.k,
            "epsilon": self.epsilon,
            "mode": self.mode,
            "l0": self.l0,
            "levels": dict(self.levels),
            "level_sets": [sorted(s, key=repr) for s in self.level_sets],
            "level_data": [
                {
                    "sources": sorted(data.sources, key=repr),
                    "h": data.h,
                    "sigma": data.sigma,
                    "estimates": {v: dict(row) for v, row in data.estimates.items()},
                    "bunches": {v: dict(row) for v, row in data.bunches.items()},
                    "next_pivot": dict(data.next_pivot),
                    "next_pivot_dist": dict(data.next_pivot_dist),
                    "trees": family_state(data.trees),
                    "skeleton_level": data.skeleton_level,
                    "overflow_count": data.overflow_count,
                }
                for data in self.level_data
            ],
            "pivots": {l: dict(m) for l, m in self.pivots.items()},
            "pivot_dists": {l: dict(m) for l, m in self.pivot_dists.items()},
            "pde_skel": (self.pde_skel.export_state()
                         if self.pde_skel is not None else None),
            "skeleton_graph": (self.skeleton_graph.export_state()
                               if self.skeleton_graph is not None else None),
            "attach_trees": family_state(self.attach_trees),
            "skeleton_trees": {l: trees.export_state()
                               for l, trees in self.skeleton_trees.items()},
            "metrics": self.metrics.export_state(),
            "build_params": dict(self.build_params),
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "CompactRoutingHierarchy":
        """Rebuild a hierarchy from :meth:`export_state`.

        The reloaded instance answers every ``route`` / ``distance`` query
        identically to the instance that was exported (asserted by the
        serving round-trip tests).
        """
        version = state.get("state_version")
        if version != cls.STATE_VERSION:
            raise ValueError(f"unsupported hierarchy state version {version!r} "
                             f"(expected {cls.STATE_VERSION})")

        def family(tree_state) -> Optional[TreeFamily]:
            return None if tree_state is None else TreeFamily.from_state(tree_state)

        level_data = []
        for data_state in state["level_data"]:
            level_data.append(_LevelData(
                sources=set(data_state["sources"]),
                h=data_state["h"],
                sigma=data_state["sigma"],
                estimates={v: dict(row)
                           for v, row in data_state["estimates"].items()},
                bunches={v: dict(row) for v, row in data_state["bunches"].items()},
                next_pivot=dict(data_state["next_pivot"]),
                next_pivot_dist=dict(data_state["next_pivot_dist"]),
                trees=family(data_state["trees"]),
                skeleton_level=data_state["skeleton_level"],
                overflow_count=data_state["overflow_count"],
            ))
        hierarchy = cls(
            graph=WeightedGraph.from_state(state["graph"]),
            k=state["k"],
            epsilon=state["epsilon"],
            mode=state["mode"],
            l0=state["l0"],
            levels=dict(state["levels"]),
            level_sets=[set(s) for s in state["level_sets"]],
            level_data=level_data,
            pivots={l: dict(m) for l, m in state["pivots"].items()},
            pivot_dists={l: dict(m) for l, m in state["pivot_dists"].items()},
            pde_skel=(PDEResult.from_state(state["pde_skel"])
                      if state["pde_skel"] is not None else None),
            skeleton_graph=(WeightedGraph.from_state(state["skeleton_graph"])
                            if state["skeleton_graph"] is not None else None),
            attach_trees=family(state["attach_trees"]),
            skeleton_trees={l: TreeFamily.from_state(s)
                            for l, s in state["skeleton_trees"].items()},
            metrics=CongestMetrics.from_state(state["metrics"]),
        )
        hierarchy.build_params = dict(state["build_params"])
        return hierarchy
