"""Routing table construction with node relabeling — Theorem 4.5.

For a parameter ``k``, the scheme computes labels of ``O(log n)`` bits and
routing tables achieving stretch ``6k - 1 + o(1)`` in ``O~(n^{1/2+1/(4k)} + D)``
rounds, improving the ``O(k log k)`` stretch of the prior work [15].

Construction (Section 4.2):

1. Sample a skeleton ``S`` with probability ``p = n^{-1/2-1/(4k)}`` per node.
2. *Short range*: solve ``(1+eps)``-approximate ``(V, h, sigma)``-estimation
   with ``h = sigma = c log n / p``.  Every node ``v`` learns approximate
   distances and next hops to the ``~sigma`` closest nodes (list ``L_v``)
   and its closest skeleton node ``s'_v`` (Lemma 4.2).
3. *Long range*: solve ``(1+eps)``-approximate ``(S, h, |S|)``-estimation,
   giving every node distances/next hops to nearby skeleton nodes and the
   skeleton graph ``H`` on ``S`` (edge weights ``wd'_S``).  A ``(2k-1)``-
   spanner of ``H`` (Baswana–Sen) is made known to all nodes.
4. *Labels*: ``lambda(w) = (w, s'_w, wd'(w, s'_w), tree-label of w)`` where the
   tree label refers to the tree of approximate shortest paths rooted at
   ``s'_w`` spanning the nodes homed at ``s'_w`` — ``O(log n)`` bits.

Routing from ``v`` to ``w``: if ``w`` is in ``v``'s short-range list, follow
the short-range tree of ``w``; otherwise route to a nearby skeleton node,
along the skeleton spanner to ``s'_w``, and down ``s'_w``'s tree to ``w``
(stretch ``(2 + O(eps)) + (2k-1)(3 + O(eps)) = 6k - 1 + o(1)`` by
Lemma 4.3).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set, Tuple

from ..congest.bfs import build_bfs_tree, pipelined_broadcast_rounds
from ..congest.metrics import CongestMetrics, merge_metrics
from ..core.pde import PDEResult, solve_pde
from ..graphs.distances import dijkstra, path_weight
from ..graphs.weighted_graph import WeightedGraph
from .cluster_trees import TreeFamily, build_destination_trees
from .skeleton import (
    build_skeleton_pde,
    default_detection_budget,
    default_sampling_probability,
    sample_skeleton,
)
from .spanner import baswana_sen_spanner, greedy_spanner
from .tables import Label, RouteTrace, RoutingTable
from .stretch import evaluate_routing

__all__ = ["RelabelingRoutingScheme", "RelabelingBuildReport"]


@dataclass
class RelabelingBuildReport:
    """Construction-time statistics for Theorem 4.5 accounting."""

    n: int
    k: int
    epsilon: float
    sampling_probability: float
    skeleton_size: int
    detection_budget: int
    rounds: int
    spanner_edges: int
    skeleton_edges: int
    fallback_edges: int
    label_bits_max: int

    def as_dict(self) -> Dict[str, float]:
        return dict(self.__dict__)


class RelabelingRoutingScheme:
    """The Theorem 4.5 routing scheme (build once, then query labels/routes)."""

    def __init__(self, graph: WeightedGraph, k: int, epsilon: float,
                 skeleton: Set[Hashable], pde_short: PDEResult, pde_skel: PDEResult,
                 home: Dict[Hashable, Hashable],
                 short_trees: TreeFamily, skeleton_trees: TreeFamily,
                 home_trees: TreeFamily, skeleton_graph: WeightedGraph,
                 spanner: WeightedGraph, metrics: CongestMetrics) -> None:
        self.graph = graph
        self.k = k
        self.epsilon = epsilon
        self.skeleton = skeleton
        self.pde_short = pde_short
        self.pde_skel = pde_skel
        self.home = home
        self.short_trees = short_trees
        self.skeleton_trees = skeleton_trees
        self.home_trees = home_trees
        self.skeleton_graph = skeleton_graph
        self.spanner = spanner
        self.metrics = metrics
        self._spanner_dist: Dict[Hashable, Dict[Hashable, float]] = {}
        self._spanner_parent: Dict[Hashable, Dict[Hashable, Optional[Hashable]]] = {}
        self._exact_parent_cache: Dict[Hashable, Dict[Hashable, Optional[Hashable]]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graph: WeightedGraph, k: int, epsilon: float = 0.25,
              seed: int = 0, sampling_probability: Optional[float] = None,
              budget_constant: float = 2.0, spanner_method: str = "baswana_sen",
              engine: str = "batched") -> "RelabelingRoutingScheme":
        """Run the distributed construction (logically or on the simulator)."""
        if k < 1:
            raise ValueError("k must be >= 1")
        n = graph.num_nodes
        rng = random.Random(seed)
        p = (sampling_probability if sampling_probability is not None
             else default_sampling_probability(n, k))
        skeleton = sample_skeleton(graph.nodes(), p, rng)
        budget = default_detection_budget(n, p, c=budget_constant)

        # Step 2: short-range estimation over all nodes.
        pde_short = solve_pde(graph, graph.nodes(), h=budget, sigma=budget,
                              epsilon=epsilon, engine=engine, store_levels=False)
        # Step 3: long-range estimation from the skeleton, and the skeleton
        # graph H on S with the approximate edge weights wd'_S.
        pde_skel, skeleton_graph = build_skeleton_pde(
            graph, skeleton, epsilon, h=budget, sigma=max(1, len(skeleton)),
            engine=engine)

        # Home skeleton node s'_v of every node (Lemma 4.2).
        home: Dict[Hashable, Hashable] = {}
        for v in graph.nodes():
            entry = pde_short.closest_source_in(v, skeleton)
            if entry is None:
                entry = pde_skel.closest_source_in(v, skeleton)
            if entry is None:
                # Disconnected corner case; attach to the smallest skeleton node.
                home[v] = min(skeleton, key=repr)
            else:
                home[v] = entry.source

        # Short-range destination trees (one per destination, members = nodes
        # whose list contains the destination).
        short_trees = build_destination_trees(graph, pde_short)
        # Long-range trees toward every skeleton node from the second PDE.
        skeleton_trees = build_destination_trees(graph, pde_skel)
        # Home trees: for every skeleton node s, the tree spanning the nodes
        # homed at s (used for the last mile s'_w -> w).
        home_members: Dict[Hashable, Set[Hashable]] = {s: set() for s in skeleton}
        for v, s in home.items():
            home_members[s].add(v)
        home_trees = build_destination_trees(graph, pde_short,
                                             destinations=sorted(skeleton, key=repr),
                                             members_of=home_members)

        # The (2k-1)-spanner of the skeleton graph, made globally known.
        if spanner_method == "greedy":
            spanner = greedy_spanner(skeleton_graph, k)
        elif spanner_method == "baswana_sen":
            spanner = baswana_sen_spanner(skeleton_graph, k, rng)
        else:
            raise ValueError(f"unknown spanner method {spanner_method!r}")

        # Round accounting: the two PDE phases, the spanner construction on
        # the skeleton (simulated Baswana-Sen, O~(|S|^{1+1/k} + D)), the
        # broadcast of the spanner edges over a BFS tree, and tree labeling.
        bfs_height = build_bfs_tree(graph, graph.nodes()[0]).height
        spanner_rounds = int(math.ceil(
            len(skeleton) ** (1.0 + 1.0 / k) * max(1.0, math.log(max(2, n)))))
        broadcast_rounds = pipelined_broadcast_rounds(spanner.num_edges, bfs_height)
        labeling_rounds = home_trees.max_depth() + short_trees.max_depth()
        extra = CongestMetrics(rounds=spanner_rounds + broadcast_rounds + labeling_rounds,
                               measured=False)
        metrics = merge_metrics(pde_short.metrics, pde_skel.metrics, extra,
                                sequential=True)

        return cls(graph=graph, k=k, epsilon=epsilon, skeleton=skeleton,
                   pde_short=pde_short, pde_skel=pde_skel, home=home,
                   short_trees=short_trees, skeleton_trees=skeleton_trees,
                   home_trees=home_trees, skeleton_graph=skeleton_graph,
                   spanner=spanner, metrics=metrics)

    # ------------------------------------------------------------------
    # labels and tables
    # ------------------------------------------------------------------
    def label_of(self, node: Hashable) -> Label:
        """The ``O(log n)``-bit label of Theorem 4.5."""
        s = self.home[node]
        tree = self.home_trees.get(s)
        tree_label = tree.label_of(node) if tree is not None and tree.contains(node) else 0
        dist_home = min(self.pde_short.estimate(node, s),
                        self.pde_skel.estimate(node, s))
        if node == s:
            dist_home = 0.0
        return Label(owner=node, fields={
            "home": s,
            "dist_home": dist_home,
            "tree_label": tree_label,
        })

    def table_of(self, node: Hashable) -> RoutingTable:
        """The local routing table of ``node`` (for size accounting)."""
        table = RoutingTable(owner=node)
        for entry in self.pde_short.list_of(node):
            if entry.next_hop is not None:
                table.next_hops[entry.source] = entry.next_hop
        skel_entries = {}
        for entry in self.pde_skel.list_of(node):
            skel_entries[entry.source] = (entry.estimate, entry.next_hop)
        table.extra["skeleton_list"] = skel_entries
        table.extra["tree_memberships"] = (
            self.short_trees.trees_containing(node)
            + self.home_trees.trees_containing(node))
        table.extra["spanner"] = [(u, v, w) for u, v, w in self.spanner.edges()]
        return table

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _spanner_sssp(self, source: Hashable) -> Tuple[Dict[Hashable, float],
                                                       Dict[Hashable, Optional[Hashable]]]:
        if source not in self._spanner_dist:
            dist, parent = dijkstra(self.spanner, source)
            self._spanner_dist[source] = dist
            self._spanner_parent[source] = parent
        return self._spanner_dist[source], self._spanner_parent[source]

    def _is_short_range(self, source: Hashable, target: Hashable) -> bool:
        return self.pde_short.in_list(source, target)

    def distance(self, source: Hashable, target: Hashable) -> float:
        """The distance estimate ``dist_v(lambda(w))`` (never below ``wd``)."""
        if source == target:
            return 0.0
        if self._is_short_range(source, target):
            return self.pde_short.estimate(source, target)
        label = self.label_of(target)
        home = label.get("home")
        dist_home = label.get("dist_home")
        best = float("inf")
        home_dist, _ = self._spanner_sssp(home)
        for entry in self.pde_skel.list_of(source):
            via = entry.estimate + home_dist.get(entry.source, float("inf")) + dist_home
            best = min(best, via)
        return best

    def route(self, source: Hashable, target: Hashable) -> RouteTrace:
        """Trace the stateless route induced by the scheme's tables."""
        if source == target:
            return RouteTrace(source=source, target=target, path=[source],
                              delivered=True, weight=0.0, estimate=0.0)
        if self._is_short_range(source, target):
            return self._short_route(source, target)
        return self._long_route(source, target)

    # -- short range ----------------------------------------------------
    def _short_route(self, source: Hashable, target: Hashable) -> RouteTrace:
        tree = self.short_trees.get(target)
        fallback = 0
        if tree is None or not tree.contains(source):
            path, fallback = self._exact_path(source, target), 1
        else:
            path = tree.path_to_root(source)
        return self._finish(source, target, path, fallback,
                            estimate=self.pde_short.estimate(source, target))

    # -- long range -----------------------------------------------------
    def _long_route(self, source: Hashable, target: Hashable) -> RouteTrace:
        label = self.label_of(target)
        home = label.get("home")
        home_dist, home_parent = self._spanner_sssp(home)

        best_entry = None
        best_cost = float("inf")
        for entry in self.pde_skel.list_of(source):
            cost = entry.estimate + home_dist.get(entry.source, float("inf"))
            if cost < best_cost:
                best_cost = cost
                best_entry = entry
        fallback = 0
        if best_entry is None or best_cost == float("inf"):
            # The skeleton did not cover this pair (can only happen for very
            # small / sparse samples); repair with an exact path and count it.
            path = self._exact_path(source, target)
            return self._finish(source, target, path, fallback_hops=1,
                                 estimate=None)

        # Segment 1: source -> entry skeleton node.
        path = self._segment_to_skeleton(source, best_entry.source)
        # Segment 2: along the skeleton spanner to the target's home node.
        spanner_path = self._spanner_path(home_parent, best_entry.source, home)
        for s_from, s_to in zip(spanner_path, spanner_path[1:]):
            segment, fb = self._skeleton_edge_segment(s_from, s_to)
            fallback += fb
            path = path + segment[1:]
        # Segment 3: down the home tree to the target.
        home_tree = self.home_trees.get(home)
        if home_tree is not None and home_tree.contains(target) and home_tree.contains(home):
            down = home_tree.tree_route(home, target)
        else:
            down = self._exact_path(home, target)
            fallback += 1
        path = path + down[1:]
        return self._finish(source, target, path, fallback,
                            estimate=self.distance(source, target))

    def _segment_to_skeleton(self, node: Hashable, skeleton_node: Hashable) -> List[Hashable]:
        tree = self.skeleton_trees.get(skeleton_node)
        if tree is not None and tree.contains(node):
            return tree.path_to_root(node)
        return self._exact_path(node, skeleton_node)

    def _skeleton_edge_segment(self, s_from: Hashable, s_to: Hashable
                               ) -> Tuple[List[Hashable], int]:
        tree = self.skeleton_trees.get(s_to)
        if tree is not None and tree.contains(s_from):
            return tree.path_to_root(s_from), 0
        tree_rev = self.skeleton_trees.get(s_from)
        if tree_rev is not None and tree_rev.contains(s_to):
            return list(reversed(tree_rev.path_to_root(s_to))), 0
        return self._exact_path(s_from, s_to), 1

    def _spanner_path(self, parent: Dict[Hashable, Optional[Hashable]],
                      source: Hashable, target: Hashable) -> List[Hashable]:
        """Path from ``source`` to ``target`` in the spanner (parents rooted at target)."""
        if source == target:
            return [source]
        if source not in parent:
            return [source, target]  # repaired later by the edge segment fallback
        path = [source]
        while path[-1] != target and parent.get(path[-1]) is not None:
            path.append(parent[path[-1]])
        if path[-1] != target:
            path.append(target)
        return path

    # -- helpers ----------------------------------------------------------
    def _exact_path(self, source: Hashable, target: Hashable) -> List[Hashable]:
        if target not in self._exact_parent_cache:
            _, parent = dijkstra(self.graph, target)
            self._exact_parent_cache[target] = parent
        parent = self._exact_parent_cache[target]
        path = [source]
        while path[-1] != target:
            nxt = parent.get(path[-1])
            if nxt is None:
                break
            path.append(nxt)
        return path

    def _finish(self, source: Hashable, target: Hashable, path: List[Hashable],
                fallback_hops: int, estimate: Optional[float]) -> RouteTrace:
        path = _dedupe_consecutive(path)
        delivered = bool(path) and path[0] == source and path[-1] == target and all(
            self.graph.has_edge(u, v) for u, v in zip(path, path[1:]))
        weight = path_weight(self.graph, path) if delivered else float("inf")
        return RouteTrace(source=source, target=target, path=path,
                          delivered=delivered, weight=weight,
                          fallback_hops=fallback_hops, estimate=estimate)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def theoretical_stretch_bound(self) -> float:
        """The Theorem 4.5 bound ``6k - 1`` (the ``o(1)`` term is epsilon-driven)."""
        return 6 * self.k - 1

    def build_report(self) -> RelabelingBuildReport:
        n = self.graph.num_nodes
        label_bits = max(self.label_of(v).bits(n) for v in self.graph.nodes())
        return RelabelingBuildReport(
            n=n,
            k=self.k,
            epsilon=self.epsilon,
            sampling_probability=default_sampling_probability(n, self.k),
            skeleton_size=len(self.skeleton),
            detection_budget=self.pde_short.h,
            rounds=self.metrics.rounds,
            spanner_edges=self.spanner.num_edges,
            skeleton_edges=self.skeleton_graph.num_edges,
            fallback_edges=(self.short_trees.total_fallback_edges()
                            + self.skeleton_trees.total_fallback_edges()
                            + self.home_trees.total_fallback_edges()),
            label_bits_max=label_bits,
        )

    def audit(self, pairs=None) -> Dict[str, float]:
        """End-to-end routing audit (delivery rate and stretch statistics)."""
        report = evaluate_routing(self, self.graph, pairs=pairs)
        summary = report.as_dict()
        summary["stretch_bound"] = self.theoretical_stretch_bound()
        return summary


def _dedupe_consecutive(path: List[Hashable]) -> List[Hashable]:
    """Collapse immediately repeated nodes produced by segment concatenation."""
    result: List[Hashable] = []
    for node in path:
        if not result or result[-1] != node:
            result.append(node)
    return result
