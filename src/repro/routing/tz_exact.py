"""Exact (centralized) Thorup–Zwick distance oracle — reference for Section 4.3.

The compact routing hierarchy of Section 4.3 is an approximate, distributed
construction of the Thorup–Zwick hierarchy [20].  For the ablation experiment
E8 (exact vs. approximate distances in the hierarchy) we implement the
classical centralized oracle with *exact* distances:

* levels ``A_0 ⊇ A_1 ⊇ ... ⊇ A_{k-1}`` by geometric sampling with parameter
  ``n^{-1/k}``,
* pivots ``p_l(v)`` (the closest ``A_l``-node) and bunches
  ``B(v) = ∪_l { w in A_l \\ A_{l+1} : d(v, w) < d(v, A_{l+1}) }``,
* the classical query with stretch ``2k - 1``, and
* the label/hierarchy query used by the paper (route via ``s_l(w)`` for the
  minimal level ``l`` with ``s_l(w)`` in ``v``'s bunch) with stretch
  ``4k - 3`` — this is the query our distributed scheme implements, so the
  two can be compared level by level.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set, Tuple

from ..graphs.distances import dijkstra
from ..graphs.weighted_graph import WeightedGraph

__all__ = ["ExactThorupZwickOracle", "sample_levels"]


def sample_levels(nodes: List[Hashable], k: int, rng: random.Random) -> Dict[Hashable, int]:
    """Assign each node a level via the geometric process of Section 4.3.

    The probability of having level at least ``l`` is ``n^{-l/k}``; levels
    are capped at ``k - 1``.  The top level is forced to be non-empty (the
    paper conditions on this w.h.p. event).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    n = max(2, len(nodes))
    q = n ** (-1.0 / k)
    levels: Dict[Hashable, int] = {}
    for v in nodes:
        level = 0
        while level < k - 1 and rng.random() < q:
            level += 1
        levels[v] = level
    if not any(level == k - 1 for level in levels.values()) and nodes:
        levels[min(nodes, key=repr)] = k - 1
    return levels


@dataclass
class _Bunch:
    """Per-node exact TZ structures."""

    pivots: List[Hashable]            # p_l(v) per level
    pivot_dists: List[float]          # d(v, p_l(v)) per level
    bunch: Dict[Hashable, float]      # w -> d(v, w) for w in B(v)


class ExactThorupZwickOracle:
    """Classical Thorup–Zwick approximate distance oracle with exact distances."""

    def __init__(self, graph: WeightedGraph, k: int, seed: int = 0,
                 levels: Optional[Dict[Hashable, int]] = None) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.graph = graph
        self.k = k
        rng = random.Random(seed)
        self.levels = levels if levels is not None else sample_levels(
            graph.nodes(), k, rng)
        self.level_sets: List[Set[Hashable]] = [
            {v for v, lvl in self.levels.items() if lvl >= l} for l in range(k)
        ]
        self._structures: Dict[Hashable, _Bunch] = {}
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        # Exact distances from every node (the centralized reference can
        # afford full Dijkstra; the point of the paper is doing better
        # distributedly).
        dist_from: Dict[Hashable, Dict[Hashable, float]] = {}
        for v in self.graph.nodes():
            dist_from[v], _ = dijkstra(self.graph, v)

        for v in self.graph.nodes():
            pivots: List[Hashable] = []
            pivot_dists: List[float] = []
            for l in range(self.k):
                candidates = [
                    (dist_from[v].get(s, float("inf")), repr(s), s)
                    for s in self.level_sets[l]
                ]
                d, _, s = min(candidates)
                pivots.append(s)
                pivot_dists.append(d)
            bunch: Dict[Hashable, float] = {}
            for l in range(self.k):
                next_dist = pivot_dists[l + 1] if l + 1 < self.k else float("inf")
                for w in self.level_sets[l]:
                    if l + 1 < self.k and w in self.level_sets[l + 1]:
                        continue
                    d = dist_from[v].get(w, float("inf"))
                    if d < next_dist:
                        bunch[w] = d
            # The node itself and all top-level nodes always belong.
            bunch[v] = 0.0
            for w in self.level_sets[self.k - 1]:
                bunch[w] = dist_from[v].get(w, float("inf"))
            self._structures[v] = _Bunch(pivots=pivots, pivot_dists=pivot_dists,
                                         bunch=bunch)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def bunch_of(self, node: Hashable) -> Dict[Hashable, float]:
        return dict(self._structures[node].bunch)

    def bunch_size(self, node: Hashable) -> int:
        return len(self._structures[node].bunch)

    def pivot(self, node: Hashable, level: int) -> Tuple[Hashable, float]:
        s = self._structures[node]
        return s.pivots[level], s.pivot_dists[level]

    def query(self, u: Hashable, v: Hashable) -> float:
        """The classical TZ query: stretch at most ``2k - 1``."""
        if u == v:
            return 0.0
        su = self._structures[u]
        sv = self._structures[v]
        w = u
        i = 0
        d_uw = 0.0
        while w not in sv.bunch:
            i += 1
            u, v = v, u
            su, sv = sv, su
            w = su.pivots[i]
            d_uw = su.pivot_dists[i]
        return d_uw + sv.bunch[w]

    def hierarchy_query(self, u: Hashable, v: Hashable) -> Tuple[float, int]:
        """The paper's query: route via ``p_l(v)`` for the minimal level ``l``
        such that ``p_l(v)`` lies in ``u``'s bunch.  Stretch at most ``4k-3``.

        Returns ``(estimate, level_used)``.
        """
        if u == v:
            return 0.0, 0
        su = self._structures[u]
        sv = self._structures[v]
        for level in range(self.k):
            pivot = v if level == 0 else sv.pivots[level]
            if pivot in su.bunch:
                via = su.bunch[pivot] + (0.0 if level == 0 else sv.pivot_dists[level])
                return via, level
        # Unreachable for connected graphs: the top-level pivot of v is in
        # every bunch by construction.
        return float("inf"), self.k  # pragma: no cover

    # ------------------------------------------------------------------
    def max_bunch_size(self) -> int:
        return max(self.bunch_size(v) for v in self.graph.nodes())

    def average_bunch_size(self) -> float:
        sizes = [self.bunch_size(v) for v in self.graph.nodes()]
        return sum(sizes) / len(sizes)
