"""Skeleton sampling and skeleton graphs (Section 4.2 and Definition 4.9).

The long-range part of the paper's routing schemes samples a set ``S`` of
"skeleton" nodes (each node independently with probability ``p``) and works
on the *skeleton graph*: the graph on ``S`` whose edges connect skeleton
nodes that are few hops apart in ``G``, weighted by their (approximate)
distance.  W.h.p. skeleton-graph distances equal the original distances for
sufficiently large sampling probability, because every shortest path has a
sampled node every ``O(log n / p)`` hops.

Two constructions are provided:

* :func:`exact_skeleton_graph` — Definition 4.9: edges between skeleton nodes
  within ``h`` hops, weighted by exact distance (used as ground truth).
* :func:`skeleton_graph_from_pde` — the distributed construction: edge
  weights are the ``(1+eps)``-approximate estimates ``wd'_S`` produced by a
  PDE instance with source set ``S`` (the graph ``G~`` of Corollary 4.11).
"""

from __future__ import annotations

import math
import random
from typing import Dict, Hashable, Iterable, Optional, Set, Tuple

from ..core.pde import PDEResult, solve_pde
from ..graphs.distances import dijkstra, h_hop_distances
from ..graphs.weighted_graph import WeightedGraph

__all__ = [
    "default_sampling_probability",
    "default_detection_budget",
    "sample_skeleton",
    "exact_skeleton_graph",
    "skeleton_graph_from_pde",
    "build_skeleton_pde",
    "skeleton_distance_audit",
]


def default_sampling_probability(n: int, k: int) -> float:
    """The sampling probability ``p = n^{-1/2 - 1/(4k)}`` of Theorem 4.5."""
    if n < 1 or k < 1:
        raise ValueError("n and k must be positive")
    return min(1.0, n ** (-0.5 - 1.0 / (4.0 * k)))


def default_detection_budget(n: int, p: float, c: float = 2.0) -> int:
    """The hop/list budget ``h = sigma = c * log n / p`` used with a skeleton.

    The constant ``c`` trades the failure probability of the "a sampled node
    appears among every ``c log n / p`` closest nodes" argument (Lemma 4.2)
    against running time; ``c = 2`` keeps test instances small while the
    benchmarks expose it as a parameter.
    """
    if not 0 < p <= 1:
        raise ValueError("p must be in (0, 1]")
    budget = int(math.ceil(c * math.log(max(2, n)) / p))
    return max(1, min(n, budget))


def sample_skeleton(nodes: Iterable[Hashable], p: float,
                    rng: Optional[random.Random] = None) -> Set[Hashable]:
    """Sample each node independently with probability ``p``.

    The paper assumes ``S != emptyset`` (which holds w.h.p.); to keep small
    test instances well-defined we add the lexicographically smallest node
    when the sample comes out empty.
    """
    rng = rng if rng is not None else random.Random(0)
    nodes = list(nodes)
    skeleton = {v for v in nodes if rng.random() < p}
    if not skeleton and nodes:
        skeleton.add(min(nodes, key=repr))
    return skeleton


def exact_skeleton_graph(graph: WeightedGraph, skeleton: Set[Hashable],
                         h: int) -> WeightedGraph:
    """Definition 4.9: edges between skeleton nodes at hop distance ``<= h``.

    Edge weights are the ``h``-hop distances (which, for sufficiently large
    ``h``, coincide with true distances along sampled shortest paths).
    """
    sk = WeightedGraph()
    for s in skeleton:
        sk.add_node(s)
    for s in sorted(skeleton, key=repr):
        dist = h_hop_distances(graph, s, h)
        for t, d in dist.items():
            if t in skeleton and t != s:
                sk.add_edge(s, t, max(1, int(math.ceil(d))))
    return sk


def skeleton_graph_from_pde(pde: PDEResult, skeleton: Set[Hashable]) -> WeightedGraph:
    """The approximate skeleton graph ``G~`` built from PDE estimates.

    For skeleton nodes ``s, t``, an edge ``{s, t}`` with weight
    ``ceil(wd'_S(s, t))`` is added whenever ``t`` appears in ``s``'s estimate
    table (Corollary 4.11).  Rounding up preserves the "estimates never
    undershoot" invariant.
    """
    sk = WeightedGraph()
    for s in skeleton:
        sk.add_node(s)
    for s in sorted(skeleton, key=repr):
        for t, est in pde.estimates.get(s, {}).items():
            if t in skeleton and t != s and est != float("inf"):
                weight = max(1, int(math.ceil(est)))
                if sk.has_edge(s, t):
                    weight = min(weight, sk.weight(s, t))
                    sk.remove_edge(s, t)
                sk.add_edge(s, t, weight)
    return sk


def build_skeleton_pde(graph: WeightedGraph, skeleton: Set[Hashable],
                       epsilon: float, h: Optional[int] = None,
                       sigma: Optional[int] = None, c: float = 2.0,
                       engine: str = "batched",
                       ) -> Tuple[PDEResult, WeightedGraph]:
    """Run the long-range PDE from a skeleton and build ``G~`` in one step.

    Solves ``(1+eps)``-approximate ``(S, h, sigma)``-estimation with
    ``S = skeleton`` (defaults: ``h`` from :func:`default_detection_budget`
    with the skeleton's implied sampling rate ``|S|/n``, ``sigma = |S|`` as
    in Theorem 4.5 step 3) and derives the approximate skeleton graph of
    Corollary 4.11.  ``engine`` selects the per-level detection engine and is
    forwarded to :func:`repro.core.pde.solve_pde`.

    Returns ``(pde, skeleton_graph)``.
    """
    if not skeleton:
        raise ValueError("the skeleton must be non-empty")
    n = graph.num_nodes
    if h is None:
        p = max(len(skeleton) / max(1, n), 1.0 / max(1, n))
        h = default_detection_budget(n, p, c=c)
    if sigma is None:
        sigma = max(1, len(skeleton))
    pde = solve_pde(graph, skeleton, h=h, sigma=sigma, epsilon=epsilon,
                    engine=engine, store_levels=False)
    return pde, skeleton_graph_from_pde(pde, skeleton)


def skeleton_distance_audit(graph: WeightedGraph, skeleton_graph: WeightedGraph
                            ) -> Dict[str, float]:
    """Compare skeleton-graph distances against true distances in ``G``.

    Returns the maximum multiplicative error over skeleton pairs (1.0 means
    the skeleton preserves distances exactly, as the paper argues happens
    w.h.p. for the exact construction).
    """
    worst = 1.0
    pairs = 0
    unreachable = 0
    for s in skeleton_graph.nodes():
        true_dist, _ = dijkstra(graph, s)
        sk_dist, _ = dijkstra(skeleton_graph, s)
        for t in skeleton_graph.nodes():
            if t == s:
                continue
            pairs += 1
            if t not in sk_dist:
                unreachable += 1
                continue
            if true_dist.get(t, 0) > 0:
                worst = max(worst, sk_dist[t] / true_dist[t])
    return {"max_ratio": worst, "pairs": pairs, "unreachable": unreachable}
