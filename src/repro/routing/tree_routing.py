"""Thorup–Zwick tree routing (interval labeling scheme).

Both applications of Section 4 route the "last mile" — from a node ``s``
down to a destination ``w`` in a tree of approximate shortest paths rooted at
``s`` — using the tree-routing labels of Thorup and Zwick [20].  Their scheme
assigns each tree node a label of ``(1 + o(1)) log n`` bits such that, given
only the label of the destination, each node can determine the next edge on
the unique tree path.

We implement the classical *interval* variant: nodes are numbered by a DFS
traversal; a node's label is its DFS index; each node stores, per child, the
DFS interval covered by that child's subtree.  Routing toward a target index
goes down into the child whose interval contains the target and otherwise up
to the parent.  This gives ``O(log n)``-bit labels and per-node tables of
``O(deg_T(v))`` words — sufficient for all size accounting in the paper's
schemes, where each node participates in ``O(log n)`` (Lemma 4.4) or
``O~(n^{1/k})`` (Lemma 4.7) trees.  The label-size-optimal heavy-path variant
of [20] is noted in DESIGN.md as an accounting substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

__all__ = ["TreeRouting", "TreeRoutingError"]


class TreeRoutingError(RuntimeError):
    """Raised for malformed trees or routing requests outside the tree."""


@dataclass(frozen=True)
class _Interval:
    enter: int
    exit: int

    def contains(self, index: int) -> bool:
        return self.enter <= index <= self.exit


class TreeRouting:
    """Interval-labeled routing on a rooted tree.

    Parameters
    ----------
    root:
        The tree root.
    parent:
        ``parent[v]`` is ``v``'s parent (``None`` exactly for the root).
        Every node reachable from the root through the parent map belongs to
        the tree.
    """

    def __init__(self, root: Hashable, parent: Dict[Hashable, Optional[Hashable]]) -> None:
        if parent.get(root, "missing") is not None:
            raise TreeRoutingError("root must have parent None")
        self.root = root
        self.parent = dict(parent)
        self.children: Dict[Hashable, List[Hashable]] = {v: [] for v in parent}
        for v, p in parent.items():
            if p is None:
                continue
            if p not in self.children:
                raise TreeRoutingError(f"parent {p!r} of {v!r} is not a tree node")
            self.children[p].append(v)
        for kids in self.children.values():
            kids.sort(key=repr)
        self._intervals: Dict[Hashable, _Interval] = {}
        self._depth: Dict[Hashable, int] = {}
        self._assign_intervals()

    # ------------------------------------------------------------------
    def _assign_intervals(self) -> None:
        """Iterative DFS assigning enter/exit indices and depths."""
        counter = 0
        enter: Dict[Hashable, int] = {}
        exit_: Dict[Hashable, int] = {}
        stack: List[Tuple[Hashable, bool]] = [(self.root, False)]
        self._depth[self.root] = 0
        visited = set()
        while stack:
            node, processed = stack.pop()
            if processed:
                exit_[node] = counter - 1
                continue
            if node in visited:
                raise TreeRoutingError("parent map contains a cycle")
            visited.add(node)
            enter[node] = counter
            counter += 1
            stack.append((node, True))
            for child in reversed(self.children[node]):
                self._depth[child] = self._depth[node] + 1
                stack.append((child, False))
        if len(visited) != len(self.parent):
            unreachable = set(self.parent) - visited
            raise TreeRoutingError(
                f"{len(unreachable)} nodes unreachable from root {self.root!r}")
        for node in self.parent:
            self._intervals[node] = _Interval(enter[node], exit_[node])

    # ------------------------------------------------------------------
    # labels and tables
    # ------------------------------------------------------------------
    def contains(self, node: Hashable) -> bool:
        return node in self.parent

    def label_of(self, node: Hashable) -> int:
        """The tree-routing label of ``node``: its DFS enter index."""
        try:
            return self._intervals[node].enter
        except KeyError:
            raise TreeRoutingError(f"{node!r} is not in the tree") from None

    def depth_of(self, node: Hashable) -> int:
        return self._depth[node]

    @property
    def height(self) -> int:
        return max(self._depth.values(), default=0)

    @property
    def size(self) -> int:
        return len(self.parent)

    def nodes(self) -> Iterable[Hashable]:
        return self.parent.keys()

    def table_words(self, node: Hashable) -> int:
        """Size of ``node``'s local tree-routing table in words.

        Each child contributes an (interval, port) record of 3 words; one
        word for the parent port and one for the node's own interval bound.
        """
        return 3 * len(self.children.get(node, [])) + 2

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def next_hop(self, node: Hashable, target_label: int) -> Optional[Hashable]:
        """The next tree edge from ``node`` toward the node labeled ``target_label``.

        Returns ``None`` when ``node`` already is the target.
        """
        if node not in self._intervals:
            raise TreeRoutingError(f"{node!r} is not in the tree")
        interval = self._intervals[node]
        if interval.enter == target_label:
            return None
        if interval.contains(target_label):
            for child in self.children[node]:
                if self._intervals[child].contains(target_label):
                    return child
            raise TreeRoutingError("inconsistent intervals")  # pragma: no cover
        parent = self.parent[node]
        if parent is None:
            raise TreeRoutingError(
                f"target label {target_label} is not in the tree rooted at {self.root!r}")
        return parent

    def route(self, source: Hashable, target: Hashable) -> List[Hashable]:
        """The unique tree path from ``source`` to ``target`` (both in the tree)."""
        target_label = self.label_of(target)
        path = [source]
        current = source
        for _ in range(2 * len(self.parent) + 1):
            nxt = self.next_hop(current, target_label)
            if nxt is None:
                return path
            path.append(nxt)
            current = nxt
        raise TreeRoutingError("routing did not terminate")  # pragma: no cover

    def path_to_root(self, node: Hashable) -> List[Hashable]:
        """The path from ``node`` up to the root."""
        path = [node]
        while self.parent[path[-1]] is not None:
            path.append(self.parent[path[-1]])
        return path
