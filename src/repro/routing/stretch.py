"""Route tracing and stretch evaluation for routing / distance schemes.

A scheme (Theorem 4.5 or the compact hierarchy of Section 4.3) exposes

* ``label_of(node)``            — the label the RTC problem assigns,
* ``route(source, target)``     — a :class:`~repro.routing.tables.RouteTrace`,
* ``distance(source, target)``  — the distance estimate ``dist_v(lambda(w))``.

This module audits such schemes against ground truth: delivery rate, route
stretch (the paper's performance measure for RTC), distance-estimate stretch
(for the distance-approximation problem), and size statistics for labels and
tables.  Benchmarks E4–E6 and E8 are built on these audits.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from ..graphs.distances import all_pairs_weighted_distances, path_weight
from ..graphs.weighted_graph import WeightedGraph
from .tables import RouteTrace

__all__ = [
    "StretchReport",
    "sample_pairs",
    "evaluate_routing",
    "evaluate_distance_estimates",
    "validate_route",
]


@dataclass
class StretchReport:
    """Aggregated routing-quality statistics over a set of pairs."""

    pairs: int = 0
    delivered: int = 0
    max_stretch: float = 0.0
    mean_stretch: float = 0.0
    p95_stretch: float = 0.0
    fallback_hops: int = 0
    failures: List[Tuple[Hashable, Hashable]] = field(default_factory=list)

    @property
    def delivery_rate(self) -> float:
        return self.delivered / self.pairs if self.pairs else 1.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "pairs": self.pairs,
            "delivered": self.delivered,
            "delivery_rate": self.delivery_rate,
            "max_stretch": self.max_stretch,
            "mean_stretch": self.mean_stretch,
            "p95_stretch": self.p95_stretch,
            "fallback_hops": self.fallback_hops,
        }


def sample_pairs(nodes: Sequence[Hashable], count: Optional[int] = None,
                 rng: Optional[random.Random] = None
                 ) -> List[Tuple[Hashable, Hashable]]:
    """All ordered pairs, or a random sample of ``count`` of them."""
    nodes = list(nodes)
    all_pairs = [(u, v) for u, v in itertools.permutations(nodes, 2)]
    if count is None or count >= len(all_pairs):
        return all_pairs
    rng = rng if rng is not None else random.Random(0)
    return rng.sample(all_pairs, count)


def validate_route(graph: WeightedGraph, trace: RouteTrace) -> bool:
    """Check that a delivered trace is a real path ending at the target."""
    if not trace.delivered:
        return False
    path = trace.path
    if not path or path[0] != trace.source or path[-1] != trace.target:
        return False
    for u, v in zip(path, path[1:]):
        if not graph.has_edge(u, v):
            return False
    return abs(path_weight(graph, path) - trace.weight) < 1e-6


def evaluate_routing(scheme, graph: WeightedGraph,
                     pairs: Optional[Iterable[Tuple[Hashable, Hashable]]] = None,
                     exact: Optional[Dict[Hashable, Dict[Hashable, float]]] = None,
                     ) -> StretchReport:
    """Trace routes for the given pairs and aggregate stretch statistics."""
    exact = exact if exact is not None else all_pairs_weighted_distances(graph)
    pair_list = list(pairs) if pairs is not None else sample_pairs(graph.nodes())
    report = StretchReport(pairs=len(pair_list))
    stretches: List[float] = []
    for u, v in pair_list:
        trace = scheme.route(u, v)
        if not trace.delivered or not validate_route(graph, trace):
            report.failures.append((u, v))
            continue
        report.delivered += 1
        report.fallback_hops += trace.fallback_hops
        d = exact[u][v]
        stretches.append(trace.weight / d if d > 0 else 1.0)
    if stretches:
        stretches.sort()
        report.max_stretch = stretches[-1]
        report.mean_stretch = sum(stretches) / len(stretches)
        report.p95_stretch = stretches[min(len(stretches) - 1,
                                           int(0.95 * len(stretches)))]
    return report


def evaluate_distance_estimates(scheme, graph: WeightedGraph,
                                pairs: Optional[Iterable[Tuple[Hashable, Hashable]]] = None,
                                exact: Optional[Dict[Hashable, Dict[Hashable, float]]] = None,
                                ) -> StretchReport:
    """Audit ``scheme.distance`` estimates: must never undershoot, stretch aggregated."""
    exact = exact if exact is not None else all_pairs_weighted_distances(graph)
    pair_list = list(pairs) if pairs is not None else sample_pairs(graph.nodes())
    report = StretchReport(pairs=len(pair_list))
    stretches: List[float] = []
    for u, v in pair_list:
        est = scheme.distance(u, v)
        d = exact[u][v]
        if est is None or est == float("inf") or est < d - 1e-6:
            report.failures.append((u, v))
            continue
        report.delivered += 1
        stretches.append(est / d if d > 0 else 1.0)
    if stretches:
        stretches.sort()
        report.max_stretch = stretches[-1]
        report.mean_stretch = sum(stretches) / len(stretches)
        report.p95_stretch = stretches[min(len(stretches) - 1,
                                           int(0.95 * len(stretches)))]
    return report
