"""Unweighted ``(S, h, sigma)``-source detection (Lenzen–Peleg).

The paper's key building block (Definition 2.1) is the source detection
problem of [10] (Lenzen & Peleg, PODC 2013): given sources ``S``, every node
must learn the ``sigma`` lexicographically smallest ``(distance, source)``
pairs among sources within ``h`` hops.  On unweighted graphs this is solvable
deterministically in ``h + sigma`` rounds, and — crucially for Lemma 3.4 — a
node needs to broadcast at most ``O(sigma^2)`` messages overall.

This module provides three interchangeable engines, selectable by name via
the :data:`DETECTION_ENGINES` registry / :func:`detect_sources` dispatcher:

* ``"logical"`` — :func:`detect_sources_logical`, a centralized computation
  of the exact output the distributed algorithm produces (the problem is
  deterministic, so the output is unique).  One pruned Dijkstra *per source*;
  supports integer *edge lengths*, which is how the virtual subdivided graphs
  ``G_i`` of Section 3 are handled without materialising them.
* ``"batched"`` — :func:`detect_sources_batched`, a single lexicographic
  multi-source Dijkstra in which every node retains at most ``sigma``
  ``(distance, source)`` labels and only surviving labels propagate.  This is
  the centralized mirror of the paper's key insight (a node never needs more
  than its top-``sigma`` labels): total cost ``O(sigma * (m + n log n))``
  *independent of* ``|S|``, versus ``O(|S| * (m + n log n))`` for the
  per-source engine.  Output lists are identical to ``"logical"``.
* ``"simulate"`` — :class:`LenzenPelegSourceDetection`, the faithful
  per-round CONGEST algorithm, run via
  :class:`~repro.congest.network.CongestNetwork` on an explicitly subdivided
  graph (see :func:`expand_with_edge_lengths`).  It measures real rounds and
  per-node broadcast counts and optionally applies the Lemma 3.4 message cap.

Tests assert the engines agree list-for-list.

Boundary semantics: the detection engines accept the degenerate parameters
``h = 0`` (only sources detect themselves, at distance 0) and ``sigma = 0``
(every output list is empty).  These instances are well-defined by
Definition 2.1, whereas the PDE solver (:func:`repro.core.pde.solve_pde`)
rejects ``h < 1`` / ``sigma < 1`` because the guarantees of Definition 2.2 /
Theorem 3.3 are vacuous there; see its docstring.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from itertools import count
from typing import Callable, Dict, Hashable, List, Optional, Set, Tuple

from ..congest.message import BROADCAST, Message
from ..congest.metrics import CongestMetrics
from ..congest.network import CongestNetwork
from ..congest.node import CongestAlgorithm, NodeView
from ..graphs.weighted_graph import WeightedGraph

__all__ = [
    "DetectionEntry",
    "SourceDetectionResult",
    "DETECTION_ENGINES",
    "IntAdjacency",
    "detect_sources",
    "detect_sources_logical",
    "detect_sources_batched",
    "LenzenPelegSourceDetection",
    "expand_with_edge_lengths",
    "run_source_detection_simulation",
    "lemma34_message_cap",
]

#: Edge length callback: maps ``(u, v, weight)`` to a positive integer length.
LengthFn = Callable[[Hashable, Hashable, int], int]


@dataclass(frozen=True)
class DetectionEntry:
    """One list entry: a detected source, its distance and the next hop toward it."""

    distance: int
    source: Hashable
    next_hop: Optional[Hashable] = None

    def key(self) -> Tuple[int, str]:
        """Lexicographic sort key ``(distance, source)`` used by the paper."""
        return (self.distance, repr(self.source))


@dataclass
class SourceDetectionResult:
    """Output of an ``(S, h, sigma)``-detection instance.

    Attributes
    ----------
    lists:
        ``lists[v]`` is the (up to) ``sigma``-entry prefix of ``L_v^{(h)}``.
    h, sigma:
        The instance parameters.
    metrics:
        Round/message accounting (measured for the simulator, analytic for
        the logical engine).
    """

    lists: Dict[Hashable, List[DetectionEntry]]
    h: int
    sigma: int
    metrics: CongestMetrics = field(default_factory=CongestMetrics)

    def distance(self, node: Hashable, source: Hashable) -> Optional[int]:
        """Distance to ``source`` in ``node``'s list, or ``None`` if absent."""
        for entry in self.lists.get(node, []):
            if entry.source == source:
                return entry.distance
        return None

    def sources_of(self, node: Hashable) -> List[Hashable]:
        return [entry.source for entry in self.lists.get(node, [])]


def lemma34_message_cap(sigma: int) -> int:
    """The broadcast cap of Lemma 3.4: ``sum_{i=1}^{sigma} i`` messages per node."""
    return sigma * (sigma + 1) // 2


# ----------------------------------------------------------------------
# logical engine
# ----------------------------------------------------------------------
def detect_sources_logical(graph: WeightedGraph, sources: Set[Hashable], h: int,
                           sigma: int, edge_length: Optional[LengthFn] = None,
                           ) -> SourceDetectionResult:
    """Compute the exact output of ``(S, h, sigma)``-detection.

    ``edge_length`` reinterprets each edge as a path of that many unit edges
    (the virtual graph ``G_i`` of Section 3); by default every edge has
    length 1, i.e. the graph is treated as unweighted.

    The per-node output is the lexicographically-sorted prefix of
    ``{(d(v, s), s) : s in S, d(v, s) <= h}`` of length at most ``sigma``,
    where ``d`` is the (length-weighted) hop distance.  Next hops point along
    a corresponding shortest path.

    The degenerate boundaries ``h = 0`` (sources detect only themselves) and
    ``sigma = 0`` (all lists empty) are accepted; only negative parameters
    are rejected.  Note that :func:`repro.core.pde.solve_pde` is stricter and
    requires ``h >= 1`` and ``sigma >= 1`` (see the module docstring).
    """
    if h < 0 or sigma < 0:
        raise ValueError("h and sigma must be non-negative")
    length = edge_length if edge_length is not None else (lambda u, v, w: 1)

    best: Dict[Hashable, Dict[Hashable, Tuple[int, Optional[Hashable]]]] = {
        v: {} for v in graph.nodes()
    }
    for s in sorted(sources, key=repr):
        if not graph.has_node(s):
            raise ValueError(f"source {s!r} is not a node of the graph")
        # Dijkstra with integer edge lengths, pruned at distance h.
        dist: Dict[Hashable, int] = {s: 0}
        parent: Dict[Hashable, Optional[Hashable]] = {s: None}
        heap: List[Tuple[int, Hashable]] = [(0, s)]
        settled: Set[Hashable] = set()
        while heap:
            d, u = heapq.heappop(heap)
            if u in settled or d > h:
                continue
            settled.add(u)
            for v, w in graph.neighbor_weights(u).items():
                nd = d + max(1, int(length(u, v, w)))
                if nd <= h and nd < dist.get(v, h + 1):
                    dist[v] = nd
                    parent[v] = u
                    heapq.heappush(heap, (nd, v))
        for v, d in dist.items():
            if d <= h:
                # ``parent[v]`` is the predecessor on the path from s to v,
                # i.e. the next hop from v toward s.
                best[v][s] = (d, parent[v])

    lists: Dict[Hashable, List[DetectionEntry]] = {}
    for v in graph.nodes():
        entries = [
            DetectionEntry(distance=d, source=s, next_hop=nh)
            for s, (d, nh) in best[v].items()
        ]
        entries.sort(key=lambda e: e.key())
        lists[v] = entries[:sigma]

    metrics = CongestMetrics(rounds=h + sigma, measured=False)
    return SourceDetectionResult(lists=lists, h=h, sigma=sigma, metrics=metrics)


# ----------------------------------------------------------------------
# batched engine
# ----------------------------------------------------------------------
#: Precomputed directed adjacency with integer lengths:
#: ``adjacency[v] = [(u, length), ...]`` for every node ``v``.
IntAdjacency = Dict[Hashable, List[Tuple[Hashable, int]]]


def detect_sources_batched(graph: WeightedGraph, sources: Set[Hashable], h: int,
                           sigma: int, edge_length: Optional[LengthFn] = None,
                           adjacency: Optional[IntAdjacency] = None,
                           ) -> SourceDetectionResult:
    """Compute ``(S, h, sigma)``-detection with one multi-source Dijkstra.

    Instead of one pruned Dijkstra per source, a single search settles
    ``(distance, source)`` labels in global lexicographic order and keeps at
    most ``sigma`` labels per node; only settled (i.e. surviving top-``sigma``)
    labels propagate to neighbours.  This is exactly the pruning the paper's
    distributed algorithm performs: if a source ``s`` is among the ``sigma``
    lexicographically smallest for ``v`` and ``w`` lies on a shortest
    ``v``-``s`` path, then ``s`` is among the ``sigma`` smallest for ``w`` as
    well (any label beating ``s`` at ``w`` extends to a label beating ``s``
    at ``v``).  Hence truncating to ``sigma`` labels per node never loses an
    output entry, and the produced lists are identical to
    :func:`detect_sources_logical`.

    Cost is ``O(sigma * (m + n log n))`` heap operations, independent of
    ``|S|``.  Next hops point along a shortest path realising the listed
    distance (they may differ from the per-source engine's choice when
    multiple shortest paths exist; the ``(distance, source)`` lists do not).

    Accepts the same degenerate boundaries as the logical engine: ``h = 0``
    and ``sigma = 0``.

    ``adjacency`` optionally supplies the integer-length adjacency
    ``{v: [(u, length), ...]}`` (one entry per node of ``graph``, lengths
    equal to ``max(1, int(edge_length(v, u, w)))``) so callers solving many
    detection instances on the same graph — the PDE solver iterating
    rounding levels, and parallel build workers — hoist the materialisation
    out of this function instead of paying it per call.  When given,
    ``edge_length`` is ignored; the caller owns the equivalence.
    """
    if h < 0 or sigma < 0:
        raise ValueError("h and sigma must be non-negative")
    length = edge_length if edge_length is not None else (lambda u, v, w: 1)
    for s in sources:
        if not graph.has_node(s):
            raise ValueError(f"source {s!r} is not a node of the graph")

    lists: Dict[Hashable, List[DetectionEntry]] = {v: [] for v in graph.nodes()}
    if sigma == 0:
        metrics = CongestMetrics(rounds=h + sigma, measured=False)
        return SourceDetectionResult(lists=lists, h=h, sigma=sigma, metrics=metrics)

    # Tentative labels: best[v][s] = (distance, next hop from v toward s).
    best: Dict[Hashable, Dict[Hashable, Tuple[int, Optional[Hashable]]]] = {
        v: {} for v in graph.nodes()
    }
    # Sources settled per node, in lexicographic (distance, repr(source))
    # order — lists[v] is therefore built already sorted.
    done: Dict[Hashable, Set[Hashable]] = {v: set() for v in graph.nodes()}

    # Directed adjacency with the integer lengths materialised once (unless
    # the caller hoisted it): each edge is otherwise re-measured on every
    # one of its up-to-sigma relaxations, and the length callback dominates
    # the inner loop.
    if adjacency is None:
        adjacency = {
            v: [(u, max(1, int(length(v, u, w))))
                for u, w in graph.neighbor_weights(v).items()]
            for v in graph.nodes()
        }

    # Heap keys are (distance, source rank, tiebreak) where ranks enumerate
    # the sources in repr order — integer comparisons instead of string
    # comparisons, matching the paper's lexicographic (distance, source)
    # order.  Node and source ride along as payload because arbitrary
    # Hashables need not be comparable.
    tiebreak = count()
    heap: List[Tuple[int, int, int, Hashable, Hashable]] = []
    for rank, s in enumerate(sorted(sources, key=repr)):
        best[s][s] = (0, None)
        heapq.heappush(heap, (0, rank, next(tiebreak), s, s))

    while heap:
        d, srank, _, v, s = heapq.heappop(heap)
        done_v = done[v]
        if s in done_v or len(done_v) >= sigma:
            continue
        current = best[v].get(s)
        if current is None or current[0] != d:
            continue  # stale entry superseded by a shorter label
        done_v.add(s)
        lists[v].append(DetectionEntry(distance=d, source=s, next_hop=current[1]))
        if d == h:
            continue  # any relaxation would exceed the horizon
        for u, step in adjacency[v]:
            # A node with a full list settles no further labels, and every
            # future label is lexicographically larger than its sigma-th
            # settled one — skip the push outright.
            done_u = done[u]
            if len(done_u) >= sigma or s in done_u:
                continue
            nd = d + step
            if nd <= h and nd < best[u].get(s, (h + 1,))[0]:
                best[u][s] = (nd, v)
                heapq.heappush(heap, (nd, srank, next(tiebreak), u, s))

    metrics = CongestMetrics(rounds=h + sigma, measured=False)
    return SourceDetectionResult(lists=lists, h=h, sigma=sigma, metrics=metrics)


# ----------------------------------------------------------------------
# faithful CONGEST algorithm
# ----------------------------------------------------------------------
class LenzenPelegSourceDetection(CongestAlgorithm):
    """The deterministic source-detection algorithm of [10] on unweighted graphs.

    Per round, each node broadcasts the lexicographically smallest
    ``(distance, source)`` pair it knows, has not broadcast yet, and that
    currently belongs to its top-``sigma`` list.  After ``h + sigma`` rounds
    every node's top-``sigma`` list restricted to distance ``<= h`` is
    correct.

    ``message_cap=True`` applies the stopping rule of Lemma 3.4: a node stops
    broadcasting after ``sigma * (sigma + 1) / 2`` messages.
    """

    def __init__(self, sources: Set[Hashable], h: int, sigma: int,
                 message_cap: bool = True) -> None:
        self.sources = set(sources)
        self.h = h
        self.sigma = sigma
        self.message_cap = message_cap

    def init_state(self, view: NodeView) -> Dict[str, object]:
        known: Dict[Hashable, Tuple[int, Optional[Hashable]]] = {}
        if view.node_id in self.sources:
            known[view.node_id] = (0, None)
        return {
            "known": known,          # source -> (distance, via-neighbour)
            "sent": set(),           # set of (distance, repr(source)) already broadcast
            "broadcast_count": 0,
        }

    # -- helpers -------------------------------------------------------
    def _top_entries(self, state) -> List[Tuple[int, Hashable]]:
        entries = sorted(
            ((d, s) for s, (d, _) in state["known"].items()),
            key=lambda item: (item[0], repr(item[1])),
        )
        return entries[: self.sigma]

    def generate(self, view: NodeView, state, round_index: int):
        if self.message_cap and state["broadcast_count"] >= lemma34_message_cap(self.sigma):
            return []
        for d, s in self._top_entries(state):
            if (d, repr(s)) not in state["sent"]:
                state["sent"].add((d, repr(s)))
                state["broadcast_count"] += 1
                return [(BROADCAST, Message(("sd", d, s)))]
        return []

    def receive(self, view: NodeView, state, round_index: int, inbox):
        for sender, msg in inbox:
            tag, d, s = msg.payload
            if tag != "sd":
                continue
            nd = d + 1
            current = state["known"].get(s)
            if current is None or nd < current[0]:
                state["known"][s] = (nd, sender)

    def output(self, view: NodeView, state) -> List[DetectionEntry]:
        entries = [
            DetectionEntry(distance=d, source=s, next_hop=via)
            for s, (d, via) in state["known"].items()
            if d <= self.h
        ]
        entries.sort(key=lambda e: e.key())
        return entries[: self.sigma]


# ----------------------------------------------------------------------
# virtual subdivided graphs
# ----------------------------------------------------------------------
def expand_with_edge_lengths(graph: WeightedGraph, edge_length: LengthFn,
                             cap: int) -> Tuple[WeightedGraph, Set[Hashable]]:
    """Materialise the virtual graph ``G_i``: replace each edge by a unit path.

    Each edge of length ``L`` (per ``edge_length``) becomes a path of
    ``min(L, cap)`` unit edges through fresh virtual nodes.  ``cap`` should be
    one more than the detection horizon: a capped edge then contributes a
    distance larger than the horizon, so capping never creates spurious
    in-horizon paths while keeping the expansion size bounded.

    Returns the expanded graph and the set of original ("real") nodes.
    """
    if cap < 1:
        raise ValueError("cap must be >= 1")
    expanded = WeightedGraph()
    real_nodes = set(graph.nodes())
    for node in graph.nodes():
        expanded.add_node(node)
    for u, v, w in graph.edges():
        length = min(max(1, int(edge_length(u, v, w))), cap)
        if length == 1:
            expanded.add_edge(u, v, 1)
            continue
        prev = u
        for idx in range(1, length):
            virt = ("virt", repr(u), repr(v), idx)
            expanded.add_edge(prev, virt, 1)
            prev = virt
        expanded.add_edge(prev, v, 1)
    return expanded, real_nodes


def _map_next_hop(graph: WeightedGraph, node: Hashable,
                  next_hop: Optional[Hashable]) -> Optional[Hashable]:
    """Map a next hop in the expanded graph back to a real neighbour.

    If the next hop is a virtual node ``("virt", repr(u), repr(v), idx)``,
    the real next hop from ``node`` is the endpoint of that subdivided edge
    other than ``node``.

    Raises :class:`ValueError` when the virtual node cannot be mapped back to
    a real neighbour of ``node`` — that means the simulation produced a next
    hop inconsistent with the original topology (e.g. a corrupted virtual
    node name), which previously degraded silently into a ``None`` next hop.
    """
    if not (isinstance(next_hop, tuple) and len(next_hop) == 4
            and next_hop[0] == "virt"):
        return next_hop
    _, u_repr, v_repr, _ = next_hop
    target_repr = u_repr if repr(node) == v_repr else v_repr
    for nbr in graph.neighbors(node):
        if repr(nbr) == target_repr:
            return nbr
    raise ValueError(
        f"cannot map virtual next hop {next_hop!r} back to a real neighbour "
        f"of {node!r}: no neighbour has repr {target_repr!r}")


def run_source_detection_simulation(graph: WeightedGraph, sources: Set[Hashable],
                                    h: int, sigma: int,
                                    edge_length: Optional[LengthFn] = None,
                                    message_cap: bool = True,
                                    ) -> SourceDetectionResult:
    """Run the faithful CONGEST source-detection algorithm.

    With ``edge_length`` given, the algorithm runs on the virtual subdivided
    graph (capped at ``h + 1``); next hops and metrics are mapped back to the
    original nodes.  Broadcast counts of virtual relay nodes are attributed
    to the original edge's endpoint closer to the source side; since the
    paper's Lemma 3.4 bounds broadcasts of *original* nodes, the metrics
    expose only those.
    """
    if edge_length is None:
        run_graph, real_nodes = graph, set(graph.nodes())
    else:
        run_graph, real_nodes = expand_with_edge_lengths(graph, edge_length, h + 1)

    algorithm = LenzenPelegSourceDetection(sources, h, sigma, message_cap=message_cap)
    network = CongestNetwork(run_graph, algorithm)
    metrics = network.run(max_rounds=h + sigma)
    outputs = network.outputs()

    lists: Dict[Hashable, List[DetectionEntry]] = {}
    for node in graph.nodes():
        entries = []
        for entry in outputs[node]:
            mapped = _map_next_hop(graph, node, entry.next_hop)
            entries.append(DetectionEntry(entry.distance, entry.source, mapped))
        lists[node] = entries

    # Restrict broadcast accounting to real nodes.
    metrics.broadcasts_per_node = {
        node: cnt for node, cnt in metrics.broadcasts_per_node.items()
        if node in real_nodes
    }
    return SourceDetectionResult(lists=lists, h=h, sigma=sigma, metrics=metrics)


# ----------------------------------------------------------------------
# engine registry
# ----------------------------------------------------------------------
#: Named detection engines.  All produce identical ``(distance, source)``
#: lists; they differ in cost model and metrics (see the module docstring).
DETECTION_ENGINES: Dict[str, Callable[..., SourceDetectionResult]] = {
    "logical": detect_sources_logical,
    "batched": detect_sources_batched,
    "simulate": run_source_detection_simulation,
}


def detect_sources(graph: WeightedGraph, sources: Set[Hashable], h: int,
                   sigma: int, edge_length: Optional[LengthFn] = None,
                   engine: str = "batched", **engine_kwargs,
                   ) -> SourceDetectionResult:
    """Solve ``(S, h, sigma)``-detection with the named engine.

    ``engine`` selects from :data:`DETECTION_ENGINES` (``"batched"`` by
    default — the fastest engine with output identical to ``"logical"``).
    Extra keyword arguments are forwarded to the engine; only ``"simulate"``
    accepts any (``message_cap``).
    """
    try:
        fn = DETECTION_ENGINES[engine]
    except KeyError:
        raise ValueError(
            f"unknown detection engine {engine!r}; "
            f"available: {sorted(DETECTION_ENGINES)}") from None
    return fn(graph, sources, h, sigma, edge_length=edge_length, **engine_kwargs)
