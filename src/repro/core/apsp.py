"""Deterministic ``(1+eps)``-approximate APSP — Theorem 4.1.

Instantiating partial distance estimation with ``S = V`` and
``h = sigma = n`` yields, for every pair ``(v, w)``, an estimate
``wd'(v, w) <= (1+eps) * wd(v, w)`` (every pair has a minimum-hop shortest
path of fewer than ``n`` hops), deterministically, in ``O(n log n / eps^2)``
rounds.  This improves the previously best known algorithm [14] by
derandomizing it and saving a ``Theta(log n)`` factor.

The module wraps :func:`repro.core.pde.solve_pde` with the Theorem 4.1
parameters and adds stretch auditing utilities used by tests and by the
APSP benchmark (experiment E2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from ..congest.metrics import CongestMetrics
from ..graphs.distances import all_pairs_weighted_distances
from ..graphs.weighted_graph import WeightedGraph
from .pde import PDEResult, solve_pde

__all__ = ["APSPResult", "approximate_apsp", "stretch_statistics"]


@dataclass
class APSPResult:
    """All-pairs distance estimates produced by the Theorem 4.1 algorithm."""

    epsilon: float
    estimates: Dict[Hashable, Dict[Hashable, float]]
    next_hops: Dict[Hashable, Dict[Hashable, Optional[Hashable]]]
    metrics: CongestMetrics = field(default_factory=CongestMetrics)
    pde: Optional[PDEResult] = None

    def estimate(self, u: Hashable, v: Hashable) -> float:
        if u == v:
            return 0.0
        return self.estimates.get(u, {}).get(v, float("inf"))

    def next_hop(self, u: Hashable, v: Hashable) -> Optional[Hashable]:
        return self.next_hops.get(u, {}).get(v)

    def stretch_audit(self, graph: WeightedGraph,
                      exact: Optional[Dict[Hashable, Dict[Hashable, float]]] = None
                      ) -> Dict[str, float]:
        """Compare the estimates against exact distances.

        Returns max/mean stretch and the number of missing or infeasible
        (below-exact) entries; a correct run has zero of both and max stretch
        at most ``1 + eps`` (up to floating-point slack).
        """
        exact = exact if exact is not None else all_pairs_weighted_distances(graph)
        return stretch_statistics(self.estimates, exact)


def approximate_apsp(graph: WeightedGraph, epsilon: float,
                     engine: str = "batched") -> APSPResult:
    """Theorem 4.1: deterministic ``(1+eps)``-approximate APSP.

    Runs ``(1+eps)``-approximate ``(V, n, n)``-estimation.  Every node ends up
    with an estimate for every other node, because every pair is connected by
    a minimum-hop shortest path of at most ``n - 1 < n`` hops.
    """
    n = graph.num_nodes
    if n < 2:
        raise ValueError("APSP needs at least two nodes")
    pde = solve_pde(graph, graph.nodes(), h=n, sigma=n, epsilon=epsilon,
                    engine=engine, store_levels=False)
    estimates = {v: dict(pde.estimates[v]) for v in graph.nodes()}
    next_hops = {v: dict(pde.next_hops[v]) for v in graph.nodes()}
    return APSPResult(epsilon=epsilon, estimates=estimates, next_hops=next_hops,
                      metrics=pde.metrics, pde=pde)


def stretch_statistics(estimates: Dict[Hashable, Dict[Hashable, float]],
                       exact: Dict[Hashable, Dict[Hashable, float]]
                       ) -> Dict[str, float]:
    """Stretch statistics of a distance-estimate table against ground truth."""
    stretches: List[float] = []
    missing = 0
    infeasible = 0
    for u, row in exact.items():
        for v, d in row.items():
            if u == v:
                continue
            est = estimates.get(u, {}).get(v)
            if est is None or est == float("inf"):
                missing += 1
                continue
            if est < d - 1e-9:
                infeasible += 1
                continue
            stretches.append(est / d if d > 0 else 1.0)
    if not stretches:
        return {"max_stretch": float("inf"), "mean_stretch": float("inf"),
                "pairs": 0, "missing": missing, "infeasible": infeasible}
    return {
        "max_stretch": max(stretches),
        "mean_stretch": sum(stretches) / len(stretches),
        "pairs": len(stretches),
        "missing": missing,
        "infeasible": infeasible,
    }
