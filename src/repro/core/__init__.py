"""The paper's primary contribution: source detection, rounding, PDE, APSP."""

from .source_detection import (
    DETECTION_ENGINES,
    DetectionEntry,
    SourceDetectionResult,
    detect_sources,
    detect_sources_batched,
    detect_sources_logical,
    run_source_detection_simulation,
    LenzenPelegSourceDetection,
    expand_with_edge_lengths,
    lemma34_message_cap,
)
from .weight_rounding import RoundingScheme
from .pde import PDEEntry, PDEResult, pde_engine_names, solve_pde
from .detection_exact import (
    ExactDetectionEntry,
    ExactDetectionResult,
    exact_weighted_detection,
    ExactDetectionProtocol,
    run_exact_detection_simulation,
)
from .apsp import APSPResult, approximate_apsp, stretch_statistics

__all__ = [
    "DETECTION_ENGINES",
    "DetectionEntry",
    "SourceDetectionResult",
    "detect_sources",
    "detect_sources_batched",
    "detect_sources_logical",
    "run_source_detection_simulation",
    "LenzenPelegSourceDetection",
    "expand_with_edge_lengths",
    "lemma34_message_cap",
    "RoundingScheme",
    "PDEEntry",
    "PDEResult",
    "pde_engine_names",
    "solve_pde",
    "ExactDetectionEntry",
    "ExactDetectionResult",
    "exact_weighted_detection",
    "ExactDetectionProtocol",
    "run_exact_detection_simulation",
    "APSPResult",
    "approximate_apsp",
    "stretch_statistics",
]
