"""Exact weighted ``(S, h, sigma)``-detection under ``h``-hop distances.

Section 1 of the paper ("Technical Discussion") recalls that the exact
weighted variant of source detection — where distances are the ``h``-hop
distances ``wd_h`` — can be solved in ``sigma * h`` rounds using techniques
analogous to the unweighted case, and that this bound is worst-case optimal
(Figure 1).  This module provides:

* :func:`exact_weighted_detection` — the centralized computation of the
  exact output (``h`` rounds of multi-source Bellman–Ford, per-node
  top-``sigma`` lists), with the ``sigma * h`` round bound attached as an
  analytic metric.
* :class:`ExactDetectionProtocol` — a faithful CONGEST protocol that floods
  improved ``(distance, hops, source)`` triples, at most one per node per
  round, restricted to entries currently in the node's top-``sigma`` list.
  It is used by the Figure 1 benchmark (experiment E1) to measure how many
  messages actually cross the bottleneck edge, the quantity the lower bound
  argues about.

The protocol keeps, per source, the Pareto frontier of ``(hops, distance)``
pairs so that ``h``-hop distances are computed exactly even when a shorter
path has more hops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set, Tuple

from ..congest.message import BROADCAST, Message
from ..congest.metrics import CongestMetrics
from ..congest.network import CongestNetwork
from ..congest.node import CongestAlgorithm, NodeView
from ..graphs.weighted_graph import WeightedGraph

__all__ = [
    "ExactDetectionEntry",
    "ExactDetectionResult",
    "exact_weighted_detection",
    "ExactDetectionProtocol",
    "run_exact_detection_simulation",
]


@dataclass(frozen=True)
class ExactDetectionEntry:
    """A detected source with its ``h``-hop distance and hop count."""

    distance: float
    source: Hashable
    hops: int
    next_hop: Optional[Hashable] = None

    def key(self) -> Tuple[float, str]:
        return (self.distance, repr(self.source))


@dataclass
class ExactDetectionResult:
    lists: Dict[Hashable, List[ExactDetectionEntry]]
    h: int
    sigma: int
    metrics: CongestMetrics = field(default_factory=CongestMetrics)

    def distance(self, node: Hashable, source: Hashable) -> Optional[float]:
        for entry in self.lists.get(node, []):
            if entry.source == source:
                return entry.distance
        return None


# ----------------------------------------------------------------------
# centralized reference computation
# ----------------------------------------------------------------------
def exact_weighted_detection(graph: WeightedGraph, sources: Set[Hashable], h: int,
                             sigma: int) -> ExactDetectionResult:
    """Exact ``(S, h, sigma)``-detection with respect to ``h``-hop distances.

    Runs ``h`` Bellman–Ford relaxation rounds per source (tracking, for every
    node, the best distance achievable with each hop budget) and returns the
    per-node top-``sigma`` lists.  The attached analytic round bound is
    ``sigma * h`` (the cost of the naive pipelined distributed solution the
    paper discusses).
    """
    if h < 0 or sigma < 0:
        raise ValueError("h and sigma must be non-negative")
    per_node: Dict[Hashable, Dict[Hashable, Tuple[float, int, Optional[Hashable]]]] = {
        v: {} for v in graph.nodes()
    }
    for s in sorted(sources, key=repr):
        if not graph.has_node(s):
            raise ValueError(f"source {s!r} is not a node of the graph")
        # dist_by_hops[v] = best weight of an s-v path using at most the
        # current number of relaxation rounds.
        dist: Dict[Hashable, float] = {s: 0.0}
        via: Dict[Hashable, Optional[Hashable]] = {s: None}
        hops_of: Dict[Hashable, int] = {s: 0}
        frontier = {s}
        for hop in range(1, h + 1):
            updates: Dict[Hashable, Tuple[float, Hashable]] = {}
            for u in frontier:
                du = dist[u]
                for v, w in graph.neighbor_weights(u).items():
                    nd = du + w
                    if nd < dist.get(v, float("inf")) and nd < updates.get(v, (float("inf"), None))[0]:
                        updates[v] = (nd, u)
            frontier = set()
            for v, (nd, u) in updates.items():
                if nd < dist.get(v, float("inf")):
                    dist[v] = nd
                    via[v] = u
                    hops_of[v] = hop
                    frontier.add(v)
            if not frontier:
                break
        for v, d in dist.items():
            per_node[v][s] = (d, hops_of[v], via[v])

    lists: Dict[Hashable, List[ExactDetectionEntry]] = {}
    for v in graph.nodes():
        entries = [
            ExactDetectionEntry(distance=d, source=s, hops=hp, next_hop=nh)
            for s, (d, hp, nh) in per_node[v].items()
        ]
        entries.sort(key=lambda e: e.key())
        lists[v] = entries[:sigma]
    metrics = CongestMetrics(rounds=sigma * h, measured=False)
    return ExactDetectionResult(lists=lists, h=h, sigma=sigma, metrics=metrics)


# ----------------------------------------------------------------------
# faithful CONGEST protocol
# ----------------------------------------------------------------------
class ExactDetectionProtocol(CongestAlgorithm):
    """Flood ``(distance, hops, source)`` triples, one message per node per round.

    Every node maintains, per source, the Pareto frontier of
    ``(hops, distance)`` pairs reachable so far (restricted to ``hops <= h``).
    Each round it broadcasts the lexicographically smallest not-yet-broadcast
    ``(distance, source, hops)`` triple among those whose source currently
    ranks in its top-``sigma``.  The protocol converges once no node has a
    pending announcement; the driver runs it to quiescence.
    """

    def __init__(self, sources: Set[Hashable], h: int, sigma: int,
                 restrict_to_top_sigma: bool = True) -> None:
        self.sources = set(sources)
        self.h = h
        self.sigma = sigma
        self.restrict_to_top_sigma = restrict_to_top_sigma

    def init_state(self, view: NodeView):
        frontier: Dict[Hashable, List[Tuple[int, float, Optional[Hashable]]]] = {}
        if view.node_id in self.sources:
            frontier[view.node_id] = [(0, 0.0, None)]
        return {"pareto": frontier, "sent": set(), "idle_rounds": 0}

    # -- helpers -------------------------------------------------------
    @staticmethod
    def _insert_pareto(points: List[Tuple[int, float, Optional[Hashable]]],
                       hops: int, dist: float, via: Optional[Hashable]) -> bool:
        """Insert ``(hops, dist)`` if not dominated; drop dominated points."""
        for (ph, pd, _) in points:
            if ph <= hops and pd <= dist:
                return False
        points[:] = [(ph, pd, pv) for ph, pd, pv in points
                     if not (hops <= ph and dist <= pd)]
        points.append((hops, dist, via))
        return True

    def _best_distance(self, points: List[Tuple[int, float, Optional[Hashable]]]) -> float:
        return min((d for _, d, _ in points), default=float("inf"))

    def _candidates(self, state) -> List[Tuple[float, Hashable, int]]:
        ranked = sorted(
            ((self._best_distance(pts), s) for s, pts in state["pareto"].items()),
            key=lambda item: (item[0], repr(item[1])),
        )
        allowed = {s for _, s in (ranked[: self.sigma] if self.restrict_to_top_sigma
                                  else ranked)}
        cands = []
        for s, pts in state["pareto"].items():
            if s not in allowed:
                continue
            for hops, dist, _ in pts:
                if (dist, repr(s), hops) not in state["sent"]:
                    cands.append((dist, s, hops))
        cands.sort(key=lambda item: (item[0], repr(item[1]), item[2]))
        return cands

    def generate(self, view: NodeView, state, round_index: int):
        cands = self._candidates(state)
        if not cands:
            state["idle_rounds"] += 1
            return []
        dist, s, hops = cands[0]
        state["sent"].add((dist, repr(s), hops))
        state["idle_rounds"] = 0
        return [(BROADCAST, Message(("xd", dist, s, hops)))]

    def receive(self, view: NodeView, state, round_index: int, inbox):
        for sender, msg in inbox:
            tag, dist, s, hops = msg.payload
            if tag != "xd" or hops + 1 > self.h:
                continue
            weight = view.neighbor_weights[sender]
            points = state["pareto"].setdefault(s, [])
            self._insert_pareto(points, hops + 1, dist + weight, sender)

    def finished(self, view: NodeView, state, round_index: int) -> bool:
        # A node is quiescent when it has had nothing new to say for a while;
        # the driver additionally bounds the total number of rounds.
        return state["idle_rounds"] >= 2 and not self._candidates(state)

    def output(self, view: NodeView, state) -> List[ExactDetectionEntry]:
        entries = []
        for s, pts in state["pareto"].items():
            best = min(pts, key=lambda p: p[1])
            entries.append(ExactDetectionEntry(
                distance=best[1], source=s, hops=best[0], next_hop=best[2]))
        entries.sort(key=lambda e: e.key())
        return entries[: self.sigma]


def run_exact_detection_simulation(graph: WeightedGraph, sources: Set[Hashable],
                                   h: int, sigma: int, max_rounds: Optional[int] = None,
                                   restrict_to_top_sigma: bool = True,
                                   ) -> ExactDetectionResult:
    """Run :class:`ExactDetectionProtocol` on the CONGEST simulator."""
    protocol = ExactDetectionProtocol(sources, h, sigma,
                                      restrict_to_top_sigma=restrict_to_top_sigma)
    network = CongestNetwork(graph, protocol)
    budget = max_rounds if max_rounds is not None else 4 * (sigma * h + graph.num_nodes)
    metrics = network.run(max_rounds=budget)
    outputs = network.outputs()
    return ExactDetectionResult(lists=outputs, h=h, sigma=sigma, metrics=metrics)
