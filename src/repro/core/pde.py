"""Partial Distance Estimation (PDE) — Theorem 3.3 and Corollary 3.5.

``(1+eps)``-approximate ``(S, h, sigma)``-estimation (Definition 2.2) asks
for a distance function ``wd'`` with

* ``wd'(v, s) >= wd(v, s)`` for all ``v`` and sources ``s``, and
* ``wd'(v, s) <= (1+eps) * wd(v, s)`` whenever the minimum-hop shortest path
  from ``v`` to ``s`` has at most ``h`` hops,

and for each node the prefix ``L_v`` of the (up to) ``sigma`` smallest
``(wd'(v, s), s)`` pairs.

The solver follows the construction of Theorem 3.3 exactly:

1. Build the rounding levels ``i = 0..imax`` (:class:`RoundingScheme`).
2. Per level, solve unweighted ``(S, h', sigma)``-detection on the virtual
   graph ``G_i`` (edge ``e`` subdivided into ``ceil(W(e)/b(i))`` unit edges)
   with horizon ``h' in O(h/eps)``.
3. Combine: ``wd~(v, s) = min_i b(i) * hd_i(v, s)`` over levels where ``s``
   appears in the level list ``L_{v,i}``; output the top ``sigma`` entries.

Three engines are available (the registry of
:mod:`repro.core.source_detection`):

* ``engine="batched"`` (default) — per-level detection via one ``sigma``-
  truncated multi-source Dijkstra; fastest, cost independent of ``|S|``,
  output identical to ``"logical"``.
* ``engine="logical"`` — per-level detection computed centrally with one
  pruned Dijkstra per source (identical output, analytic round/message
  bounds).
* ``engine="simulate"`` — per-level detection run faithfully on the CONGEST
  simulator over the materialised virtual graph; metrics are measured.

Per Corollary 3.5 the expected cost is ``O((h + sigma)/eps^2 * log n + D)``
rounds and ``O(sigma^2 / eps * log n)`` broadcasts per node.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from ..congest.metrics import CongestMetrics, merge_metrics
from ..graphs.weighted_graph import WeightedGraph
from ..obs.metrics import NULL_REGISTRY
from .source_detection import (
    DETECTION_ENGINES,
    DetectionEntry,
    IntAdjacency,
    SourceDetectionResult,
    detect_sources,
)
from .weight_rounding import RoundingScheme

__all__ = [
    "PDEEntry",
    "PDEResult",
    "PARALLEL_PDE_ENGINES",
    "solve_pde",
    "pde_engine_names",
    "validate_pde_instance",
    "weight_adjacency",
    "level_adjacency",
    "fold_detection_lists",
    "finalize_pde_result",
]

#: Engines whose per-level detections may be fanned out to parallel build
#: workers (see :mod:`repro.routing.parallel_build`): those that are pure
#: functions of ``(graph, S, h', sigma)`` with analytic metrics.  The
#: faithful CONGEST simulator is excluded — its measured metrics are the
#: point of running it, and they must be produced by one coherent run.
PARALLEL_PDE_ENGINES = ("logical", "batched")


@dataclass(frozen=True)
class PDEEntry:
    """One entry of a node's PDE output list ``L_v``."""

    estimate: float
    source: Hashable
    next_hop: Optional[Hashable] = None
    level: int = 0

    def key(self) -> Tuple[float, str]:
        return (self.estimate, repr(self.source))


@dataclass
class PDEResult:
    """Output of ``(1+eps)``-approximate ``(S, h, sigma)``-estimation.

    Attributes
    ----------
    lists:
        ``lists[v]`` — the top-``sigma`` prefix of the sorted
        ``(wd'(v, s), s)`` pairs (Definition 2.2).
    estimates:
        ``estimates[v][s] = wd'(v, s)`` for every source that was detected at
        any level (a superset of the sources appearing in ``lists[v]``).
    next_hops:
        ``next_hops[v][s]`` — a neighbour of ``v`` on a path realising the
        estimate (used to build routing tables, Corollary 3.5).
    levels_used:
        ``levels_used[v][s]`` — the rounding level achieving the minimum.
    per_level:
        Optional raw per-level detection results (needed by the tree-routing
        argument of Lemma 4.4 and by tests).
    rounding:
        The :class:`RoundingScheme` employed.
    metrics:
        Rounds / broadcasts accounting (measured when simulated).
    """

    sources: Set[Hashable]
    h: int
    sigma: int
    epsilon: float
    lists: Dict[Hashable, List[PDEEntry]]
    estimates: Dict[Hashable, Dict[Hashable, float]]
    next_hops: Dict[Hashable, Dict[Hashable, Optional[Hashable]]]
    levels_used: Dict[Hashable, Dict[Hashable, int]]
    rounding: RoundingScheme
    metrics: CongestMetrics = field(default_factory=CongestMetrics)
    per_level: Optional[Dict[int, SourceDetectionResult]] = None

    # ------------------------------------------------------------------
    def estimate(self, node: Hashable, source: Hashable) -> float:
        """``wd'(node, source)`` — infinity if the source was never detected."""
        return self.estimates.get(node, {}).get(source, float("inf"))

    def next_hop(self, node: Hashable, source: Hashable) -> Optional[Hashable]:
        return self.next_hops.get(node, {}).get(source)

    def list_of(self, node: Hashable) -> List[PDEEntry]:
        return self.lists.get(node, [])

    def in_list(self, node: Hashable, source: Hashable) -> bool:
        return any(entry.source == source for entry in self.lists.get(node, []))

    def detected_sources(self, node: Hashable) -> List[Hashable]:
        return [entry.source for entry in self.lists.get(node, [])]

    def closest_source_in(self, node: Hashable,
                          subset: Set[Hashable]) -> Optional[PDEEntry]:
        """The entry minimising ``(wd'(node, s), s)`` among ``s in subset``.

        Considers all detected sources (not only the top-``sigma`` list), so
        callers such as Lemma 4.2 can locate ``s'_v`` even if it narrowly
        misses the list.
        """
        best: Optional[PDEEntry] = None
        for s, est in self.estimates.get(node, {}).items():
            if s not in subset:
                continue
            entry = PDEEntry(
                estimate=est, source=s,
                next_hop=self.next_hops.get(node, {}).get(s),
                level=self.levels_used.get(node, {}).get(s, 0),
            )
            if best is None or entry.key() < best.key():
                best = entry
        return best

    # ------------------------------------------------------------------
    # state export (serving artifacts)
    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, object]:
        """Plain-builtin snapshot for persistence.

        Dict insertion order is preserved deliberately: downstream consumers
        (skeleton anchor selection in the routing hierarchy) break ties by
        iteration order, so a reloaded result must replay it exactly.  The
        raw ``per_level`` detection results are intentionally dropped — they
        are construction-time debugging state, not query state.
        """
        return {
            "sources": sorted(self.sources, key=repr),
            "h": self.h,
            "sigma": self.sigma,
            "epsilon": self.epsilon,
            "lists": {v: [(e.estimate, e.source, e.next_hop, e.level)
                          for e in entries]
                      for v, entries in self.lists.items()},
            "estimates": {v: dict(row) for v, row in self.estimates.items()},
            "next_hops": {v: dict(row) for v, row in self.next_hops.items()},
            "levels_used": {v: dict(row) for v, row in self.levels_used.items()},
            "rounding": {"epsilon": self.rounding.epsilon,
                         "max_weight": self.rounding.max_weight},
            "metrics": self.metrics.export_state(),
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "PDEResult":
        """Rebuild a result from :meth:`export_state` (``per_level`` is ``None``)."""
        return cls(
            sources=set(state["sources"]),
            h=state["h"],
            sigma=state["sigma"],
            epsilon=state["epsilon"],
            lists={v: [PDEEntry(estimate=est, source=s, next_hop=nh, level=lvl)
                       for est, s, nh, lvl in entries]
                   for v, entries in state["lists"].items()},
            estimates={v: dict(row) for v, row in state["estimates"].items()},
            next_hops={v: dict(row) for v, row in state["next_hops"].items()},
            levels_used={v: dict(row) for v, row in state["levels_used"].items()},
            rounding=RoundingScheme(**state["rounding"]),
            metrics=CongestMetrics.from_state(state["metrics"]),
            per_level=None,
        )


def validate_pde_instance(graph: WeightedGraph, sources: Iterable[Hashable],
                          h: int, sigma: int, engine: str) -> Set[Hashable]:
    """Validate one ``(S, h, sigma)`` instance; returns the source set.

    Shared by the sequential solver and the parallel orchestrator so both
    reject malformed instances with identical errors *before* any worker
    process is spawned.
    """
    source_set = set(sources)
    if not source_set:
        raise ValueError("the source set must be non-empty")
    for s in source_set:
        if not graph.has_node(s):
            raise ValueError(f"source {s!r} is not a node of the graph")
    if engine not in DETECTION_ENGINES:
        raise ValueError(f"unknown engine {engine!r}; "
                         f"available: {sorted(DETECTION_ENGINES)}")
    if h < 1 or sigma < 1:
        raise ValueError("h and sigma must be at least 1")
    return source_set


def weight_adjacency(graph: WeightedGraph
                     ) -> Dict[Hashable, List[Tuple[Hashable, int]]]:
    """Directed weight adjacency ``{v: [(u, w), ...]}``, hoisted once.

    One ``solve_pde`` call runs ``imax + 1`` independent detections on the
    same graph; materialising the neighbour lists once and deriving each
    level's integer lengths from them (:func:`level_adjacency`) replaces
    ``imax + 1`` full adjacency-map traversals with list comprehensions
    over flat tuples.
    """
    return {v: list(graph.neighbor_weights(v).items()) for v in graph.nodes()}


def level_adjacency(weight_adj: Dict[Hashable, List[Tuple[Hashable, int]]],
                    base: float) -> IntAdjacency:
    """Integer-length adjacency of the virtual graph ``G_i``.

    Computes ``max(1, ceil(w / b(i)))`` per directed edge — bit-identical
    to routing every weight through
    :meth:`~repro.core.weight_rounding.RoundingScheme.edge_length_fn`, which
    is what keeps hoisted-adjacency detections (and parallel build workers,
    which run this exact function) indistinguishable from the per-level
    callback path.
    """
    return {
        v: [(u, max(1, math.ceil(w / base))) for u, w in nbrs]
        for v, nbrs in weight_adj.items()
    }


def fold_detection_lists(lists: Dict[Hashable, List[DetectionEntry]],
                         rounding: RoundingScheme, level: int,
                         estimates: Dict[Hashable, Dict[Hashable, float]],
                         next_hops: Dict[Hashable, Dict[Hashable, Optional[Hashable]]],
                         levels_used: Dict[Hashable, Dict[Hashable, int]]) -> None:
    """Fold one rounding level's detection lists into the running minimum.

    The strict ``<`` means the *earliest* level achieving a value wins the
    tie; callers must therefore fold levels in increasing order — the
    parallel merge relies on this being the whole ordering contract.
    """
    for node, entries in lists.items():
        if node not in estimates:
            continue  # ignore any virtual helper nodes
        for entry in entries:
            value = rounding.scaled_distance(level, entry.distance)
            current = estimates[node].get(entry.source)
            if current is None or value < current:
                estimates[node][entry.source] = value
                next_hops[node][entry.source] = entry.next_hop
                levels_used[node][entry.source] = level


def finalize_pde_result(graph: WeightedGraph, source_set: Set[Hashable],
                        h: int, sigma: int, epsilon: float,
                        rounding: RoundingScheme,
                        estimates: Dict[Hashable, Dict[Hashable, float]],
                        next_hops: Dict[Hashable, Dict[Hashable, Optional[Hashable]]],
                        levels_used: Dict[Hashable, Dict[Hashable, int]],
                        level_metrics: List[CongestMetrics],
                        per_level: Dict[int, SourceDetectionResult],
                        store_levels: bool) -> PDEResult:
    """Assemble the :class:`PDEResult` from fully-folded estimate tables."""
    lists: Dict[Hashable, List[PDEEntry]] = {}
    for node in graph.nodes():
        entries = [
            PDEEntry(estimate=est, source=s,
                     next_hop=next_hops[node].get(s),
                     level=levels_used[node].get(s, 0))
            for s, est in estimates[node].items()
        ]
        entries.sort(key=lambda e: e.key())
        lists[node] = entries[:sigma]

    metrics = merge_metrics(*level_metrics, sequential=True)
    return PDEResult(
        sources=source_set,
        h=h,
        sigma=sigma,
        epsilon=epsilon,
        lists=lists,
        estimates=estimates,
        next_hops=next_hops,
        levels_used=levels_used,
        rounding=rounding,
        metrics=metrics,
        per_level=per_level if store_levels else None,
    )


def solve_pde(graph: WeightedGraph, sources: Iterable[Hashable], h: int, sigma: int,
              epsilon: float, engine: str = "batched", message_cap: bool = True,
              store_levels: bool = True, build_workers: int = 1,
              registry=None) -> PDEResult:
    """Solve ``(1+eps)``-approximate ``(S, h, sigma)``-estimation (Theorem 3.3).

    Parameters
    ----------
    graph:
        The weighted network graph.
    sources:
        The source set ``S``.
    h, sigma:
        Hop budget and list length of Definition 2.2.  Both must be at least
        1: with ``h = 0`` or ``sigma = 0`` the guarantees of Definition 2.2 /
        Theorem 3.3 are vacuous (no pair is within the hop budget, or no list
        entry may be emitted), so such instances are rejected here — unlike
        the raw detection engines, which accept the degenerate boundaries
        (see :mod:`repro.core.source_detection`).
    epsilon:
        Approximation parameter (``wd' <= (1+eps) wd`` within ``h`` hops).
    engine:
        Per-level detection engine: ``"batched"`` (default; fastest, analytic
        metrics), ``"logical"`` (per-source searches, identical output) or
        ``"simulate"`` (faithful CONGEST execution on the materialised
        virtual graphs, measured metrics).
    message_cap:
        Apply the Lemma 3.4 per-node broadcast cap in the simulator.
    store_levels:
        Keep the raw per-level detection results on the result object.  When
        ``False`` each level's detection output is folded into the estimates
        as soon as it is computed and the raw
        :class:`~repro.core.source_detection.SourceDetectionResult` is
        released immediately instead of being retained for all levels.  (The
        folded ``estimates`` tables themselves can still hold up to the
        union of every level's top-``sigma`` sources per node.)
    build_workers:
        Number of processes to solve the per-rounding-level detections with.
        The default ``1`` runs everything in-process; ``> 1`` fans the
        independent levels across a spawn-based pool
        (:mod:`repro.routing.parallel_build`) with a deterministic merge —
        the result is identical to the sequential solve.  Only the pure
        engines (:data:`PARALLEL_PDE_ENGINES`) support it.
    registry:
        Optional telemetry registry; each level's detection is timed under a
        ``level_solve`` span (plus ``build_scatter``/``build_merge`` on the
        parallel path).  ``None`` disables instrumentation.
    """
    obs = registry if registry is not None else NULL_REGISTRY
    source_set = validate_pde_instance(graph, sources, h, sigma, engine)
    if build_workers < 1:
        raise ValueError("build_workers must be >= 1")
    if build_workers > 1:
        if engine not in PARALLEL_PDE_ENGINES:
            raise ValueError(
                f"engine {engine!r} does not support parallel builds; "
                f"build_workers > 1 requires one of "
                f"{sorted(PARALLEL_PDE_ENGINES)}")
        # Imported lazily: routing.parallel_build depends on this module.
        from ..routing.parallel_build import solve_pde_parallel

        return solve_pde_parallel(graph, source_set, h=h, sigma=sigma,
                                  epsilon=epsilon, engine=engine,
                                  build_workers=build_workers,
                                  store_levels=store_levels, registry=obs)

    rounding = RoundingScheme(epsilon=epsilon, max_weight=graph.max_weight())
    horizon = rounding.horizon(h)

    estimates: Dict[Hashable, Dict[Hashable, float]] = {v: {} for v in graph.nodes()}
    next_hops: Dict[Hashable, Dict[Hashable, Optional[Hashable]]] = {
        v: {} for v in graph.nodes()}
    levels_used: Dict[Hashable, Dict[Hashable, int]] = {v: {} for v in graph.nodes()}

    weight_adj = weight_adjacency(graph) if engine == "batched" else None

    per_level: Dict[int, SourceDetectionResult] = {}
    level_metrics: List[CongestMetrics] = []
    for level in rounding.levels():
        length_fn = rounding.edge_length_fn(level)
        engine_kwargs = {}
        if engine == "simulate":
            engine_kwargs["message_cap"] = message_cap
        elif engine == "batched":
            engine_kwargs["adjacency"] = level_adjacency(
                weight_adj, rounding.base(level))
        with obs.span("level_solve"):
            detection = detect_sources(graph, source_set, horizon, sigma,
                                       edge_length=length_fn, engine=engine,
                                       **engine_kwargs)
        level_metrics.append(detection.metrics)
        # Fold this level into the running minimum right away; the raw
        # detection result is retained only when the caller asked for it.
        fold_detection_lists(detection.lists, rounding, level,
                             estimates, next_hops, levels_used)
        if store_levels:
            per_level[level] = detection

    return finalize_pde_result(graph, source_set, h, sigma, epsilon, rounding,
                               estimates, next_hops, levels_used,
                               level_metrics, per_level, store_levels)


def pde_engine_names() -> List[str]:
    """The available per-level detection engine names."""
    return sorted(DETECTION_ENGINES)
