"""The weight-rounding reduction of Section 3 (Nanongkai / Zwick).

For a fixed ``0 < eps in O(1)`` the reduction considers the levels
``i = 0, .., imax`` with ``imax = ceil(log_{1+eps}(wmax))`` and, per level,

* the base ``b(i) = (1 + eps)^i``,
* the rounded weight function ``W_i(e) = b(i) * ceil(W(e) / b(i))``,
* the virtual unweighted graph ``G_i`` obtained by subdividing each edge
  ``e`` into ``W_i(e) / b(i) = ceil(W(e) / b(i))`` unit edges.

Lemma 3.1 / Corollary 3.2 then guarantee that for every pair ``(v, w)`` there
is a level ``i_{v,w}`` at which the hop distance in ``G_i`` is both a
``(1+eps)``-approximation of ``wd(v, w)`` (after scaling by ``b(i)``) and at
most ``O(h_{v,w} / eps)`` — so an unweighted source detection with a horizon
``h' = O(h / eps)`` per level suffices.

:class:`RoundingScheme` packages these quantities; it is consumed by the PDE
solver and by the analysis helpers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List

__all__ = ["RoundingScheme"]


@dataclass(frozen=True)
class RoundingScheme:
    """Rounding levels for a given ``eps`` and maximum edge weight.

    Parameters
    ----------
    epsilon:
        Approximation parameter, ``0 < eps``; the paper assumes ``eps in O(1)``.
    max_weight:
        The maximum edge weight ``wmax`` of the input graph (assumed to be
        polynomial in ``n``).
    """

    epsilon: float
    max_weight: int

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if self.max_weight < 1:
            raise ValueError("max_weight must be at least 1")

    # ------------------------------------------------------------------
    @property
    def imax(self) -> int:
        """``imax = ceil(log_{1+eps}(wmax))`` (0 for unit weights)."""
        if self.max_weight <= 1:
            return 0
        return max(0, math.ceil(math.log(self.max_weight, 1.0 + self.epsilon)))

    def levels(self) -> range:
        """The level indices ``0, ..., imax`` (inclusive)."""
        return range(self.imax + 1)

    @property
    def num_levels(self) -> int:
        return self.imax + 1

    def base(self, level: int) -> float:
        """``b(i) = (1 + eps)^i``."""
        self._check_level(level)
        return (1.0 + self.epsilon) ** level

    def rounded_weight(self, level: int, weight: int) -> float:
        """``W_i(e) = b(i) * ceil(W(e) / b(i))``."""
        base = self.base(level)
        return base * math.ceil(weight / base)

    def edge_length(self, level: int, weight: int) -> int:
        """Length of edge ``e`` in the virtual graph ``G_i``: ``ceil(W(e)/b(i))``."""
        if weight < 1:
            raise ValueError("edge weights must be positive")
        return max(1, math.ceil(weight / self.base(level)))

    def edge_length_fn(self, level: int):
        """Return an ``(u, v, w) -> int`` callback for the given level."""
        base = self.base(level)
        return lambda u, v, w: max(1, math.ceil(w / base))

    # ------------------------------------------------------------------
    def horizon(self, h: int) -> int:
        """Unweighted detection horizon ``h'`` such that relevant pairs stay in range.

        By Lemma 3.1 and Corollary 3.2, for the level ``i_{v,w}`` the hop
        distance in ``G_i`` of a pair with ``h_{v,w} <= h`` is below
        ``h * (2 + 1/eps)``; we add one for slack from the ceiling operations.
        """
        if h < 0:
            raise ValueError("h must be non-negative")
        return int(math.ceil(h * (2.0 + 1.0 / self.epsilon))) + 1

    def level_for_pair(self, weighted_distance: float, hops: int) -> int:
        """The level ``i_{v,w}`` of Lemma 3.1 for a pair at distance ``wd`` and ``hops``."""
        if hops <= 0 or weighted_distance <= 0:
            return 0
        value = self.epsilon * weighted_distance / hops
        if value <= 1.0:
            return 0
        return min(self.imax,
                   max(0, math.floor(math.log(value, 1.0 + self.epsilon))))

    # ------------------------------------------------------------------
    def scaled_distance(self, level: int, hop_distance: int) -> float:
        """Translate a ``G_i`` hop distance back to a weighted estimate ``b(i)*hd_i``."""
        return self.base(level) * hop_distance

    def _check_level(self, level: int) -> None:
        if level < 0 or level > self.imax:
            raise ValueError(f"level {level} outside [0, {self.imax}]")

    def describe(self) -> List[dict]:
        """Human-readable per-level summary (used by examples and reports)."""
        return [
            {"level": i, "base": self.base(i)}
            for i in self.levels()
        ]
