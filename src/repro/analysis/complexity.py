"""Theoretical bounds of the paper, as evaluable functions.

Benchmarks and EXPERIMENTS.md compare measured quantities against the paper's
asymptotic bounds.  Since the bounds hide constants and polylogarithmic
factors, each function returns the *leading expression* (with unit constants)
so that benchmark output can report "measured / bound" ratios whose shape —
flat in the varied parameter — is the reproduction criterion.
"""

from __future__ import annotations

import math
from typing import Dict

__all__ = [
    "log2n",
    "pde_round_bound",
    "pde_broadcast_bound",
    "source_detection_round_bound",
    "exact_detection_round_bound",
    "apsp_round_bound",
    "bellman_ford_round_bound",
    "link_state_round_bound",
    "nanongkai_round_bound",
    "relabeling_round_bound",
    "relabeling_stretch_bound",
    "compact_round_bound",
    "compact_stretch_bound",
    "compact_table_bound",
    "label_bits_bound",
    "figure1_congestion_bound",
]


def log2n(n: int) -> float:
    """``log2 n`` clamped below at 1 (the paper's logs hide constants anyway)."""
    return max(1.0, math.log2(max(2, n)))


def source_detection_round_bound(h: int, sigma: int) -> float:
    """Unweighted ``(S, h, sigma)``-detection: ``h + sigma`` rounds ([10])."""
    return h + sigma


def exact_detection_round_bound(h: int, sigma: int) -> float:
    """Exact weighted detection under h-hop distances: ``sigma * h`` rounds."""
    return sigma * h


def pde_round_bound(h: int, sigma: int, epsilon: float, n: int, diameter: int = 0
                    ) -> float:
    """Corollary 3.5: ``O((h + sigma)/eps^2 * log n + D)`` rounds."""
    return (h + sigma) / (epsilon ** 2) * log2n(n) + diameter


def pde_broadcast_bound(sigma: int, epsilon: float, n: int) -> float:
    """Corollary 3.5 / Lemma 3.4: ``O(sigma^2 / eps * log n)`` broadcasts per node."""
    return (sigma ** 2) / epsilon * log2n(n)


def apsp_round_bound(n: int, epsilon: float) -> float:
    """Theorem 4.1: ``O(n log n / eps^2)`` rounds."""
    return n * log2n(n) / (epsilon ** 2)


def bellman_ford_round_bound(n: int) -> float:
    """Distance-vector APSP worst case: ``Theta(n^2)`` rounds."""
    return float(n * n)


def link_state_round_bound(m: int, diameter: int) -> float:
    """Topology flooding: ``Theta(m) + D`` rounds."""
    return float(m + diameter)


def nanongkai_round_bound(n: int, epsilon: float) -> float:
    """Randomized baseline [14]: ``O(n log^2 n / eps^2)`` rounds w.h.p."""
    return n * (log2n(n) ** 2) / (epsilon ** 2)


def relabeling_round_bound(n: int, k: int, diameter: int) -> float:
    """Theorem 4.5: ``O~(n^{1/2 + 1/(4k)} + D)`` rounds."""
    return n ** (0.5 + 1.0 / (4.0 * k)) * log2n(n) + diameter


def relabeling_stretch_bound(k: int) -> float:
    """Theorem 4.5: stretch ``6k - 1 + o(1)``."""
    return 6.0 * k - 1.0


def compact_round_bound(n: int, k: int, diameter: int) -> float:
    """Corollary 4.14: ``O~(min{(Dn)^{1/2} n^{1/k}, n^{2/3+2/(3k)}} + D)``."""
    first = math.sqrt(max(1, diameter) * n) * n ** (1.0 / k)
    second = n ** (2.0 / 3.0 + 2.0 / (3.0 * k))
    return min(first, second) * log2n(n) + diameter


def compact_stretch_bound(k: int) -> float:
    """Theorems 4.8 / 4.13: stretch ``4k - 3 + o(1)``."""
    return 4.0 * k - 3.0


def compact_table_bound(n: int, k: int) -> float:
    """Table size ``O~(n^{1/k})`` words."""
    return n ** (1.0 / k) * log2n(n)


def label_bits_bound(n: int, k: int = 1) -> float:
    """Label sizes: ``O(log n)`` bits (Theorem 4.5) or ``O(k log n)`` (Section 4.3)."""
    return k * log2n(n)


def figure1_congestion_bound(h: int, sigma: int) -> float:
    """Figure 1: ``h * sigma`` values must cross the bottleneck edge."""
    return float(h * sigma)


def bound_table(n: int, m: int, k: int, epsilon: float, diameter: int
                ) -> Dict[str, float]:
    """All bounds evaluated at one parameter point (used in reports)."""
    return {
        "apsp_rounds": apsp_round_bound(n, epsilon),
        "bellman_ford_rounds": bellman_ford_round_bound(n),
        "link_state_rounds": link_state_round_bound(m, diameter),
        "nanongkai_rounds": nanongkai_round_bound(n, epsilon),
        "relabeling_rounds": relabeling_round_bound(n, k, diameter),
        "relabeling_stretch": relabeling_stretch_bound(k),
        "compact_rounds": compact_round_bound(n, k, diameter),
        "compact_stretch": compact_stretch_bound(k),
        "compact_table_words": compact_table_bound(n, k),
    }
