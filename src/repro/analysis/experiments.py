"""Experiment runners shared by the benchmark harness, examples and tests.

Each ``run_*`` function executes one experiment from the index in DESIGN.md
(E1–E8) on a given workload and returns flat dict records, ready to be
rendered by :mod:`repro.analysis.reporting` and compared against the bounds
in :mod:`repro.analysis.complexity`.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, Iterable, List, Optional, Sequence

from ..baselines import (
    bellman_ford_apsp,
    compare_long_range_schemes,
    link_state_apsp,
    nanongkai_apsp,
)
from ..core.apsp import approximate_apsp, stretch_statistics
from ..core.detection_exact import run_exact_detection_simulation
from ..core.pde import solve_pde
from ..core.source_detection import lemma34_message_cap
from ..graphs.distances import all_pairs_weighted_distances, hop_diameter
from ..graphs.lower_bound import build_figure1_graph
from ..graphs.weighted_graph import WeightedGraph
from ..routing.compact import build_compact_routing
from ..routing.relabeling_scheme import RelabelingRoutingScheme
from ..routing.skeleton import (
    default_sampling_probability,
    exact_skeleton_graph,
    sample_skeleton,
)
from ..routing.stretch import evaluate_distance_estimates, sample_pairs
from ..routing.tz_exact import ExactThorupZwickOracle
from ..routing.tz_hierarchy import CompactRoutingHierarchy
from ..serving import (
    BuildConfig,
    CacheConfig,
    ServingConfig,
    ShardedRoutingService,
    WorkloadConfig,
    make_workload,
    open_service,
)
from . import complexity

__all__ = [
    "run_apsp_comparison",
    "run_pde_scaling",
    "run_figure1_congestion",
    "run_relabeling_experiment",
    "run_compact_experiment",
    "run_prior_work_ablation",
    "run_epsilon_sweep",
    "run_tz_comparison",
    "run_serving_experiment",
    "run_sharded_experiment",
]


# ----------------------------------------------------------------------
# E2 — APSP comparison (Theorem 4.1 vs baselines)
# ----------------------------------------------------------------------
def run_apsp_comparison(graph: WeightedGraph, epsilon: float = 0.25, seed: int = 0,
                        include_bellman_ford: bool = True,
                        engine: str = "batched") -> List[Dict]:
    """Rounds and stretch of the Theorem 4.1 algorithm against the baselines."""
    n = graph.num_nodes
    m = graph.num_edges
    diameter = hop_diameter(graph)
    exact = all_pairs_weighted_distances(graph)
    records: List[Dict] = []

    ours = approximate_apsp(graph, epsilon=epsilon, engine=engine)
    stats = stretch_statistics(ours.estimates, exact)
    records.append({
        "algorithm": "pde_apsp (Thm 4.1)",
        "deterministic": True,
        "rounds": ours.metrics.rounds,
        "round_bound": complexity.apsp_round_bound(n, epsilon),
        "max_stretch": stats["max_stretch"],
        "mean_stretch": stats["mean_stretch"],
        "missing": stats["missing"],
    })

    rand = nanongkai_apsp(graph, epsilon=epsilon, seed=seed)
    rand_stats = stretch_statistics(rand.estimates, exact)
    records.append({
        "algorithm": "nanongkai14 (randomized)",
        "deterministic": False,
        "rounds": rand.metrics.rounds,
        "round_bound": complexity.nanongkai_round_bound(n, epsilon),
        "max_stretch": rand_stats["max_stretch"],
        "mean_stretch": rand_stats["mean_stretch"],
        "missing": rand_stats["missing"],
    })

    if include_bellman_ford:
        bf = bellman_ford_apsp(graph, simulate=True)
        bf_stats = stretch_statistics(bf.distances, exact)
        records.append({
            "algorithm": "bellman_ford (exact)",
            "deterministic": True,
            "rounds": bf.metrics.rounds,
            "round_bound": complexity.bellman_ford_round_bound(n),
            "max_stretch": bf_stats["max_stretch"],
            "mean_stretch": bf_stats["mean_stretch"],
            "missing": bf_stats["missing"],
        })

    ls = link_state_apsp(graph)
    ls_stats = stretch_statistics(ls.distances, exact)
    records.append({
        "algorithm": "link_state (exact)",
        "deterministic": True,
        "rounds": ls.metrics.rounds,
        "round_bound": complexity.link_state_round_bound(m, diameter),
        "max_stretch": ls_stats["max_stretch"],
        "mean_stretch": ls_stats["mean_stretch"],
        "missing": ls_stats["missing"],
    })
    return records


# ----------------------------------------------------------------------
# E3 / E7 — PDE scaling and epsilon sweep (Corollary 3.5, Lemma 3.4)
# ----------------------------------------------------------------------
def run_pde_scaling(graph: WeightedGraph, num_sources: int, h: int, sigma: int,
                    epsilon: float, seed: int = 0, engine: str = "simulate") -> Dict:
    """Measured rounds / broadcasts of one PDE instance against the bounds."""
    rng = random.Random(seed)
    nodes = graph.nodes()
    sources = rng.sample(nodes, min(num_sources, len(nodes)))
    pde = solve_pde(graph, sources, h=h, sigma=sigma, epsilon=epsilon, engine=engine)
    n = graph.num_nodes
    return {
        "n": n,
        "sources": len(sources),
        "h": h,
        "sigma": sigma,
        "epsilon": epsilon,
        "levels": pde.rounding.num_levels,
        "rounds": pde.metrics.rounds,
        "round_bound": complexity.pde_round_bound(h, sigma, epsilon, n),
        "max_broadcasts": pde.metrics.max_broadcasts(),
        "broadcast_bound": complexity.pde_broadcast_bound(sigma, epsilon, n),
        "per_level_cap": lemma34_message_cap(sigma),
        "measured": pde.metrics.measured,
    }


def run_epsilon_sweep(graph: WeightedGraph, epsilons: Sequence[float],
                      h: Optional[int] = None, sigma: Optional[int] = None,
                      seed: int = 0, engine: str = "batched") -> List[Dict]:
    """Accuracy/cost trade-off of PDE as epsilon varies (Theorem 3.3)."""
    n = graph.num_nodes
    h = h if h is not None else n
    sigma = sigma if sigma is not None else n
    exact = all_pairs_weighted_distances(graph)
    records = []
    for eps in epsilons:
        pde = solve_pde(graph, graph.nodes(), h=h, sigma=sigma, epsilon=eps,
                        engine=engine, store_levels=False)
        stats = stretch_statistics(pde.estimates, exact)
        records.append({
            "epsilon": eps,
            "levels": pde.rounding.num_levels,
            "rounds_bound": complexity.pde_round_bound(h, sigma, eps, n),
            "max_stretch": stats["max_stretch"],
            "mean_stretch": stats["mean_stretch"],
            "guarantee": 1.0 + eps,
            "within_guarantee": stats["max_stretch"] <= 1.0 + eps + 1e-9,
        })
    return records


# ----------------------------------------------------------------------
# E1 — Figure 1 congestion lower bound
# ----------------------------------------------------------------------
def run_figure1_congestion(h: int, sigma: int, epsilon: float = 0.5,
                           max_rounds: Optional[int] = None) -> Dict:
    """Messages over the Figure 1 bottleneck: exact detection vs PDE."""
    instance = build_figure1_graph(h, sigma)
    graph = instance.graph
    sources = instance.source_set
    budget = instance.detection_hop_budget
    u1, vh = instance.bottleneck

    exact = run_exact_detection_simulation(graph, sources, budget, sigma,
                                           max_rounds=max_rounds)
    pde = solve_pde(graph, sources, h=budget, sigma=sigma, epsilon=epsilon,
                    engine="simulate")
    return {
        "h": h,
        "sigma": sigma,
        "nodes": graph.num_nodes,
        "paper_bound_values": instance.required_values_over_bottleneck(),
        "exact_bottleneck_messages": exact.metrics.edge_traffic(u1, vh),
        "exact_rounds": exact.metrics.rounds,
        "exact_round_bound": complexity.exact_detection_round_bound(budget, sigma),
        "pde_bottleneck_messages": pde.metrics.edge_traffic(u1, vh),
        "pde_rounds": pde.metrics.rounds,
        "pde_max_broadcasts": pde.metrics.max_broadcasts(),
        "pde_broadcast_bound": complexity.pde_broadcast_bound(sigma, epsilon,
                                                              graph.num_nodes),
    }


# ----------------------------------------------------------------------
# E4 — Theorem 4.5 routing with relabeling
# ----------------------------------------------------------------------
def run_relabeling_experiment(graph: WeightedGraph, k: int, epsilon: float = 0.25,
                              seed: int = 0, budget_constant: float = 2.0,
                              pair_sample: Optional[int] = None,
                              engine: str = "batched") -> Dict:
    """Build the Theorem 4.5 scheme and audit stretch, label size and rounds."""
    scheme = RelabelingRoutingScheme.build(graph, k=k, epsilon=epsilon, seed=seed,
                                           budget_constant=budget_constant,
                                           engine=engine)
    pairs = sample_pairs(graph.nodes(), pair_sample, random.Random(seed))
    audit = scheme.audit(pairs=pairs)
    dist_audit = evaluate_distance_estimates(scheme, graph, pairs=pairs)
    report = scheme.build_report()
    n = graph.num_nodes
    diameter = hop_diameter(graph)
    return {
        "n": n,
        "k": k,
        "stretch_bound": complexity.relabeling_stretch_bound(k),
        "max_route_stretch": audit["max_stretch"],
        "mean_route_stretch": audit["mean_stretch"],
        "max_distance_stretch": dist_audit.max_stretch,
        "delivery_rate": audit["delivery_rate"],
        "rounds": report.rounds,
        "round_bound": complexity.relabeling_round_bound(n, k, diameter),
        "label_bits": report.label_bits_max,
        "label_bits_bound": complexity.label_bits_bound(n),
        "skeleton_size": report.skeleton_size,
        "fallback_edges": report.fallback_edges,
    }


# ----------------------------------------------------------------------
# E5 — compact routing (Theorems 4.8/4.13, Corollary 4.14)
# ----------------------------------------------------------------------
def run_compact_experiment(graph: WeightedGraph, k: int, mode: str = "auto",
                           l0: Optional[int] = None, epsilon: float = 0.25,
                           seed: int = 0, pair_sample: Optional[int] = None,
                           engine: str = "batched") -> Dict:
    """Build the compact hierarchy and audit stretch / table size / rounds."""
    hierarchy = build_compact_routing(graph, k=k, epsilon=epsilon, seed=seed,
                                      mode=mode, l0=l0, engine=engine)
    pairs = sample_pairs(graph.nodes(), pair_sample, random.Random(seed))
    audit = hierarchy.audit(pairs=pairs)
    report = hierarchy.build_report()
    n = graph.num_nodes
    diameter = hop_diameter(graph)
    return {
        "n": n,
        "k": k,
        "mode": report.mode,
        "l0": report.l0,
        "stretch_bound": complexity.compact_stretch_bound(k),
        "max_route_stretch": audit["max_stretch"],
        "mean_route_stretch": audit["mean_stretch"],
        "delivery_rate": audit["delivery_rate"],
        "rounds": report.rounds,
        "round_bound": complexity.compact_round_bound(n, k, diameter),
        "max_table_words": report.max_table_words,
        "table_bound_words": complexity.compact_table_bound(n, k),
        "max_label_bits": report.max_label_bits,
        "label_bits_bound": complexity.label_bits_bound(n, k),
        "max_bunch_size": report.max_bunch_size,
        "fallback_edges": report.fallback_edges,
    }


# ----------------------------------------------------------------------
# E6 — ablation against the prior-work long-range design
# ----------------------------------------------------------------------
def run_prior_work_ablation(graph: WeightedGraph, k: int, seed: int = 0,
                            skeleton_probability: Optional[float] = None,
                            hop_budget: Optional[int] = None,
                            method: str = "baswana_sen") -> Dict:
    """Long-range stretch of the new design vs. the prior-work design [15]."""
    n = graph.num_nodes
    rng = random.Random(seed)
    p = (skeleton_probability if skeleton_probability is not None
         else default_sampling_probability(n, k))
    skeleton = sample_skeleton(graph.nodes(), p, rng)
    h = hop_budget if hop_budget is not None else n
    skeleton_graph = exact_skeleton_graph(graph, skeleton, h)
    comparison = compare_long_range_schemes(skeleton_graph, k, seed=seed, method=method)
    record = comparison.as_dict()
    record.update({
        "n": n,
        "new_stretch_bound": 2 * k - 1,
        "prior_stretch_bound": (2 * k - 1) ** 2,
    })
    return record


# ----------------------------------------------------------------------
# E8 — exact vs approximate Thorup–Zwick hierarchy
# ----------------------------------------------------------------------
def run_tz_comparison(graph: WeightedGraph, k: int, epsilon: float = 0.25,
                      seed: int = 0, pair_sample: Optional[int] = None,
                      engine: str = "batched") -> Dict:
    """Compare the exact TZ oracle with the PDE-based approximate hierarchy."""
    exact_oracle = ExactThorupZwickOracle(graph, k=k, seed=seed)
    hierarchy = CompactRoutingHierarchy.build(graph, k=k, epsilon=epsilon,
                                              seed=seed, mode="budget",
                                              engine=engine)
    exact_dists = all_pairs_weighted_distances(graph)
    pairs = sample_pairs(graph.nodes(), pair_sample, random.Random(seed))

    def max_mean(values: Iterable[float]):
        values = list(values)
        return (max(values), sum(values) / len(values)) if values else (1.0, 1.0)

    exact_stretches = []
    hierarchy_stretches = []
    for u, v in pairs:
        d = exact_dists[u][v]
        if d <= 0:
            continue
        exact_stretches.append(exact_oracle.hierarchy_query(u, v)[0] / d)
        hierarchy_stretches.append(hierarchy.distance(u, v) / d)
    exact_max, exact_mean = max_mean(exact_stretches)
    approx_max, approx_mean = max_mean(hierarchy_stretches)
    return {
        "n": graph.num_nodes,
        "k": k,
        "epsilon": epsilon,
        "stretch_bound": complexity.compact_stretch_bound(k),
        "exact_max_stretch": exact_max,
        "exact_mean_stretch": exact_mean,
        "approx_max_stretch": approx_max,
        "approx_mean_stretch": approx_mean,
        "exact_max_bunch": exact_oracle.max_bunch_size(),
        "approx_max_bunch": hierarchy.max_bunch_size(),
    }


# ----------------------------------------------------------------------
# E9 — serving scenario: cached query streams against a built hierarchy
# ----------------------------------------------------------------------
def run_serving_experiment(graph: WeightedGraph, k: int = 3,
                           workload: str = "zipf", num_queries: int = 500,
                           epsilon: float = 0.25, seed: int = 0,
                           cache_size: int = 4096, batch_size: int = 64,
                           engine: str = "batched") -> Dict:
    """Serve a query workload cold and warm; report throughput and hit rates.

    The serving unit of work is a *query stream*, not a single construction:
    the record contrasts the first (cold-cache) pass over the workload with
    a second (warm) pass, which is the steady state a long-running service
    converges to on a skewed stream.  Serves through the v2 surface: one
    :class:`~repro.serving.config.ServingConfig` describes the session and
    :func:`~repro.serving.backend.open_service` opens the backend.
    """
    import time

    config = ServingConfig(
        build=BuildConfig(k=k, epsilon=epsilon, seed=seed, engine=engine),
        cache=CacheConfig(capacity=cache_size),
        workload=WorkloadConfig(name=workload, num_queries=num_queries),
        batch_size=batch_size)
    service = open_service(config, graph=graph)
    stream = make_workload(workload, graph, num_queries,
                           seed=config.workload_seed())

    def timed_pass() -> float:
        start = time.perf_counter()
        for lo in range(0, len(stream.pairs), batch_size):
            service.route_batch(stream.pairs[lo:lo + batch_size])
        return time.perf_counter() - start

    cold_seconds = timed_pass()
    warm_seconds = timed_pass()
    record = {
        "n": graph.num_nodes,
        "k": k,
        "workload": workload,
        "queries": len(stream),
        "distinct_pairs": stream.distinct_pairs(),
        "batch_size": batch_size,
        "build_seconds": service.stats.build_seconds,
        "cold_qps": len(stream) / cold_seconds if cold_seconds > 0 else float("inf"),
        "warm_qps": len(stream) / warm_seconds if warm_seconds > 0 else float("inf"),
        "cache_hit_rate": service.stats.cache_hit_rate,
    }
    record["warm_speedup"] = (record["warm_qps"] / record["cold_qps"]
                              if record["cold_qps"] > 0 else float("inf"))
    service.close()
    return record


# ----------------------------------------------------------------------
# E10 — sharded serving: one stream scattered across worker processes
# ----------------------------------------------------------------------
def run_sharded_experiment(graph: WeightedGraph, k: int = 3,
                           workload: str = "uniform", num_queries: int = 400,
                           epsilon: float = 0.25, seed: int = 0,
                           worker_counts: Sequence[int] = (1, 2),
                           partitioner: str = "round_robin",
                           cache_size: int = 4096, batch_size: int = 128,
                           engine: str = "batched",
                           artifact_path: Optional[str] = None) -> Dict:
    """Scale the same query stream across worker-process counts.

    Builds the artifact once (in a temporary directory unless
    ``artifact_path`` points somewhere durable), answers the stream with a
    single-process reference service, then replays it through a
    :class:`~repro.serving.sharded.ShardedRoutingService` at each worker
    count, reporting per-count throughput and merged cache hit rates.  Each
    scaling entry records ``identical_to_single_process`` — whether the
    sharded answers were list-for-list identical to the reference — so a
    consumer must check that flag before trusting the throughput numbers
    (the shard tests assert it holds; the experiment reports rather than
    raises so a regression still yields an inspectable record).
    """
    import os
    import tempfile
    import time

    tmp_dir: Optional[tempfile.TemporaryDirectory] = None
    if artifact_path is None:
        tmp_dir = tempfile.TemporaryDirectory(prefix="repro-shard-exp-")
        artifact_path = os.path.join(tmp_dir.name, "hierarchy.artifact")
    try:
        base_config = ServingConfig(
            artifact_path=artifact_path,
            build=BuildConfig(k=k, epsilon=epsilon, seed=seed, engine=engine),
            cache=CacheConfig(capacity=cache_size),
            workload=WorkloadConfig(name=workload, num_queries=num_queries),
            batch_size=batch_size, partitioner=partitioner)
        parent = open_service(base_config, graph=graph)
        stream = make_workload(workload, graph, num_queries, seed=seed)
        chunks = [stream.pairs[lo:lo + batch_size]
                  for lo in range(0, len(stream.pairs), batch_size)]
        reference = [trace for chunk in chunks
                     for trace in parent.route_batch(chunk)]

        record: Dict = {
            "n": graph.num_nodes,
            "k": k,
            "workload": workload,
            "queries": len(stream),
            "distinct_pairs": stream.distinct_pairs(),
            "partitioner": partitioner,
            "batch_size": batch_size,
            "cache_size": cache_size,
            "build_seconds": parent.stats.build_seconds,
            "scaling": [],
        }
        for workers in worker_counts:
            # The scaling loop deliberately pins the sharded front-end even
            # at one worker (the IPC overhead belongs in the curve), so it
            # constructs ShardedRoutingService directly instead of letting
            # open_service pick the local backend for workers == 1.
            with ShardedRoutingService(
                    artifact_path, num_workers=workers,
                    partitioner=partitioner,
                    cache_config=base_config.cache,
                    graph=graph) as sharded:
                start = time.perf_counter()
                answers = [trace for chunk in chunks
                           for trace in sharded.route_batch(chunk)]
                elapsed = time.perf_counter() - start
                merged = sharded.merged_stats()
            identical = (
                [t.path for t in answers] == [t.path for t in reference]
                and [t.weight for t in answers] == [t.weight for t in reference])
            record["scaling"].append({
                "workers": workers,
                "qps": len(stream) / elapsed if elapsed > 0 else float("inf"),
                "cache_hit_rate": merged.cache_hit_rate,
                "identical_to_single_process": identical,
            })
        base = record["scaling"][0]["qps"]
        for entry in record["scaling"]:
            entry["speedup"] = entry["qps"] / base if base > 0 else float("inf")
        return record
    finally:
        if tmp_dir is not None:
            tmp_dir.cleanup()
