"""Analysis layer: theoretical bounds, experiment runners, report rendering."""

from . import complexity
from .reporting import (
    format_value,
    render_table,
    render_markdown_table,
    add_ratio_column,
)
from .experiments import (
    run_apsp_comparison,
    run_pde_scaling,
    run_figure1_congestion,
    run_relabeling_experiment,
    run_compact_experiment,
    run_prior_work_ablation,
    run_epsilon_sweep,
    run_tz_comparison,
    run_serving_experiment,
)

__all__ = [
    "complexity",
    "format_value",
    "render_table",
    "render_markdown_table",
    "add_ratio_column",
    "run_apsp_comparison",
    "run_pde_scaling",
    "run_figure1_congestion",
    "run_relabeling_experiment",
    "run_compact_experiment",
    "run_prior_work_ablation",
    "run_epsilon_sweep",
    "run_tz_comparison",
    "run_serving_experiment",
]
