"""Result records and text/markdown table rendering for the benchmark harness.

Every benchmark produces a list of flat dict records (one per parameter
point).  This module renders them as aligned text tables (printed during the
benchmark run, mirroring the "rows the paper reports") and as markdown (for
EXPERIMENTS.md), and offers small helpers for ratio columns against the
theoretical bounds.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["format_value", "render_table", "render_markdown_table", "add_ratio_column"]


def format_value(value, precision: int = 3) -> str:
    """Human-friendly rendering of ints, floats, and everything else."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.{precision}g}"
    return str(value)


def _columns(records: Sequence[Mapping], columns: Optional[Sequence[str]]) -> List[str]:
    if columns is not None:
        return list(columns)
    seen: List[str] = []
    for record in records:
        for key in record:
            if key not in seen:
                seen.append(key)
    return seen


def render_table(records: Sequence[Mapping], columns: Optional[Sequence[str]] = None,
                 title: Optional[str] = None) -> str:
    """Render records as an aligned plain-text table."""
    if not records:
        return (title + "\n" if title else "") + "(no records)"
    cols = _columns(records, columns)
    rows = [[format_value(record.get(col, "")) for col in cols] for record in records]
    widths = [max(len(col), *(len(row[i]) for row in rows)) for i, col in enumerate(cols)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(col.ljust(widths[i]) for i, col in enumerate(cols)))
    lines.append("  ".join("-" * widths[i] for i in range(len(cols))))
    for row in rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(cols))))
    return "\n".join(lines)


def render_markdown_table(records: Sequence[Mapping],
                          columns: Optional[Sequence[str]] = None) -> str:
    """Render records as a GitHub-flavoured markdown table."""
    if not records:
        return "(no records)"
    cols = _columns(records, columns)
    lines = ["| " + " | ".join(cols) + " |",
             "|" + "|".join("---" for _ in cols) + "|"]
    for record in records:
        lines.append("| " + " | ".join(format_value(record.get(col, "")) for col in cols) + " |")
    return "\n".join(lines)


def add_ratio_column(records: Iterable[Dict], numerator: str, denominator: str,
                     name: Optional[str] = None) -> List[Dict]:
    """Add ``record[name] = record[numerator] / record[denominator]`` to each record."""
    name = name if name is not None else f"{numerator}/{denominator}"
    result = []
    for record in records:
        record = dict(record)
        num = record.get(numerator)
        den = record.get(denominator)
        record[name] = (num / den) if num is not None and den else float("nan")
        result.append(record)
    return result
