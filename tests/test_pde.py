"""Tests for partial distance estimation (Theorem 3.3 / Corollary 3.5)."""

import pytest

from repro import graphs
from repro.core import solve_pde
from repro.graphs import all_pairs_weighted_distances, dijkstra_with_hops


def _feasibility_check(graph, pde, epsilon):
    """The two defining properties of Definition 2.2 (see module docstring)."""
    exact = all_pairs_weighted_distances(graph)
    # Property 1: estimates never undershoot the true distance.
    for v, row in pde.estimates.items():
        for s, est in row.items():
            assert est >= exact[v][s] - 1e-9, (v, s)
    # Property 2 (via list correctness): every source in the output list that
    # is within the hop budget is (1+eps)-approximated.
    for v in graph.nodes():
        _, hops = dijkstra_with_hops(graph, v)
        for entry in pde.lists[v]:
            if hops.get(entry.source, float("inf")) <= pde.h:
                assert entry.estimate <= (1 + epsilon) * exact[v][entry.source] + 1e-6


class TestLogicalEngine:
    def test_feasibility_on_er(self, small_weighted_graph):
        pde = solve_pde(small_weighted_graph, small_weighted_graph.nodes(),
                        h=6, sigma=5, epsilon=0.25)
        _feasibility_check(small_weighted_graph, pde, 0.25)

    def test_feasibility_on_mixed_scale(self, mixed_scale_graph):
        pde = solve_pde(mixed_scale_graph, mixed_scale_graph.nodes(),
                        h=5, sigma=4, epsilon=0.5)
        _feasibility_check(mixed_scale_graph, pde, 0.5)

    def test_full_instance_covers_all_pairs(self, small_weighted_graph):
        g = small_weighted_graph
        n = g.num_nodes
        pde = solve_pde(g, g.nodes(), h=n, sigma=n, epsilon=0.25)
        exact = all_pairs_weighted_distances(g)
        for v in g.nodes():
            assert len(pde.lists[v]) == n
            for w in g.nodes():
                if w == v:
                    continue
                assert pde.estimate(v, w) <= (1 + 0.25) * exact[v][w] + 1e-6

    def test_prefix_property(self, small_weighted_graph):
        """No source within the hop budget and much closer than the last list
        entry may be missing from the list (list-correctness of Def. 2.2)."""
        g = small_weighted_graph
        eps = 0.25
        sigma = 4
        pde = solve_pde(g, g.nodes(), h=g.num_nodes, sigma=sigma, epsilon=eps)
        exact = all_pairs_weighted_distances(g)
        for v in g.nodes():
            if len(pde.lists[v]) < sigma:
                continue
            last = pde.lists[v][-1].estimate
            listed = {e.source for e in pde.lists[v]}
            for w in g.nodes():
                if w in listed:
                    continue
                assert (1 + eps) * exact[v][w] >= last - 1e-6

    def test_sources_subset(self, grid):
        sources = list(grid.nodes())[:4]
        pde = solve_pde(grid, sources, h=8, sigma=3, epsilon=0.5)
        for v in grid.nodes():
            for entry in pde.lists[v]:
                assert entry.source in set(sources)

    def test_source_entry_is_zero(self, grid):
        sources = list(grid.nodes())[:4]
        pde = solve_pde(grid, sources, h=8, sigma=3, epsilon=0.5)
        for s in sources:
            assert pde.estimate(s, s) == 0

    def test_next_hops_are_neighbors(self, small_weighted_graph):
        g = small_weighted_graph
        pde = solve_pde(g, g.nodes(), h=6, sigma=4, epsilon=0.25)
        for v in g.nodes():
            for entry in pde.lists[v]:
                if entry.source == v:
                    continue
                assert entry.next_hop is not None
                assert g.has_edge(v, entry.next_hop)

    def test_lists_sorted_and_bounded(self, small_weighted_graph):
        pde = solve_pde(small_weighted_graph, small_weighted_graph.nodes(),
                        h=6, sigma=3, epsilon=0.25)
        for v in small_weighted_graph.nodes():
            keys = [e.key() for e in pde.lists[v]]
            assert keys == sorted(keys)
            assert len(keys) <= 3

    def test_closest_source_in(self, small_weighted_graph):
        g = small_weighted_graph
        pde = solve_pde(g, g.nodes(), h=g.num_nodes, sigma=g.num_nodes, epsilon=0.25)
        subset = set(list(g.nodes())[:5])
        exact = all_pairs_weighted_distances(g)
        for v in g.nodes():
            entry = pde.closest_source_in(v, subset)
            assert entry is not None
            best_exact = min(exact[v][s] for s in subset)
            assert entry.estimate >= best_exact - 1e-9
            assert entry.estimate <= (1 + 0.25) * max(exact[v][s] for s in subset)

    def test_invalid_arguments(self, grid):
        with pytest.raises(ValueError):
            solve_pde(grid, [], h=3, sigma=2, epsilon=0.5)
        with pytest.raises(ValueError):
            solve_pde(grid, [999], h=3, sigma=2, epsilon=0.5)
        with pytest.raises(ValueError):
            solve_pde(grid, grid.nodes(), h=0, sigma=2, epsilon=0.5)
        with pytest.raises(ValueError):
            solve_pde(grid, grid.nodes(), h=3, sigma=2, epsilon=0.5, engine="bogus")

    def test_store_levels_flag(self, grid):
        with_levels = solve_pde(grid, grid.nodes()[:3], h=4, sigma=2, epsilon=0.5)
        without = solve_pde(grid, grid.nodes()[:3], h=4, sigma=2, epsilon=0.5,
                            store_levels=False)
        assert with_levels.per_level is not None
        assert without.per_level is None


class TestSimulatedEngine:
    def test_simulation_matches_logical(self):
        g = graphs.erdos_renyi_graph(16, 0.25, graphs.uniform_weights(1, 30), seed=8)
        sources = list(g.nodes())[:5]
        logical = solve_pde(g, sources, h=6, sigma=3, epsilon=0.5, engine="logical")
        simulated = solve_pde(g, sources, h=6, sigma=3, epsilon=0.5, engine="simulate")
        for v in g.nodes():
            log_pairs = [(e.estimate, e.source) for e in logical.lists[v]]
            sim_pairs = [(e.estimate, e.source) for e in simulated.lists[v]]
            assert log_pairs == sim_pairs

    def test_simulation_metrics_measured(self):
        g = graphs.grid_graph(3, 4, graphs.uniform_weights(1, 5), seed=1)
        simulated = solve_pde(g, g.nodes()[:3], h=4, sigma=2, epsilon=0.5,
                              engine="simulate")
        assert simulated.metrics.measured
        assert simulated.metrics.rounds > 0
        assert simulated.metrics.max_broadcasts() > 0

    def test_broadcast_cap_scales_with_sigma_and_levels(self):
        g = graphs.grid_graph(3, 4, graphs.uniform_weights(1, 20), seed=1)
        sigma = 3
        simulated = solve_pde(g, g.nodes(), h=5, sigma=sigma, epsilon=0.5,
                              engine="simulate")
        per_level_cap = sigma * (sigma + 1) // 2
        levels = simulated.rounding.num_levels
        assert simulated.metrics.max_broadcasts() <= per_level_cap * levels

    def test_feasibility_of_simulated(self):
        g = graphs.grid_graph(3, 4, graphs.uniform_weights(1, 15), seed=2)
        simulated = solve_pde(g, g.nodes(), h=6, sigma=4, epsilon=0.5,
                              engine="simulate")
        _feasibility_check(g, simulated, 0.5)
