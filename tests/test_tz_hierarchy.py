"""Tests for the exact TZ oracle and the approximate compact hierarchy."""

import pytest

from repro import graphs
from repro.graphs import all_pairs_weighted_distances
from repro.routing import (
    CompactRoutingHierarchy,
    ExactThorupZwickOracle,
    build_compact_routing,
    choose_truncation_level,
    sample_levels,
)
from repro.routing.stretch import evaluate_distance_estimates, evaluate_routing
import random


@pytest.fixture(scope="module")
def base_graph():
    return graphs.erdos_renyi_graph(30, 0.15, graphs.uniform_weights(1, 70), seed=19)


class TestLevelSampling:
    def test_levels_within_range(self):
        levels = sample_levels(list(range(100)), 4, random.Random(0))
        assert all(0 <= level <= 3 for level in levels.values())

    def test_top_level_nonempty(self):
        levels = sample_levels(list(range(10)), 5, random.Random(1))
        assert any(level == 4 for level in levels.values())

    def test_level_sets_shrink(self):
        levels = sample_levels(list(range(300)), 3, random.Random(2))
        s1 = sum(1 for level in levels.values() if level >= 1)
        s2 = sum(1 for level in levels.values() if level >= 2)
        assert s2 <= s1 <= 300

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            sample_levels(list(range(5)), 0, random.Random(0))


class TestExactOracle:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_classical_query_stretch(self, base_graph, k):
        oracle = ExactThorupZwickOracle(base_graph, k=k, seed=7)
        exact = all_pairs_weighted_distances(base_graph)
        for u in base_graph.nodes():
            for v in base_graph.nodes():
                if u == v:
                    continue
                est = oracle.query(u, v)
                assert est >= exact[u][v] - 1e-9
                assert est <= (2 * k - 1) * exact[u][v] + 1e-6

    @pytest.mark.parametrize("k", [2, 3])
    def test_hierarchy_query_stretch(self, base_graph, k):
        oracle = ExactThorupZwickOracle(base_graph, k=k, seed=7)
        exact = all_pairs_weighted_distances(base_graph)
        for u in base_graph.nodes():
            for v in base_graph.nodes():
                if u == v:
                    continue
                est, level = oracle.hierarchy_query(u, v)
                assert est >= exact[u][v] - 1e-9
                assert est <= (4 * k - 3) * exact[u][v] + 1e-6
                assert 0 <= level < k

    def test_query_symmetry_of_self(self, base_graph):
        oracle = ExactThorupZwickOracle(base_graph, k=3, seed=7)
        v = base_graph.nodes()[0]
        assert oracle.query(v, v) == 0.0
        assert oracle.hierarchy_query(v, v) == (0.0, 0)

    def test_bunch_sizes_shrink_with_k(self, base_graph):
        k1 = ExactThorupZwickOracle(base_graph, k=1, seed=7)
        k3 = ExactThorupZwickOracle(base_graph, k=3, seed=7)
        # k=1 stores the full distance table (bunch = V); k=3 stores less on average.
        assert k1.average_bunch_size() == base_graph.num_nodes
        assert k3.average_bunch_size() < k1.average_bunch_size()

    def test_pivot_accessor(self, base_graph):
        oracle = ExactThorupZwickOracle(base_graph, k=3, seed=7)
        v = base_graph.nodes()[0]
        pivot, dist = oracle.pivot(v, 0)
        assert pivot == v and dist == 0.0


class TestCompactHierarchy:
    @pytest.mark.parametrize("mode", ["budget", "spd"])
    def test_routing_stretch_bound(self, base_graph, mode):
        hierarchy = CompactRoutingHierarchy.build(base_graph, k=3, epsilon=0.25,
                                                  seed=9, mode=mode)
        report = evaluate_routing(hierarchy, base_graph)
        assert report.delivery_rate == 1.0
        assert report.max_stretch <= hierarchy.theoretical_stretch_bound() + 1e-6

    def test_distance_estimates_feasible(self, base_graph):
        hierarchy = CompactRoutingHierarchy.build(base_graph, k=3, epsilon=0.25,
                                                  seed=9, mode="budget")
        report = evaluate_distance_estimates(hierarchy, base_graph)
        assert report.delivery_rate == 1.0
        assert report.max_stretch <= 4 * 3 - 3 + 1e-6

    def test_truncated_mode(self, base_graph):
        hierarchy = CompactRoutingHierarchy.build(base_graph, k=3, epsilon=0.25,
                                                  seed=9, mode="truncated", l0=2)
        report = evaluate_routing(hierarchy, base_graph)
        assert report.delivery_rate == 1.0
        assert report.max_stretch <= hierarchy.theoretical_stretch_bound() + 1e-6

    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_various_k(self, base_graph, k):
        hierarchy = CompactRoutingHierarchy.build(base_graph, k=k, epsilon=0.25,
                                                  seed=k, mode="budget")
        report = evaluate_routing(hierarchy, base_graph)
        assert report.delivery_rate == 1.0
        assert report.max_stretch <= 4 * k - 3 + 1e-6

    def test_labels_have_k_entries(self, base_graph):
        k = 3
        hierarchy = CompactRoutingHierarchy.build(base_graph, k=k, epsilon=0.25,
                                                  seed=9, mode="budget")
        for v in base_graph.nodes()[:8]:
            label = hierarchy.label_of(v)
            assert len(label.get("pivots")) == k - 1
            assert len(label.get("pivot_dists")) == k - 1
            assert len(label.get("tree_labels")) == k - 1

    def test_table_words_positive(self, base_graph):
        hierarchy = CompactRoutingHierarchy.build(base_graph, k=3, epsilon=0.25,
                                                  seed=9, mode="budget")
        assert all(hierarchy.table_words(v) > 0 for v in base_graph.nodes()[:5])

    def test_build_report(self, base_graph):
        hierarchy = CompactRoutingHierarchy.build(base_graph, k=3, epsilon=0.25,
                                                  seed=9, mode="budget")
        report = hierarchy.build_report()
        assert report.n == base_graph.num_nodes
        assert len(report.level_sizes) == 3
        assert report.level_sizes[0] == base_graph.num_nodes
        assert report.max_bunch_size >= 1
        assert report.rounds > 0

    def test_invalid_arguments(self, base_graph):
        with pytest.raises(ValueError):
            CompactRoutingHierarchy.build(base_graph, k=0)
        with pytest.raises(ValueError):
            CompactRoutingHierarchy.build(base_graph, k=3, mode="bogus")
        with pytest.raises(ValueError):
            CompactRoutingHierarchy.build(base_graph, k=1, mode="truncated")
        with pytest.raises(ValueError):
            CompactRoutingHierarchy.build(base_graph, k=3, mode="truncated", l0=5)

    def test_bunch_sizes_smaller_for_larger_k(self, base_graph):
        h2 = CompactRoutingHierarchy.build(base_graph, k=1, epsilon=0.25, seed=3,
                                           mode="budget")
        h4 = CompactRoutingHierarchy.build(base_graph, k=4, epsilon=0.25, seed=3,
                                           mode="budget")
        assert h4.build_report().avg_bunch_size <= h2.build_report().avg_bunch_size


class TestCorollary414:
    def test_choose_truncation_level_range(self):
        for n in (100, 1000):
            for k in (3, 4, 6):
                for d in (2, 10, 50):
                    l0 = choose_truncation_level(n, k, d)
                    assert 1 <= l0 <= k - 1

    def test_auto_mode_small_k(self, base_graph):
        hierarchy = build_compact_routing(base_graph, k=2, seed=5)
        assert hierarchy.mode == "budget"
        report = evaluate_routing(hierarchy, base_graph)
        assert report.delivery_rate == 1.0
        assert report.max_stretch <= 5 + 1e-6

    def test_auto_mode_large_k_truncates(self, base_graph):
        hierarchy = build_compact_routing(base_graph, k=3, seed=5)
        assert hierarchy.mode == "truncated"
        report = evaluate_routing(hierarchy, base_graph)
        assert report.delivery_rate == 1.0
        assert report.max_stretch <= 9 + 1e-6

    def test_explicit_mode_passthrough(self, base_graph):
        hierarchy = build_compact_routing(base_graph, k=3, mode="spd", seed=5)
        assert hierarchy.mode == "spd"
