"""Tests for the Section 3 rounding scheme (Lemma 3.1 / Corollary 3.2)."""

import math

import pytest

from repro.core import RoundingScheme


class TestBasics:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RoundingScheme(epsilon=0, max_weight=10)
        with pytest.raises(ValueError):
            RoundingScheme(epsilon=0.5, max_weight=0)

    def test_unit_weight_graph_has_single_level(self):
        scheme = RoundingScheme(epsilon=0.5, max_weight=1)
        assert scheme.imax == 0
        assert list(scheme.levels()) == [0]

    def test_imax_covers_max_weight(self):
        scheme = RoundingScheme(epsilon=0.25, max_weight=10 ** 6)
        assert scheme.base(scheme.imax) >= 10 ** 6

    def test_num_levels_scales_with_log(self):
        small = RoundingScheme(epsilon=0.25, max_weight=100)
        large = RoundingScheme(epsilon=0.25, max_weight=10 ** 6)
        assert large.num_levels > small.num_levels
        assert large.num_levels <= 3 * small.num_levels + 1

    def test_more_levels_for_smaller_epsilon(self):
        coarse = RoundingScheme(epsilon=1.0, max_weight=10 ** 4)
        fine = RoundingScheme(epsilon=0.1, max_weight=10 ** 4)
        assert fine.num_levels > coarse.num_levels

    def test_base_is_geometric(self):
        scheme = RoundingScheme(epsilon=0.5, max_weight=1000)
        for i in range(scheme.imax):
            assert scheme.base(i + 1) == pytest.approx(1.5 * scheme.base(i))

    def test_level_out_of_range(self):
        scheme = RoundingScheme(epsilon=0.5, max_weight=10)
        with pytest.raises(ValueError):
            scheme.base(-1)
        with pytest.raises(ValueError):
            scheme.base(scheme.imax + 1)

    def test_describe(self):
        scheme = RoundingScheme(epsilon=0.5, max_weight=100)
        rows = scheme.describe()
        assert len(rows) == scheme.num_levels
        assert rows[0]["base"] == 1.0


class TestRounding:
    def test_level_zero_is_identity(self):
        scheme = RoundingScheme(epsilon=0.5, max_weight=100)
        for w in (1, 7, 99):
            assert scheme.rounded_weight(0, w) == w
            assert scheme.edge_length(0, w) == w

    def test_rounded_weight_never_decreases(self):
        scheme = RoundingScheme(epsilon=0.3, max_weight=10 ** 4)
        for level in scheme.levels():
            for w in (1, 17, 301, 9999):
                assert scheme.rounded_weight(level, w) >= w

    def test_rounded_weight_bounded(self):
        # W_i(e) < W(e) + b(i)
        scheme = RoundingScheme(epsilon=0.3, max_weight=10 ** 4)
        for level in scheme.levels():
            for w in (1, 17, 301, 9999):
                assert scheme.rounded_weight(level, w) < w + scheme.base(level) + 1e-6

    def test_edge_length_positive_integer(self):
        scheme = RoundingScheme(epsilon=0.4, max_weight=500)
        for level in scheme.levels():
            for w in (1, 3, 499):
                length = scheme.edge_length(level, w)
                assert isinstance(length, int)
                assert length >= 1

    def test_edge_length_fn_matches(self):
        scheme = RoundingScheme(epsilon=0.4, max_weight=500)
        fn = scheme.edge_length_fn(3)
        assert fn(0, 1, 77) == scheme.edge_length(3, 77)

    def test_scaled_distance(self):
        scheme = RoundingScheme(epsilon=0.5, max_weight=100)
        assert scheme.scaled_distance(2, 4) == pytest.approx(4 * scheme.base(2))

    def test_invalid_edge_weight(self):
        scheme = RoundingScheme(epsilon=0.5, max_weight=100)
        with pytest.raises(ValueError):
            scheme.edge_length(0, 0)


class TestLemma31:
    def test_horizon_formula(self):
        scheme = RoundingScheme(epsilon=0.5, max_weight=100)
        assert scheme.horizon(10) == math.ceil(10 * (2 + 1 / 0.5)) + 1
        with pytest.raises(ValueError):
            scheme.horizon(-1)

    def test_level_for_pair_zero_cases(self):
        scheme = RoundingScheme(epsilon=0.5, max_weight=100)
        assert scheme.level_for_pair(0, 0) == 0
        assert scheme.level_for_pair(5, 10) == 0  # eps*wd/h < 1

    def test_lemma31_bound(self):
        """At level i_{v,w}, the rounded distance is a (1+eps)-approximation
        and the resulting hop count stays within the horizon."""
        eps = 0.5
        scheme = RoundingScheme(epsilon=eps, max_weight=10 ** 5)
        # A path of `hops` edges of weight `w` each.
        for hops, w in [(3, 1000), (7, 33), (20, 12345 // 20), (5, 1)]:
            wd = hops * w
            level = scheme.level_for_pair(wd, hops)
            rounded = sum(scheme.rounded_weight(level, w) for _ in range(hops))
            assert rounded < (1 + eps) * wd + 1e-6
            hop_count = sum(scheme.edge_length(level, w) for _ in range(hops))
            assert hop_count <= scheme.horizon(hops)
